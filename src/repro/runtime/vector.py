"""Bulk-synchronous vector runtime: array-state round kernels over CSR.

The scalar :class:`~repro.runtime.engine.Network` realises the LOCAL
round model faithfully but pays Python-object prices per node and per
message, which is why the protocol benchmarks historically stopped at
n ≈ 64 while the graph plane handles n = 10⁶.  This module runs the
same round model as dense numpy operations over a
:class:`~repro.graphs.csr.FrozenGraph` snapshot:

* node state lives in index-aligned **state vectors** (one array per
  protocol variable), not per-node dicts;
* a neighbor belief ("u's latest view of v") lives at the CSR slot
  ``s`` with ``src[s] = u, indices[s] = v`` — the receiver's own row
  segment — so belief merges are single ``np.maximum.at`` /
  ``np.minimum.at`` scatters and per-node aggregates are
  ``reduceat`` folds over ``indptr`` segments;
* one engine round = gather this round's deliveries, run the kernel's
  array step over the **active set** (non-halted or woken rows only —
  converged regions cost nothing), scatter the broadcasts.

Parity contract (certified by ``tests/test_vector_engine.py``): for a
fault-free run the vector engine produces **bit-exact final state,
equal round counts, and equal per-round message counts** as the scalar
engine — ``RunStats`` equality — so the paper's O(n²)-reversals and
≤ n−1-rounds claims are measured identically by both engines.  The
accounting rules it reproduces:

* round 0 (``initialize``) delivers every init broadcast:
  ``messages_per_round[0] == 2m`` for broadcast-all protocols;
* a delivered message wakes a halted receiver, and a stepped node's
  halted flag is *recomputed* from this round's decision (a woken
  node that merely waits becomes active again);
* the final quiescence check happens after a last all-halted round
  delivering zero messages, so the trailing ``0`` in
  ``messages_per_round`` appears in both engines.

Fault semantics: the engine consumes the same seeded
:class:`~repro.faults.FaultPlan` stream, drawing per-edge fate masks
in one vectorized batch per round — per-injector drop/duplicate/delay
draws in the same order as
:meth:`~repro.faults.plan.FaultSession.message_fate`, so each message
sees the same marginal probabilities; the *interleaving* of draws
differs from the scalar engine, so chaos runs assert convergence to
the fault-free fixpoint rather than ledger-exact replay.  Reordering
is accepted but is a semantic no-op here: every kernel merge is
commutative and idempotent (that is what makes the protocols monotone
under chaos), so inbox permutations cannot change any outcome and the
engine does not draw them.  Crash/churn injectors need per-node
lifecycle bookkeeping the array plane does not model — plans carrying
them are rejected at construction with a pointer at the scalar
``Network``.  Dropped messages follow the plan's
:class:`~repro.faults.RetryPolicy` with the same capped exponential
backoff, and delayed/retried messages carry their originally gathered
payload values (stale values are harmless against monotone merges).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AlgorithmError, ConvergenceError
from repro.faults.injectors import MessageFaults
from repro.faults.plan import FaultPlan, FaultSession
from repro.graphs.csr import FrozenGraph
from repro.observability import tracing
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.profiling import profile_span
from repro.observability.telemetry import record_dispatch
from repro.runtime.engine import RunStats

Node = Hashable

_INT_MIN = np.iinfo(np.int64).min
_INT_MAX = np.iinfo(np.int64).max
_EMPTY = np.empty(0, dtype=np.int64)


class ArrayKernel:
    """Base class for array-state round kernels.

    Subclasses hold index-aligned state vectors and implement

    * :meth:`init` — round-0 setup; returns ``(broadcasters,
      columns)`` where ``broadcasters`` is an index array of rows that
      broadcast and each column is a length-n array whose entry at a
      broadcaster is its payload value;
    * :meth:`step` — one round; receives the round number, the active
      rows, and this round's deliveries as ``(slots, values)`` — slot
      ``s`` means "``src[s]`` received ``values[...][s]`` from
      ``indices[s]``" — and returns ``(broadcasters, columns)``.

    A kernel must set ``self.halted`` for exactly the rows it stepped
    (the engine recomputes activity from that flag plus deliveries,
    mirroring the scalar engine's per-step halted overwrite).

    The shared ``known``/``known_count`` bookkeeping implements the
    scalar algorithms' "still waiting for first exchange" guard: a
    belief slot becomes *known* on its first merged delivery and a row
    acts only once all ``degree`` beliefs are known.
    """

    name = "kernel"

    def bind(self, engine: "VectorEngine") -> None:
        self.engine = engine
        self.halted = np.zeros(engine.n, dtype=bool)
        self._known = np.zeros(engine.indices.shape[0], dtype=bool)
        self._known_count = np.zeros(engine.n, dtype=np.int64)
        self._bind()

    def _bind(self) -> None:  # pragma: no cover - default
        pass

    def init(self) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
        raise NotImplementedError

    def step(
        self,
        round_number: int,
        active: np.ndarray,
        slots: np.ndarray,
        values: Tuple[np.ndarray, ...],
    ) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
        raise NotImplementedError

    def _note_known(self, slots: np.ndarray) -> None:
        uniq = np.unique(slots)
        fresh = uniq[~self._known[uniq]]
        if fresh.size:
            self._known[fresh] = True
            np.add.at(self._known_count, self.engine.src[fresh], 1)


class VectorEngine:
    """Bulk-synchronous executor for :class:`ArrayKernel` protocols.

    Construction takes a :class:`FrozenGraph` (or anything with a
    ``.frozen()`` snapshot method), an unbound kernel, and optionally
    a :class:`FaultPlan` restricted to
    :class:`~repro.faults.injectors.MessageFaults` injectors.  The
    engine owns a :class:`MetricsRegistry`-backed :class:`RunStats`
    with the scalar engine's exact accounting semantics, so
    ``vector.stats == network.stats`` is the whole parity assertion.
    """

    def __init__(
        self,
        frozen,
        kernel: ArrayKernel,
        fault_plan: Optional[FaultPlan] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[tracing.Tracer] = None,
    ) -> None:
        fg = frozen if isinstance(frozen, FrozenGraph) else frozen.frozen()
        if fg.directed:
            raise AlgorithmError(
                "VectorEngine runs undirected round protocols; "
                "got a directed snapshot"
            )
        self.fg = fg
        self.n = fg.n
        self.indptr = fg.indptr
        self.indices = fg.indices
        self.degrees = fg.degrees
        self.src = fg._edge_sources()
        # Inbound slot map: the slots holding beliefs *about* node u
        # (indices[slot] == u), i.e. where u's broadcasts land.
        order = np.argsort(self.indices, kind="stable")
        self._in_order = order
        counts = np.bincount(self.indices, minlength=self.n)
        self._in_ptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
        )
        self.kernel = kernel
        kernel.bind(self)
        self.metrics = registry if registry is not None else MetricsRegistry("vector-network")
        self.tracer = tracer if tracer is not None else tracing.get_tracer()
        self.stats = RunStats(registry=self.metrics)
        self._round = 0
        self._initialized = False
        self._pending: Tuple[np.ndarray, Tuple[np.ndarray, ...]] = (_EMPTY, ())
        self._woken = np.zeros(self.n, dtype=bool)
        self.faults: Optional[FaultSession] = None
        self._message_faults: List[MessageFaults] = []
        self._retry_policy = None
        if fault_plan is not None:
            for injector in fault_plan.injectors:
                if not isinstance(injector, MessageFaults):
                    raise AlgorithmError(
                        f"VectorEngine supports MessageFaults injectors only; "
                        f"{type(injector).__name__} plans need the per-node "
                        f"scalar Network"
                    )
            self.faults = fault_plan.start(registry=self.metrics)
            self._message_faults = list(fault_plan.injectors)
            self._retry_policy = fault_plan.retry
        # Messages awaiting redelivery: (due_round, seq, slots, values,
        # attempts) — slot-level entries carrying their original
        # payload values.
        self._transit: List[
            Tuple[int, int, np.ndarray, Tuple[np.ndarray, ...], np.ndarray]
        ] = []
        self._transit_seq = 0

    # ------------------------------------------------------------------
    # CSR segment helpers (used by kernels)
    # ------------------------------------------------------------------
    def row_slots(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """All belief slots of ``rows``: ``(slots, segment_ids)``.

        ``segment_ids[i]`` indexes into ``rows`` — the standard
        repeat/arange gather that concatenates CSR row segments
        without a Python loop.
        """
        starts = self.indptr[rows]
        lens = self.degrees[rows]
        total = int(lens.sum())
        if total == 0:
            return _EMPTY, _EMPTY
        cum = np.cumsum(lens)
        base = np.repeat(starts - (cum - lens), lens)
        slots = base + np.arange(total, dtype=np.int64)
        seg = np.repeat(np.arange(rows.size, dtype=np.int64), lens)
        return slots, seg

    def inbound_slots(self, rows: np.ndarray) -> np.ndarray:
        """The slots where broadcasts *from* ``rows`` land (one per
        neighbor, in the receivers' row segments)."""
        starts = self._in_ptr[rows]
        lens = self._in_ptr[rows + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return _EMPTY
        cum = np.cumsum(lens)
        base = np.repeat(starts - (cum - lens), lens)
        return self._in_order[base + np.arange(total, dtype=np.int64)]

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _deliver(
        self, broadcasters: np.ndarray, columns: Tuple[np.ndarray, ...]
    ) -> int:
        """Scatter this round's broadcasts (plus due transit) into the
        pending delivery set; returns the delivered message count with
        the scalar engine's accounting."""
        slots = self.inbound_slots(broadcasters)
        # Gather payload values now: the columns reflect post-step
        # (= send-time) state, and deferred redeliveries must carry
        # these original values, not a later snapshot.
        values = tuple(column[self.indices[slots]] for column in columns)
        if self.faults is None:
            count = slots.size
            delivered_slots, delivered_values = slots, values
        else:
            count, delivered_slots, delivered_values = self._deliver_with_faults(
                slots, values
            )
        self.stats.messages_sent += count
        self.stats.messages_per_round.append(count)
        self._woken[:] = False
        if delivered_slots.size:
            self._woken[self.src[delivered_slots]] = True
        self._pending = (delivered_slots, delivered_values)
        return count

    def _fate_masks(
        self, k: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched per-message fate draws, one per-injector pass in the
        same order as :meth:`FaultSession.message_fate`."""
        rng = self.faults.rng
        drop = np.zeros(k, dtype=bool)
        dup = np.zeros(k, dtype=np.int64)
        delay = np.zeros(k, dtype=np.int64)
        for fault in self._message_faults:
            if fault.drop:
                drop |= rng.random(k) < fault.drop
            if fault.duplicate:
                dup += rng.random(k) < fault.duplicate
            if fault.delay:
                mask = rng.random(k) < fault.delay
                hits = int(mask.sum())
                if hits:
                    delay[mask] += rng.integers(
                        1, fault.max_delay + 1, size=hits
                    )
        # A dropped message's other draws are moot (scalar returns the
        # drop fate alone).
        dup[drop] = 0
        delay[drop] = 0
        return drop, dup, delay

    def _deliver_with_faults(
        self, slots: np.ndarray, values: Tuple[np.ndarray, ...]
    ) -> Tuple[int, np.ndarray, Tuple[np.ndarray, ...]]:
        faults = self.faults
        attempts = np.zeros(slots.size, dtype=np.int64)
        if self._transit:
            due = [e for e in self._transit if e[0] <= self._round]
            self._transit = [e for e in self._transit if e[0] > self._round]
            if due:
                due.sort(key=lambda e: e[1])
                slots = np.concatenate([slots] + [e[2] for e in due])
                values = tuple(
                    np.concatenate([values[c]] + [e[3][c] for e in due])
                    for c in range(len(values))
                )
                attempts = np.concatenate([attempts] + [e[4] for e in due])
        k = slots.size
        if k == 0:
            return 0, _EMPTY, values
        if self._message_faults:
            drop, dup, delay = self._fate_masks(k)
        else:
            drop = np.zeros(k, dtype=bool)
            dup = np.zeros(k, dtype=np.int64)
            delay = np.zeros(k, dtype=np.int64)
        nodes = self.fg.node_list
        for i in np.flatnonzero(drop):
            faults.record(
                "drop", self._round,
                sender=nodes[self.indices[slots[i]]],
                receiver=nodes[self.src[slots[i]]],
            )
        dropped = np.flatnonzero(drop)
        if dropped.size:
            self._retry_dropped(
                slots[dropped],
                tuple(v[dropped] for v in values),
                attempts[dropped],
            )
        deferred = ~drop & (delay > 0)
        for i in np.flatnonzero(deferred):
            faults.record(
                "delay", self._round,
                sender=nodes[self.indices[slots[i]]],
                receiver=nodes[self.src[slots[i]]],
                rounds=int(delay[i]),
            )
        if deferred.any():
            self._defer_groups(
                self._round + delay[deferred],
                slots[deferred],
                tuple(v[deferred] for v in values),
                attempts[deferred],
            )
        keep = ~drop & (delay == 0)
        for i in np.flatnonzero(keep & (dup > 0)):
            faults.record(
                "duplicate", self._round,
                sender=nodes[self.indices[slots[i]]],
                receiver=nodes[self.src[slots[i]]],
                copies=int(dup[i]),
            )
        # Duplicates count toward delivery totals but are not
        # materialised: every kernel merge is idempotent, so the extra
        # copies cannot change state (the monotonicity argument).
        count = int(keep.sum() + dup[keep].sum())
        return count, slots[keep], tuple(v[keep] for v in values)

    def _defer_groups(
        self,
        due_rounds: np.ndarray,
        slots: np.ndarray,
        values: Tuple[np.ndarray, ...],
        attempts: np.ndarray,
    ) -> None:
        for due in np.unique(due_rounds):
            mask = due_rounds == due
            self._transit.append(
                (
                    int(due),
                    self._transit_seq,
                    slots[mask],
                    tuple(v[mask] for v in values),
                    attempts[mask],
                )
            )
            self._transit_seq += 1

    def _retry_dropped(
        self,
        slots: np.ndarray,
        values: Tuple[np.ndarray, ...],
        attempts: np.ndarray,
    ) -> None:
        """Vectorized transport retransmission with the scalar path's
        capped exponential backoff."""
        policy = self._retry_policy
        faults = self.faults
        nodes = self.fg.node_list
        if policy is None:
            return
        exhausted = attempts >= policy.max_retries
        for i in np.flatnonzero(exhausted):
            faults.record(
                "retry_exhausted", self._round,
                sender=nodes[self.indices[slots[i]]],
                receiver=nodes[self.src[slots[i]]],
            )
        keep = ~exhausted
        if not keep.any():
            return
        slots = slots[keep]
        values = tuple(v[keep] for v in values)
        attempts = attempts[keep]
        delays = np.minimum(
            policy.base_delay * np.power(2, attempts), policy.max_delay
        )
        for i in range(slots.size):
            faults.record(
                "retry", self._round,
                sender=nodes[self.indices[slots[i]]],
                receiver=nodes[self.src[slots[i]]],
                attempt=int(attempts[i]) + 1,
            )
        self._defer_groups(self._round + delays, slots, values, attempts + 1)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def round_number(self) -> int:
        return self._round

    def _quiescent(self) -> bool:
        if not bool(self.kernel.halted.all()):
            return False
        if self._pending[0].size:
            return False
        if self._transit:
            return False
        if self.faults is not None and self.faults.pending_schedule_after(self._round):
            return False
        return True

    def initialize(self) -> None:
        """Run the kernel's round-0 setup and deliver its broadcasts."""
        if self._initialized:
            return
        broadcasters, columns = self.kernel.init()
        self._deliver(np.asarray(broadcasters, dtype=np.int64), columns)
        self._initialized = True

    def step_round(self) -> None:
        """Execute one synchronous round over the active set."""
        if not self._initialized:
            self.initialize()
        self._round += 1
        self.stats.rounds = self._round
        with self.tracer.span("engine.round", round=self._round) as span:
            active = np.flatnonzero(~self.kernel.halted | self._woken)
            slots, values = self._pending
            self._pending = (_EMPTY, ())
            broadcasters, columns = self.kernel.step(
                self._round, active, slots, values
            )
            delivered = self._deliver(
                np.asarray(broadcasters, dtype=np.int64), columns
            )
            span.set_attribute("active_nodes", int(active.size))
            span.set_attribute("messages", delivered)
        self.metrics.gauge("repro.runtime.in_flight").set(
            sum(entry[2].size for entry in self._transit)
        )

    def run(self, max_rounds: int = 10_000) -> RunStats:
        """Run until every row halts and no delivery is in flight."""
        record_dispatch("runtime.engine", path="vector")
        with profile_span(
            f"runtime.vector.{self.kernel.name}", nodes=self.n
        ), self.tracer.span(
            "engine.run", nodes=self.n, max_rounds=max_rounds
        ) as span:
            self.initialize()
            for _ in range(max_rounds):
                if self._quiescent():
                    break
                self.step_round()
            else:
                if not self._quiescent():
                    raise ConvergenceError(
                        "distributed execution",
                        max_rounds,
                        rounds_completed=self.stats.rounds,
                        messages_sent=self.stats.messages_sent,
                        fault_events=(
                            self.faults.summary() if self.faults is not None else None
                        ),
                    )
            span.set_attribute("rounds", self.stats.rounds)
            span.set_attribute("messages_sent", self.stats.messages_sent)
        return self.stats


# ----------------------------------------------------------------------
# protocol kernels
# ----------------------------------------------------------------------
class FullReversalKernel(ArrayKernel):
    """Gafni–Bertsekas full reversal over pair heights (level, id).

    The id column is per-node constant, so beliefs max-merge on the
    level column alone (``np.maximum.at``); the sink test counts
    elementwise lexicographic violations per row segment and the raise
    is one ``np.maximum.reduceat`` fold.
    """

    name = "full-reversal"

    def __init__(
        self, destination: int, levels: np.ndarray, ties: np.ndarray
    ) -> None:
        self.destination = int(destination)
        self._levels0 = np.asarray(levels, dtype=np.int64)
        self._ties0 = np.asarray(ties, dtype=np.int64)

    def _bind(self) -> None:
        engine = self.engine
        self.level = self._levels0.copy()
        self.tie = self._ties0.copy()
        self.reversals = np.zeros(engine.n, dtype=np.int64)
        self.b_level = np.full(engine.indices.shape[0], _INT_MIN, dtype=np.int64)
        self.b_tie = self.tie[engine.indices]

    def init(self):
        return np.arange(self.engine.n, dtype=np.int64), (self.level,)

    def _merge(self, slots, values) -> None:
        if slots.size:
            np.maximum.at(self.b_level, slots, values[0])
            self._note_known(slots)

    def step(self, round_number, active, slots, values):
        self._merge(slots, values)
        engine = self.engine
        terminal = (active == self.destination) | (engine.degrees[active] == 0)
        self.halted[active[terminal]] = True
        rest = active[~terminal]
        waiting = self._known_count[rest] < engine.degrees[rest]
        self.halted[rest[waiting]] = False
        ready = rest[~waiting]
        if ready.size == 0:
            return _EMPTY, (self.level,)
        row_slots, seg = engine.row_slots(ready)
        own_level = self.level[ready][seg]
        own_tie = self.tie[ready][seg]
        at_most_own = (self.b_level[row_slots] < own_level) | (
            (self.b_level[row_slots] == own_level)
            & (self.b_tie[row_slots] <= own_tie)
        )
        violations = np.zeros(ready.size, dtype=np.int64)
        np.add.at(violations, seg[at_most_own], 1)
        is_sink = violations == 0
        self.halted[ready[~is_sink]] = True
        sinks = ready[is_sink]
        if sinks.size == 0:
            return _EMPTY, (self.level,)
        lens = engine.degrees[sinks]
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(lens)[:-1])
        )
        sink_slots, _ = engine.row_slots(sinks)
        tops = np.maximum.reduceat(self.b_level[sink_slots], starts)
        self.level[sinks] = tops + 1
        self.reversals[sinks] += 1
        self.halted[sinks] = False
        return sinks, (self.level,)


class PartialReversalKernel(ArrayKernel):
    """Gafni–Bertsekas partial reversal over triple heights (a, b, id).

    The id column is again per-node constant; the (a, b) belief merge
    is a lexsort-by-slot batch reduction followed by a lexicographic
    compare-exchange against the stored beliefs.
    """

    name = "partial-reversal"

    def __init__(
        self,
        destination: int,
        a: np.ndarray,
        b: np.ndarray,
        ids: np.ndarray,
    ) -> None:
        self.destination = int(destination)
        self._a0 = np.asarray(a, dtype=np.int64)
        self._b0 = np.asarray(b, dtype=np.int64)
        self._ids0 = np.asarray(ids, dtype=np.int64)

    def _bind(self) -> None:
        engine = self.engine
        self.a = self._a0.copy()
        self.b = self._b0.copy()
        self.ids = self._ids0.copy()
        self.reversals = np.zeros(engine.n, dtype=np.int64)
        m = engine.indices.shape[0]
        self.b_a = np.full(m, _INT_MIN, dtype=np.int64)
        self.b_b = np.zeros(m, dtype=np.int64)
        self.b_id = self.ids[engine.indices]

    def init(self):
        return np.arange(self.engine.n, dtype=np.int64), (self.a, self.b)

    def _merge(self, slots, values) -> None:
        if not slots.size:
            return
        va, vb = values
        # Reduce the batch to one winner (lexicographic max) per slot:
        # sort by (slot, a, b) and keep each slot group's last entry.
        order = np.lexsort((vb, va, slots))
        s = slots[order]
        a = va[order]
        b = vb[order]
        last = np.ones(s.size, dtype=bool)
        last[:-1] = s[1:] != s[:-1]
        s, a, b = s[last], a[last], b[last]
        current_a = self.b_a[s]
        current_b = self.b_b[s]
        take = (
            ~self._known[s]
            | (a > current_a)
            | ((a == current_a) & (b > current_b))
        )
        self.b_a[s[take]] = a[take]
        self.b_b[s[take]] = b[take]
        self._note_known(s)

    def step(self, round_number, active, slots, values):
        self._merge(slots, values)
        engine = self.engine
        terminal = (active == self.destination) | (engine.degrees[active] == 0)
        self.halted[active[terminal]] = True
        rest = active[~terminal]
        waiting = self._known_count[rest] < engine.degrees[rest]
        self.halted[rest[waiting]] = False
        ready = rest[~waiting]
        if ready.size == 0:
            return _EMPTY, (self.a, self.b)
        row_slots, seg = engine.row_slots(ready)
        own_a = self.a[ready][seg]
        own_b = self.b[ready][seg]
        own_id = self.ids[ready][seg]
        ba = self.b_a[row_slots]
        bb = self.b_b[row_slots]
        bid = self.b_id[row_slots]
        at_most_own = (ba < own_a) | (
            (ba == own_a) & ((bb < own_b) | ((bb == own_b) & (bid <= own_id)))
        )
        violations = np.zeros(ready.size, dtype=np.int64)
        np.add.at(violations, seg[at_most_own], 1)
        is_sink = violations == 0
        self.halted[ready[~is_sink]] = True
        sinks = ready[is_sink]
        if sinks.size == 0:
            return _EMPTY, (self.a, self.b)
        lens = engine.degrees[sinks]
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(lens)[:-1])
        )
        sink_slots, sink_seg = engine.row_slots(sinks)
        new_a = np.minimum.reduceat(self.b_a[sink_slots], starts) + 1
        shares_a = self.b_a[sink_slots] == new_a[sink_seg]
        shared_b = np.full(sinks.size, _INT_MAX, dtype=np.int64)
        np.minimum.at(shared_b, sink_seg[shares_a], self.b_b[sink_slots[shares_a]])
        new_b = np.where(shared_b != _INT_MAX, shared_b - 1, self.b[sinks])
        self.a[sinks] = new_a
        self.b[sinks] = new_b
        self.reversals[sinks] += 1
        self.halted[sinks] = False
        return sinks, (self.a, self.b)


class SafetyLevelKernel(ArrayKernel):
    """Iterative hypercube safety-level refinement ([32]).

    Beliefs min-merge (levels only fall); the per-row rule —
    ``new_level = first k with sorted(neighbor levels)[k] < k``, else
    the dimension — runs as one padded-matrix row sort per round over
    the ready set.
    """

    name = "safety-levels"

    def __init__(self, dimension: int, faulty: np.ndarray) -> None:
        self.dimension = int(dimension)
        self._faulty0 = np.asarray(faulty, dtype=bool)

    def _bind(self) -> None:
        engine = self.engine
        self.faulty = self._faulty0.copy()
        self.level = np.where(self.faulty, 0, self.dimension).astype(np.int64)
        self.b_level = np.full(engine.indices.shape[0], _INT_MAX, dtype=np.int64)

    def init(self):
        return np.arange(self.engine.n, dtype=np.int64), (self.level,)

    def _merge(self, slots, values) -> None:
        if slots.size:
            np.minimum.at(self.b_level, slots, values[0])
            self._note_known(slots)

    def step(self, round_number, active, slots, values):
        self._merge(slots, values)
        engine = self.engine
        is_faulty = self.faulty[active]
        self.halted[active[is_faulty]] = True
        rest = active[~is_faulty]
        waiting = self._known_count[rest] < engine.degrees[rest]
        self.halted[rest[waiting]] = False
        ready = rest[~waiting]
        if ready.size == 0:
            return _EMPTY, (self.level,)
        lens = engine.degrees[ready]
        width = int(lens.max()) if ready.size else 0
        row_slots, seg = engine.row_slots(ready)
        if width:
            cum = np.cumsum(lens)
            within = np.arange(row_slots.size, dtype=np.int64) - np.repeat(
                cum - lens, lens
            )
            padded = np.full((ready.size, width), _INT_MAX, dtype=np.int64)
            padded[seg, within] = self.b_level[row_slots]
            padded.sort(axis=1)
            below = padded < np.arange(width, dtype=np.int64)
            hit = below.any(axis=1)
            new_level = np.where(
                hit, below.argmax(axis=1), self.dimension
            ).astype(np.int64)
        else:
            new_level = np.full(ready.size, self.dimension, dtype=np.int64)
        changed = new_level != self.level[ready]
        changed_rows = ready[changed]
        self.level[changed_rows] = new_level[changed]
        self.halted[changed_rows] = False
        self.halted[ready[~changed]] = True
        return changed_rows, (self.level,)


WHITE, BLACK, GRAY = 0, 1, 2


class MISKernel(ArrayKernel):
    """The three-color MIS process with the scalar engine's timing.

    Round-r candidates compare against the *round-(r−1)* white
    broadcasters — including nodes that turn gray in round r — so the
    timeline lags :meth:`FrozenGraph.mis_round_masks` by design: this
    kernel certifies the engine protocol, not the synchronous closure.
    Payload column = the sender's color at send time; per-round flags
    are boolean scatters over the delivered slots.
    """

    name = "mis"

    def __init__(self, priorities: np.ndarray) -> None:
        self._priorities0 = np.asarray(priorities, dtype=np.float64)

    def _bind(self) -> None:
        engine = self.engine
        self.priority = self._priorities0.copy()
        self.color = np.zeros(engine.n, dtype=np.int64)
        self.slot_priority = self.priority[engine.indices]

    def init(self):
        return np.arange(self.engine.n, dtype=np.int64), (self.color,)

    def step(self, round_number, active, slots, values):
        engine = self.engine
        colored = self.color[active] != WHITE
        self.halted[active[colored]] = True
        white = active[~colored]
        if white.size == 0:
            return _EMPTY, (self.color,)
        got_black = np.zeros(engine.n, dtype=bool)
        has_violation = np.zeros(engine.n, dtype=bool)
        if slots.size:
            tags = values[0]
            black_slots = slots[tags == BLACK]
            got_black[engine.src[black_slots]] = True
            white_slots = slots[tags == WHITE]
            violating = white_slots[
                self.slot_priority[white_slots]
                >= self.priority[engine.src[white_slots]]
            ]
            has_violation[engine.src[violating]] = True
        to_gray = white[got_black[white]]
        rest = white[~got_black[white]]
        to_black = rest[~has_violation[rest]]
        stay = rest[has_violation[rest]]
        self.color[to_gray] = GRAY
        self.color[to_black] = BLACK
        self.halted[to_gray] = True
        self.halted[to_black] = True
        self.halted[stay] = False
        broadcasters = np.concatenate((to_gray, to_black, stay))
        return broadcasters, (self.color,)


# ----------------------------------------------------------------------
# protocol entry points (drop-in parity with the scalar wrappers)
# ----------------------------------------------------------------------
def _reversal_outputs(graph, fg, engine, heights):
    """(orientation, heights, reversals, rounds) in the scalar shape."""
    from repro.layering.link_reversal import Orientation

    nodes = fg.node_list
    reversals = {
        nodes[i]: int(engine.kernel.reversals[i]) for i in range(fg.n)
    }
    orientation = None
    if graph is not None:
        orientation = Orientation(graph)
        for u, v in graph.edges():
            orientation.orient(
                u, v, toward=v if heights[u] > heights[v] else u
            )
    return orientation, heights, reversals


def vector_full_reversal(
    graph,
    destination: Node,
    heights: Dict[Node, Tuple],
    max_rounds: int = 100_000,
    fault_plan: Optional[FaultPlan] = None,
):
    """Array-plane :func:`~repro.layering.link_reversal_distributed.distributed_full_reversal`.

    Same signature and return shape — (orientation, final heights,
    per-node reversal counts, rounds) — same final state, rounds, and
    message counts; ``graph`` may be a :class:`Graph` or a
    :class:`FrozenGraph` (orientation is skipped for pure snapshots
    passed without a dict graph backing, returning ``None`` in its
    place).
    """
    from repro.graphs.graph import Graph

    dict_graph = graph if isinstance(graph, Graph) else None
    fg = graph.frozen() if isinstance(graph, Graph) else graph
    nodes = fg.node_list
    levels = np.array([heights[node][0] for node in nodes], dtype=np.int64)
    ties = np.array([heights[node][-1] for node in nodes], dtype=np.int64)
    kernel = FullReversalKernel(fg.index_of(destination), levels, ties)
    engine = VectorEngine(fg, kernel, fault_plan=fault_plan)
    with tracing.get_tracer().span(
        "layering.distributed_reversal", nodes=fg.n
    ):
        stats = engine.run(max_rounds=max_rounds)
    final_heights = {
        nodes[i]: (int(kernel.level[i]), int(kernel.tie[i]))
        for i in range(fg.n)
    }
    orientation, final_heights, reversals = _reversal_outputs(
        dict_graph, fg, engine, final_heights
    )
    labels = {"algorithm": "vector-full"}
    registry = get_registry()
    registry.counter("repro.layering.node_reversals", labels).inc(
        sum(reversals.values())
    )
    registry.histogram("repro.layering.steps", labels).observe(stats.rounds)
    return orientation, final_heights, reversals, stats.rounds


def vector_partial_reversal(
    graph,
    destination: Node,
    heights: Dict[Node, Tuple],
    max_rounds: int = 100_000,
    fault_plan: Optional[FaultPlan] = None,
):
    """Array-plane :func:`~repro.layering.link_reversal_distributed.distributed_partial_reversal`."""
    from repro.graphs.graph import Graph
    from repro.layering.link_reversal_distributed import lift_partial_heights

    dict_graph = graph if isinstance(graph, Graph) else None
    fg = graph.frozen() if isinstance(graph, Graph) else graph
    nodes = fg.node_list
    heights = lift_partial_heights(heights)
    a = np.array([heights[node][0] for node in nodes], dtype=np.int64)
    b = np.array([heights[node][1] for node in nodes], dtype=np.int64)
    ids = np.array([heights[node][2] for node in nodes], dtype=np.int64)
    kernel = PartialReversalKernel(fg.index_of(destination), a, b, ids)
    engine = VectorEngine(fg, kernel, fault_plan=fault_plan)
    with tracing.get_tracer().span(
        "layering.distributed_reversal", nodes=fg.n
    ):
        stats = engine.run(max_rounds=max_rounds)
    final_heights = {
        nodes[i]: (int(kernel.a[i]), int(kernel.b[i]), int(kernel.ids[i]))
        for i in range(fg.n)
    }
    orientation, final_heights, reversals = _reversal_outputs(
        dict_graph, fg, engine, final_heights
    )
    labels = {"algorithm": "vector-partial"}
    registry = get_registry()
    registry.counter("repro.layering.node_reversals", labels).inc(
        sum(reversals.values())
    )
    registry.histogram("repro.layering.steps", labels).observe(stats.rounds)
    return orientation, final_heights, reversals, stats.rounds


def vector_safety_levels(
    dimension: int,
    faulty,
    max_rounds: int = 10_000,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[Dict[Tuple[int, ...], int], int]:
    """Array-plane :func:`~repro.labeling.safety_distributed.distributed_safety_levels`.

    Builds the d-cube CSR directly (no dict graph), so the scale axis
    extends to n = 2^d ≈ 20,000 without per-node object cost.
    """
    from repro.labeling.safety import _check_faults

    faults = _check_faults(dimension, faulty)
    fg = hypercube_frozen(dimension)
    faulty_mask = np.zeros(fg.n, dtype=bool)
    index = fg.index
    for address in faults:
        faulty_mask[index[address]] = True
    kernel = SafetyLevelKernel(dimension, faulty_mask)
    engine = VectorEngine(fg, kernel, fault_plan=fault_plan)
    stats = engine.run(max_rounds=max_rounds)
    nodes = fg.node_list
    levels = {nodes[i]: int(kernel.level[i]) for i in range(fg.n)}
    return levels, stats.rounds


def vector_mis(
    graph, priorities: Optional[Dict[Node, float]] = None
) -> Tuple[set, int]:
    """Array-plane :func:`~repro.labeling.mis.distributed_mis`: (MIS, rounds)."""
    from repro.graphs.graph import Graph
    from repro.labeling.mis import frozen_id_priorities, id_priorities

    fg = graph.frozen() if isinstance(graph, Graph) else graph
    nodes = fg.node_list
    if priorities is None:
        if isinstance(graph, Graph):
            priorities = id_priorities(graph)
            priority = np.array(
                [priorities[node] for node in nodes], dtype=np.float64
            )
        else:
            priority = frozen_id_priorities(fg)
    else:
        priority = np.array(
            [priorities[node] for node in nodes], dtype=np.float64
        )
    kernel = MISKernel(priority)
    engine = VectorEngine(fg, kernel)
    stats = engine.run()
    black = {nodes[i] for i in np.flatnonzero(kernel.color == BLACK)}
    return black, stats.rounds


def hypercube_frozen(dimension: int) -> FrozenGraph:
    """The d-cube as a :class:`FrozenGraph`, built arithmetically.

    Node i's neighbors are ``i XOR 2^b``; ``node_list`` carries the
    MSB-first :data:`~repro.graphs.hypercube.BinaryAddress` tuples so
    results key identically to
    :func:`repro.graphs.hypercube.binary_hypercube`.
    """
    if dimension < 0:
        raise ValueError(f"dimension must be >= 0, got {dimension}")
    n = 1 << dimension
    base = np.arange(n, dtype=np.int64)
    if dimension:
        neighbors = base[:, None] ^ (
            np.int64(1) << np.arange(dimension, dtype=np.int64)
        )
        neighbors.sort(axis=1)
        indices = neighbors.ravel()
    else:
        indices = _EMPTY
    indptr = np.arange(n + 1, dtype=np.int64) * dimension
    addresses = [
        tuple((i >> (dimension - 1 - bit)) & 1 for bit in range(dimension))
        for i in range(n)
    ]
    return FrozenGraph.from_arrays(
        indptr, indices, node_list=addresses, copy=False, validate=False
    )
