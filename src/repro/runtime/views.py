"""View inconsistency under mobility (Sec. IV-C).

"Mobility will create another serious problem: view inconsistency" —
neighborhood exchanges and asynchronous Hello messages take time, so a
node's *view* of its k-hop neighborhood lags the ground truth.  This
module models that lag explicitly:

* :class:`DelayedViewOracle` serves each node the k-hop neighborhood as
  it existed ``delay`` snapshots ago (Hello-period staleness);
* :func:`view_inconsistency` quantifies the disagreement between a
  node's view and the current truth (missing + stale neighbors);
* :class:`MultiViewOracle` keeps the last ``w`` views per node — the
  "maintaining multiple views" direction the paper cites as promising
  [29] — and exposes conservative intersections / optimistic unions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import NodeNotFoundError
from repro.graphs.graph import Graph

Node = Hashable


def k_hop_view(graph: Graph, node: Node, k: int) -> Set[Node]:
    """The true k-hop neighborhood (local horizon) of ``node`` now."""
    return graph.k_hop_neighbors(node, k)


class DelayedViewOracle:
    """Serves k-hop views delayed by a fixed number of snapshots.

    Feed topology snapshots with :meth:`observe`; :meth:`view` then
    answers with the neighborhood as of ``delay`` snapshots ago (or the
    oldest available).  ``delay = 0`` is a perfectly synchronised Hello
    protocol.
    """

    def __init__(self, k: int, delay: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.k = int(k)
        self.delay = int(delay)
        self._history: Deque[Graph] = deque(maxlen=delay + 1)

    def observe(self, snapshot: Graph) -> None:
        """Record the current topology snapshot."""
        self._history.append(snapshot.copy())

    @property
    def snapshots_seen(self) -> int:
        return len(self._history)

    def view(self, node: Node) -> Set[Node]:
        """The (possibly stale) k-hop view of ``node``."""
        if not self._history:
            raise ValueError("no snapshot observed yet")
        stale = self._history[0]
        if not stale.has_node(node):
            raise NodeNotFoundError(node)
        return k_hop_view(stale, node, self.k)


def view_inconsistency(
    current: Graph, believed: Set[Node], node: Node, k: int
) -> Tuple[Set[Node], Set[Node]]:
    """(missing, stale): truth − view and view − truth.

    ``missing`` are real k-hop neighbors the node does not know about;
    ``stale`` are believed neighbors that have moved away.  Both empty
    iff the view is consistent.
    """
    truth = k_hop_view(current, node, k)
    return truth - believed, believed - truth


def inconsistency_rate(
    snapshots: Sequence[Graph], k: int, delay: int
) -> float:
    """Fraction of (snapshot, node) pairs with an inconsistent view.

    Streams ``snapshots`` through a :class:`DelayedViewOracle` and
    checks every node each step once the pipeline is full.
    """
    if not snapshots:
        return 0.0
    oracle = DelayedViewOracle(k=k, delay=delay)
    checked = 0
    inconsistent = 0
    for index, snapshot in enumerate(snapshots):
        oracle.observe(snapshot)
        if index < delay:
            continue
        for node in snapshot.nodes():
            try:
                believed = oracle.view(node)
            except NodeNotFoundError:
                continue
            missing, stale = view_inconsistency(snapshot, believed, node, k)
            checked += 1
            if missing or stale:
                inconsistent += 1
    return inconsistent / checked if checked else 0.0


class MultiViewOracle:
    """Keeps the last ``window`` views per node ([29]).

    * :meth:`conservative_view` — neighbors present in *every* retained
      view: safe for decisions that must not act on departed nodes;
    * :meth:`optimistic_view` — neighbors present in *any* retained
      view: safe for decisions that must not miss a real neighbor.
    """

    def __init__(self, k: int, window: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.k = int(k)
        self.window = int(window)
        self._views: Dict[Node, Deque[Set[Node]]] = {}

    def observe(self, snapshot: Graph) -> None:
        for node in snapshot.nodes():
            views = self._views.setdefault(node, deque(maxlen=self.window))
            views.append(k_hop_view(snapshot, node, self.k))

    def conservative_view(self, node: Node) -> Set[Node]:
        views = self._views.get(node)
        if not views:
            raise NodeNotFoundError(node)
        result = set(views[0])
        for view in views:
            result &= view
        return result

    def optimistic_view(self, node: Node) -> Set[Node]:
        views = self._views.get(node)
        if not views:
            raise NodeNotFoundError(node)
        result: Set[Node] = set()
        for view in views:
            result |= view
        return result
