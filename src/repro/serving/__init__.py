"""Incremental graph serving (ROADMAP item: dynamic environments).

The serving plane keeps the paper's hot structures — the CSR snapshot,
the NSF peel layering (Sec. III-B), the landmark (distance, gateway)
labels (Sec. IV), the PageRank scores, and the MIS (Sec. IV) —
*current* under an interleaved stream of edge mutations and point
queries, instead of refreezing per mutation generation:

* :class:`~repro.serving.state.GraphService` — the synchronous core:
  a :class:`~repro.graphs.delta.PatchedGraph` patch buffer plus
  lazily-repaired incremental indexes, with a vectorized
  :meth:`~repro.serving.state.GraphService.apply_batch` write path;
* :class:`~repro.serving.gateway.ServingGateway` — the ``asyncio``
  front-end: a bounded queue coalescing point queries into batched
  kernel sweeps and mutations into netted write barriers (sequence
  order preserved, so read-your-writes survives fire-and-forget
  writes), with deterministic chaos hooks from :mod:`repro.faults`
  and an adaptive flush deadline driven by the mutation arrival rate.

Proven correct by the differential mutate/query harness
(``tests/test_incremental_differential.py``) against the full-rebuild
references, and benchmarked by ``benchmarks/bench_serving.py`` and
``benchmarks/bench_serving_write.py``.
"""

from repro.serving.gateway import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY,
    ServingGateway,
)
from repro.serving.state import GraphService

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_DELAY",
    "GraphService",
    "ServingGateway",
]
