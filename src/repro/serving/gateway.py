"""Async query front-end: coalesce point queries into batched sweeps.

:class:`ServingGateway` puts an ``asyncio`` facade in front of a
:class:`~repro.serving.state.GraphService`.  Point queries are awaited
futures that land in a bounded queue; a single dispatcher task flushes
the queue whenever it holds ``max_batch`` requests *or* the oldest
request has waited ``max_delay`` seconds, whichever comes first.  A
flush is where the batching pays off: every distance query sharing a
source rides one patch-aware BFS sweep, and every index query in the
batch shares one incremental repair.

Mutations are *not* queued.  ``insert_edge`` / ``delete_edge`` apply
synchronously to the service, so the service version a batch executes
against is always at least as new as every mutation issued before any
query in it — answers can never come from a stale pre-patch snapshot,
and a retried query simply re-executes against the then-current state.

Chaos testing hooks into :mod:`repro.faults`: give the gateway a
:class:`~repro.faults.plan.FaultPlan` and each flush consults the
deterministic fault session.  A ``reorder`` fate permutes the batch, a
``delay`` fate yields the event loop before answering, and a ``drop``
fate models a mid-batch crash — the dropped request and everything
after it in the batch are re-queued (counted in
``repro.serving.retries``) instead of answered, and get fresh fates on
the next flush.  ``stop()`` performs a teardown flush with injection
disabled, so no query is ever lost.

Emitted metrics (see :mod:`repro.observability.telemetry`):
``repro.serving.batches`` / ``batch_size`` / ``queue_depth`` per
flush, ``repro.serving.sweeps`` per coalesced BFS, and
``repro.serving.queries{kind}`` per accepted request.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.faults.plan import DELIVER, FaultPlan, FaultSession
from repro.observability.telemetry import (
    record_serving_batch,
    record_serving_query,
    record_serving_retry,
    record_serving_sweep,
)
from repro.serving.state import GraphService

Node = Hashable

#: Marker for "queue momentarily empty" in the dispatcher fill loop.
_EMPTY = object()

#: Flush when this many requests are waiting ...
DEFAULT_MAX_BATCH = 32
#: ... or when the oldest has waited this long (seconds).
DEFAULT_MAX_DELAY = 0.005


@dataclass
class _Request:
    """One queued point query and the future its caller awaits."""

    seq: int
    kind: str
    args: Tuple[Any, ...]
    future: "asyncio.Future" = field(repr=False)


class ServingGateway:
    """Bounded-queue async front-end over a :class:`GraphService`.

    Use as an async context manager::

        async with ServingGateway(service) as gw:
            d = await gw.distance("a", "b")
    """

    def __init__(
        self,
        service: GraphService,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: float = DEFAULT_MAX_DELAY,
        queue_size: int = 1024,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.service = service
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self._queue: "asyncio.Queue[Optional[_Request]]" = asyncio.Queue(
            maxsize=queue_size
        )
        self._retry: Deque[_Request] = deque()
        self._faults = faults
        self._session: Optional[FaultSession] = None
        self._task: Optional["asyncio.Task"] = None
        self._crashed: Optional[BaseException] = None
        self._draining = False
        self._seq = 0
        self.batches_flushed = 0
        self.queries_answered = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the dispatcher task (requires a running event loop)."""
        if self._task is not None:
            raise RuntimeError("gateway already started")
        self._crashed = None
        self._draining = False
        if self._faults is not None:
            self._session = self._faults.start()
        self._task = asyncio.get_running_loop().create_task(self._dispatch())

    async def stop(self) -> None:
        """Flush everything still queued (faults off), then shut down.

        Re-raises the dispatcher's failure if it crashed.  A crashed
        dispatcher no longer drains the queue, so the stop sentinel is
        only enqueued while the task is still alive — never a blocking
        put into a full queue nobody is reading.
        """
        if self._task is None:
            return
        task = self._task
        if not task.done():
            await self._queue.put(None)
        try:
            await task
        finally:
            self._task = None

    async def __aenter__(self) -> "ServingGateway":
        self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # mutations — synchronous, so queries never observe stale state
    # ------------------------------------------------------------------
    def insert_edge(self, u: Node, v: Node) -> bool:
        return self.service.insert_edge(u, v)

    def delete_edge(self, u: Node, v: Node) -> None:
        self.service.delete_edge(u, v)

    # ------------------------------------------------------------------
    # queries — awaited futures resolved at the next flush
    # ------------------------------------------------------------------
    async def _submit(self, kind: str, *args: Any) -> Any:
        if self._task is None:
            raise RuntimeError("gateway not started")
        if self._crashed is not None or self._task.done():
            raise self._crash_error()
        record_serving_query(kind)
        self._seq += 1
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        await self._queue.put(_Request(self._seq, kind, args, future))
        # The put can block on a full queue; if the dispatcher died in
        # the meantime nobody will ever drain this request — fail fast
        # unless the abort sweep already resolved the future.
        if self._crashed is not None and not future.done():
            raise self._crash_error()
        return await future

    def _crash_error(self) -> RuntimeError:
        error = RuntimeError("gateway dispatcher is not running")
        error.__cause__ = self._crashed
        return error

    async def distance(self, u: Node, v: Node) -> Optional[int]:
        """Hop distance between ``u`` and ``v``; None if disconnected."""
        return await self._submit("distance", u, v)

    async def nsf_level(self, node: Node) -> int:
        """The node's NSF peel level (incrementally repaired)."""
        return await self._submit("nsf_level", node)

    async def gateway_label(self, node: Node) -> Optional[Tuple[int, Node]]:
        """(distance, gateway landmark) label; None if unreachable."""
        return await self._submit("gateway_label", node)

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        batch: List[_Request] = []
        try:
            stopping = False
            while not stopping:
                batch = []
                while self._retry and len(batch) < self.max_batch:
                    batch.append(self._retry.popleft())
                if not batch:
                    item = await self._queue.get()
                    if item is None:
                        break
                    batch.append(item)
                loop = asyncio.get_running_loop()
                deadline = loop.time() + self.max_delay
                idle_rounds = 0
                while len(batch) < self.max_batch:
                    # Drain whatever is already queued without timer
                    # setup.
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        item = _EMPTY
                    if item is None:
                        stopping = True
                        break
                    if item is not _EMPTY:
                        idle_rounds = 0
                        batch.append(item)
                        continue
                    # Queue empty: give producers one scheduling turn,
                    # then flush early if nothing new showed up (an
                    # idle event loop means no one is about to extend
                    # this batch) — the deadline stays as the hard
                    # upper bound.
                    if idle_rounds >= 2 or loop.time() >= deadline:
                        break
                    idle_rounds += 1
                    await asyncio.sleep(0)
                if batch:
                    await self._execute(batch)
            # Teardown flush: answer every still-queued request with
            # fault injection off, so a stopped gateway never strands
            # a caller.
            self._draining = True
            leftovers = list(self._retry)
            self._retry.clear()
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is not None:
                    leftovers.append(item)
            for start in range(0, len(leftovers), self.max_batch):
                batch = leftovers[start : start + self.max_batch]
                await self._execute(batch)
        except BaseException as error:
            # Anything escaping a flush (telemetry, fault-session
            # bookkeeping, cancellation) kills the dispatcher; fail
            # every outstanding future first so no awaiter hangs.
            self._abort(batch, error)
            raise

    def _abort(self, batch: List[_Request], error: BaseException) -> None:
        """Dispatcher teardown on failure: strand no caller.

        Marks the gateway crashed (later submissions fail fast) and
        fails the in-flight batch plus everything still queued or
        awaiting retry.  Draining the queue also unblocks any producer
        stuck in a put against a full queue.
        """
        self._crashed = error
        stranded = list(batch)
        stranded.extend(self._retry)
        self._retry.clear()
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None:
                stranded.append(item)
        for request in stranded:
            if not request.future.done():
                request.future.set_exception(self._crash_error())

    async def _execute(self, batch: List[_Request]) -> None:
        """Answer one batch: coalesced sweeps, then per-request fates."""
        record_serving_batch(len(batch), self._queue.qsize())
        self.batches_flushed += 1
        chaos = self._session is not None and not self._draining
        if chaos and len(batch) > 1:
            perm = self._session.reorder_permutation(
                self.batches_flushed, "gateway", len(batch)
            )
            if perm is not None:
                batch = [batch[i] for i in perm]
        levels: Dict[Node, Tuple[int, np.ndarray]] = {}
        crashed = False
        for request in batch:
            if crashed:
                # Everything after the crash point is lost with it.
                self._retry.append(request)
                record_serving_retry()
                continue
            fate = DELIVER
            if chaos:
                fate = self._session.message_fate(
                    self.batches_flushed, "gateway", f"q{request.seq}"
                )
            if fate.drop:
                crashed = True
                self._retry.append(request)
                record_serving_retry()
                continue
            try:
                result = self._answer(request, levels)
            except Exception as error:  # noqa: BLE001 — delivered to caller
                if not request.future.done():
                    request.future.set_exception(error)
                continue
            for _ in range(fate.delay):
                await asyncio.sleep(0)
            if not request.future.done():
                request.future.set_result(result)
                self.queries_answered += 1

    def _answer(
        self, request: _Request, levels: Dict[Node, Tuple[int, np.ndarray]]
    ) -> Any:
        """Compute one answer against the *current* service state."""
        service = self.service
        if request.kind == "distance":
            u, v = request.args
            target = service.patched.index_of(v)
            cached = levels.get(u)
            # A delay fate yields the event loop mid-batch, so a
            # concurrent task can mutate the service between answers.
            # A sweep is only reusable at the version it was taken —
            # a current index into a pre-mutation array would read a
            # stale level, or past the end for a node added mid-batch.
            if cached is None or cached[0] != service.version:
                cached = (service.version, service.distances_from(u))
                levels[u] = cached
                record_serving_sweep()
            level = int(cached[1][target])
            return None if level < 0 else level
        if request.kind == "nsf_level":
            return service.nsf_level(*request.args)
        if request.kind == "gateway_label":
            return service.gateway_label(*request.args)
        raise ValueError(f"unknown query kind {request.kind!r}")

    def __repr__(self) -> str:
        return (
            f"ServingGateway(max_batch={self.max_batch}, "
            f"max_delay={self.max_delay}, "
            f"batches={self.batches_flushed}, "
            f"answered={self.queries_answered})"
        )
