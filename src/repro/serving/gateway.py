"""Async query front-end: coalesce point queries into batched sweeps.

:class:`ServingGateway` puts an ``asyncio`` facade in front of a
:class:`~repro.serving.state.GraphService`.  Point queries are awaited
futures that land in a bounded queue; a single dispatcher task flushes
the queue whenever it holds ``max_batch`` requests *or* the oldest
request has waited ``max_delay`` seconds, whichever comes first.  A
flush is where the batching pays off: every distance query sharing a
source rides one patch-aware BFS sweep, and every index query in the
batch shares one incremental repair.

Mutations are queued too — the **write fast path**.  ``insert_edge`` /
``delete_edge`` / ``apply_batch`` take their sequence number and enter
a per-writer mutation deque synchronously at call time (they return
the awaitable future rather than being coroutines, so fire-and-forget
callers keep their ordering; the optional ``writer`` tag names the
deque), then ride the same flush triggers as queries plus an
*adaptive deadline*: an EWMA of observed inter-arrival gaps predicts
how long filling the batch would take, and the dispatcher only waits
when that prediction fits inside ``max_delay`` (dynamic batching, the
model-serving shape).  Each flush begins with a **sequence barrier**:
every unapplied mutation in the batch — and any still-queued mutation
sequenced before the newest batched request — is coalesced, replayed
in sequence order to net out per-edge effects, and applied as one
vectorized :meth:`GraphService.apply_batch`.  Only then are answers
computed, so a query submitted after a mutation never observes the
pre-mutation topology (it may observe a *newer* one, exactly like the
old synchronous write path).  Application is exactly-once: the barrier
stores each mutation's outcome on its request, so a ``drop`` fate only
delays the acknowledgment, never re-applies the mutation.

Multi-writer fairness: the dispatcher drains the mutation deques
**round-robin, one request per writer per turn**, so a hot writer
flooding its own deque cannot push a lone writer's single mutation
past the next flush — each flush admits every waiting writer at least
once (as long as the batch holds that many requests).  Note the
*acknowledgment* is what round-robin protects; the sequence barrier
already applies every mutation sequenced before the newest batched
request, whichever deque it waits in, so ordering semantics are
unchanged.  Untagged mutations share one default writer lane.

Chaos testing hooks into :mod:`repro.faults`: give the gateway a
:class:`~repro.faults.plan.FaultPlan` and each flush consults the
deterministic fault session.  A ``reorder`` fate permutes the batch, a
``delay`` fate yields the event loop before answering, and a ``drop``
fate models a mid-batch crash — the dropped request and everything
after it in the batch are re-queued (counted in
``repro.serving.retries``) instead of answered, and get fresh fates on
the next flush.  ``stop()`` performs a teardown flush with injection
disabled, so no query is ever lost.

Emitted metrics (see :mod:`repro.observability.telemetry`):
``repro.serving.batches`` / ``batch_size`` / ``queue_depth`` per
flush, ``repro.serving.sweeps`` per coalesced BFS,
``repro.serving.queries{kind}`` / ``mutations{kind}`` per accepted
request, and per write barrier ``repro.serving.batch.writes`` /
``write_size`` / ``coalesced`` plus the ``batch.deadline_s`` histogram
of adaptive deadlines and the ``batch.writers`` histogram of distinct
writers per write barrier.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import EdgeNotFoundError
from repro.faults.plan import DELIVER, FaultPlan, FaultSession
from repro.observability.telemetry import (
    record_adaptive_deadline,
    record_batch_writers,
    record_serving_batch,
    record_serving_mutation,
    record_serving_query,
    record_serving_retry,
    record_serving_sweep,
    record_write_batch,
)
from repro.serving.state import GraphService

Node = Hashable

#: Marker for "queue momentarily empty" in the dispatcher fill loop.
_EMPTY = object()

#: Queue sentinel a mutation submit pushes (best-effort) to wake a
#: dispatcher parked on an empty queue; carries no request.
_WAKE = object()

#: Flush when this many requests are waiting ...
DEFAULT_MAX_BATCH = 32
#: ... or when the oldest has waited this long (seconds).
DEFAULT_MAX_DELAY = 0.005

#: EWMA smoothing for the observed inter-arrival gap (the adaptive
#: deadline's input): new_gap weight 0.2, history weight 0.8.
_GAP_ALPHA = 0.2

#: Request kinds that mutate topology (handled by the write barrier).
_MUTATION_KINDS = frozenset({"insert_edge", "delete_edge", "apply_batch"})


@dataclass
class _Request:
    """One queued request (point query or mutation) and its future."""

    seq: int
    kind: str
    args: Tuple[Any, ...]
    future: Optional["asyncio.Future"] = field(repr=False, default=None)
    #: Mutation bookkeeping: the sequence barrier applies each mutation
    #: exactly once and stores its outcome here, so a drop fate only
    #: delays the acknowledgment, never the application.
    applied: bool = False
    result: Any = None
    error: Optional[BaseException] = None
    #: Which writer lane a mutation arrived on (None = default lane).
    writer: Hashable = None


class ServingGateway:
    """Bounded-queue async front-end over a :class:`GraphService`.

    Use as an async context manager::

        async with ServingGateway(service) as gw:
            d = await gw.distance("a", "b")
    """

    def __init__(
        self,
        service: GraphService,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: float = DEFAULT_MAX_DELAY,
        queue_size: int = 1024,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.service = service
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self._queue: "asyncio.Queue[Optional[_Request]]" = asyncio.Queue(
            maxsize=queue_size
        )
        self._retry: Deque[_Request] = deque()
        #: Pending mutations by writer lane, appended synchronously at
        #: submit time so their sequence numbers predate any later
        #: query's.  Drained round-robin across lanes (fairness).
        self._mutations: Dict[Hashable, Deque[_Request]] = {}
        #: Round-robin rotation over writer lanes with pending work.
        self._writer_order: Deque[Hashable] = deque()
        self._faults = faults
        self._session: Optional[FaultSession] = None
        self._task: Optional["asyncio.Task"] = None
        self._crashed: Optional[BaseException] = None
        self._draining = False
        self._seq = 0
        #: Adaptive-deadline state: EWMA of inter-arrival gaps (s).
        self._gap_ewma: Optional[float] = None
        self._last_arrival: Optional[float] = None
        self.batches_flushed = 0
        self.queries_answered = 0
        self.mutations_applied = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the dispatcher task (requires a running event loop)."""
        if self._task is not None:
            raise RuntimeError("gateway already started")
        self._crashed = None
        self._draining = False
        if self._faults is not None:
            self._session = self._faults.start()
        self._task = asyncio.get_running_loop().create_task(self._dispatch())

    async def stop(self) -> None:
        """Flush everything still queued (faults off), then shut down.

        Re-raises the dispatcher's failure if it crashed.  A crashed
        dispatcher no longer drains the queue, so the stop sentinel is
        only enqueued while the task is still alive — never a blocking
        put into a full queue nobody is reading.
        """
        if self._task is None:
            return
        task = self._task
        if not task.done():
            await self._queue.put(None)
        try:
            await task
        finally:
            self._task = None

    async def __aenter__(self) -> "ServingGateway":
        self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # mutations — queued, applied by the flush-time sequence barrier
    # ------------------------------------------------------------------
    def _note_arrival(self) -> None:
        """Feed the adaptive deadline's inter-arrival EWMA."""
        now = asyncio.get_running_loop().time()
        last = self._last_arrival
        self._last_arrival = now
        if last is not None:
            gap = now - last
            if self._gap_ewma is None:
                self._gap_ewma = gap
            else:
                self._gap_ewma += _GAP_ALPHA * (gap - self._gap_ewma)

    def _wake(self) -> None:
        """Nudge a dispatcher parked on an empty queue (best effort).

        A full queue means the dispatcher is busy draining and will see
        the mutation deque on its next fill pass anyway.
        """
        try:
            self._queue.put_nowait(_WAKE)
        except asyncio.QueueFull:
            pass

    def _submit_mutation(
        self, kind: str, args: Tuple[Any, ...], writer: Hashable = None
    ) -> "asyncio.Future":
        if self._task is None:
            raise RuntimeError("gateway not started")
        if self._crashed is not None or self._task.done():
            raise self._crash_error()
        self._note_arrival()
        self._seq += 1
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        queue = self._mutations.get(writer)
        if queue is None:
            queue = self._mutations[writer] = deque()
        if not queue:
            # (Re-)joining the rotation; drained-dry lanes left it.
            self._writer_order.append(writer)
        queue.append(_Request(self._seq, kind, args, future=future, writer=writer))
        self._wake()
        return future

    def _pending_mutations(self) -> List[_Request]:
        """Every queued-but-undrained mutation, across all lanes."""
        return [
            request
            for queue in self._mutations.values()
            for request in queue
        ]

    def insert_edge(
        self, u: Node, v: Node, writer: Hashable = None
    ) -> "asyncio.Future":
        """Queue an edge insert; the future resolves to ``True`` if the
        topology changed (``False`` for a duplicate, like the service).

        Synchronous enqueue, not a coroutine: the mutation takes its
        sequence number at call time, so even a fire-and-forget caller
        gets read-your-writes against every later query.  ``writer``
        tags the fairness lane the request waits in.
        """
        record_serving_mutation("insert")
        return self._submit_mutation("insert_edge", (u, v), writer)

    def delete_edge(
        self, u: Node, v: Node, writer: Hashable = None
    ) -> "asyncio.Future":
        """Queue an edge delete; the future resolves to ``None`` or an
        :class:`~repro.errors.EdgeNotFoundError` (same enqueue contract
        as :meth:`insert_edge`)."""
        record_serving_mutation("delete")
        return self._submit_mutation("delete_edge", (u, v), writer)

    def apply_batch(
        self,
        inserts: "List[Tuple[Node, Node]]" = (),
        deletes: "List[Tuple[Node, Node]]" = (),
        writer: Hashable = None,
    ) -> "asyncio.Future":
        """Queue a whole mutation batch as one sequenced request.

        The request is atomic: it validates like the strict service
        ``apply_batch`` (against the sequence-ordered state at its
        barrier) and either all its operations take effect or the
        future carries the validation error and none do.  Resolves to
        ``{"ops": ..., "changed": ...}``.
        """
        inserts = [tuple(pair) for pair in inserts]
        deletes = [tuple(pair) for pair in deletes]
        if inserts:
            record_serving_mutation("insert", len(inserts))
        if deletes:
            record_serving_mutation("delete", len(deletes))
        return self._submit_mutation("apply_batch", (inserts, deletes), writer)

    # ------------------------------------------------------------------
    # queries — awaited futures resolved at the next flush
    # ------------------------------------------------------------------
    async def _submit(self, kind: str, *args: Any) -> Any:
        if self._task is None:
            raise RuntimeError("gateway not started")
        if self._crashed is not None or self._task.done():
            raise self._crash_error()
        record_serving_query(kind)
        self._note_arrival()
        self._seq += 1
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        await self._queue.put(_Request(self._seq, kind, args, future=future))
        # The put can block on a full queue; if the dispatcher died in
        # the meantime nobody will ever drain this request — fail fast
        # unless the abort sweep already resolved the future.
        if self._crashed is not None and not future.done():
            raise self._crash_error()
        return await future

    def _crash_error(self) -> RuntimeError:
        error = RuntimeError("gateway dispatcher is not running")
        error.__cause__ = self._crashed
        return error

    async def distance(self, u: Node, v: Node) -> Optional[int]:
        """Hop distance between ``u`` and ``v``; None if disconnected."""
        return await self._submit("distance", u, v)

    async def nsf_level(self, node: Node) -> int:
        """The node's NSF peel level (incrementally repaired)."""
        return await self._submit("nsf_level", node)

    async def gateway_label(self, node: Node) -> Optional[Tuple[int, Node]]:
        """(distance, gateway landmark) label; None if unreachable."""
        return await self._submit("gateway_label", node)

    async def pagerank_score(self, node: Node) -> float:
        """The node's PageRank score (incrementally re-converged)."""
        return await self._submit("pagerank_score", node)

    async def mis_member(self, node: Node) -> bool:
        """Whether ``node`` is an MIS clusterhead (round-replay repaired)."""
        return await self._submit("mis_member", node)

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _flush_delay(self, have: int) -> float:
        """The adaptive deadline for a flush holding ``have`` requests.

        The inter-arrival EWMA predicts how long filling the batch
        would take; waiting is only worth it when that prediction fits
        inside ``max_delay``, otherwise flush immediately (arrivals are
        too slow for more coalescing to pay for the latency).  Unknown
        arrival rate falls back to the static ``max_delay``.  The
        idle-rounds early flush still applies either way, so the
        deadline can only move *earlier* than the static policy.
        """
        if self._gap_ewma is None:
            delay = self.max_delay
        else:
            expected_fill = self._gap_ewma * max(self.max_batch - have, 0)
            delay = expected_fill if expected_fill <= self.max_delay else 0.0
        record_adaptive_deadline(delay)
        return delay

    def _fill_from_mutations(self, batch: List[_Request]) -> bool:
        """Drain writer lanes round-robin, one request per lane per turn.

        Fairness invariant: a lane that was waiting when a flush fills
        its batch contributes at least one request before any lane
        contributes a second — a hot writer cannot starve a lone one.
        Lanes drained dry leave the rotation (they re-join on their
        next submit).
        """
        took = False
        order = self._writer_order
        while order and len(batch) < self.max_batch:
            writer = order.popleft()
            queue = self._mutations.get(writer)
            if not queue:
                self._mutations.pop(writer, None)
                continue
            batch.append(queue.popleft())
            took = True
            if queue:
                order.append(writer)
            else:
                del self._mutations[writer]
        return took

    async def _dispatch(self) -> None:
        batch: List[_Request] = []
        try:
            stopping = False
            while not stopping:
                batch = []
                while self._retry and len(batch) < self.max_batch:
                    batch.append(self._retry.popleft())
                self._fill_from_mutations(batch)
                while not batch:
                    item = await self._queue.get()
                    if item is None:
                        stopping = True
                        break
                    if item is not _WAKE:
                        batch.append(item)
                    self._fill_from_mutations(batch)
                if stopping:
                    break
                loop = asyncio.get_running_loop()
                deadline = loop.time() + self._flush_delay(len(batch))
                idle_rounds = 0
                while len(batch) < self.max_batch:
                    if self._fill_from_mutations(batch):
                        idle_rounds = 0
                        continue
                    # Drain whatever is already queued without timer
                    # setup.
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        item = _EMPTY
                    if item is None:
                        stopping = True
                        break
                    if item is _WAKE:
                        continue
                    if item is not _EMPTY:
                        idle_rounds = 0
                        batch.append(item)
                        continue
                    # Queue empty: give producers one scheduling turn,
                    # then flush early if nothing new showed up (an
                    # idle event loop means no one is about to extend
                    # this batch) — the deadline stays as the hard
                    # upper bound.
                    if idle_rounds >= 2 or loop.time() >= deadline:
                        break
                    idle_rounds += 1
                    await asyncio.sleep(0)
                if batch:
                    await self._execute(batch)
            # Teardown flush: answer every still-queued request with
            # fault injection off, so a stopped gateway never strands
            # a caller.
            self._draining = True
            leftovers = list(self._retry)
            self._retry.clear()
            leftovers.extend(self._pending_mutations())
            self._mutations.clear()
            self._writer_order.clear()
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is not None and item is not _WAKE:
                    leftovers.append(item)
            leftovers.sort(key=lambda request: request.seq)
            for start in range(0, len(leftovers), self.max_batch):
                batch = leftovers[start : start + self.max_batch]
                await self._execute(batch)
        except BaseException as error:
            # Anything escaping a flush (telemetry, fault-session
            # bookkeeping, cancellation) kills the dispatcher; fail
            # every outstanding future first so no awaiter hangs.
            self._abort(batch, error)
            raise

    def _abort(self, batch: List[_Request], error: BaseException) -> None:
        """Dispatcher teardown on failure: strand no caller.

        Marks the gateway crashed (later submissions fail fast) and
        fails the in-flight batch plus everything still queued or
        awaiting retry.  Draining the queue also unblocks any producer
        stuck in a put against a full queue.
        """
        self._crashed = error
        stranded = list(batch)
        stranded.extend(self._retry)
        self._retry.clear()
        stranded.extend(self._pending_mutations())
        self._mutations.clear()
        self._writer_order.clear()
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not None and item is not _WAKE:
                stranded.append(item)
        for request in stranded:
            if request.future is not None and not request.future.done():
                request.future.set_exception(self._crash_error())

    def _apply_mutations(self, batch: List[_Request]) -> None:
        """The sequence barrier: coalesce and apply pending mutations.

        Covers every unapplied mutation in the batch plus any mutation
        still in the deque that is sequenced before the newest batched
        request (a query must never be answered while an older write is
        parked; such extras stay queued so their futures resolve on a
        later flush, with the outcome stored here).  The group replays
        in sequence order against a simulated presence map to compute
        per-request outcomes — duplicate inserts are no-ops, absent
        deletes fail that request alone — then the *net* edge effects
        land in one vectorized :meth:`GraphService.apply_batch`.  An
        edge toggled back to absent still ships as insert+delete (the
        batch self-cancellation interns its endpoints); one toggled
        back to present needs no operation at all.
        """
        group = [
            request
            for request in batch
            if request.kind in _MUTATION_KINDS and not request.applied
        ]
        parked = self._pending_mutations()
        if parked:
            max_seq = max(request.seq for request in batch)
            group.extend(
                request
                for request in parked
                if not request.applied and request.seq < max_seq
            )
        if not group:
            return
        group.sort(key=lambda request: request.seq)
        service = self.service
        has_edge = service.has_edge
        # Canonical per-pair key: an ordered tuple when the endpoints
        # compare (the hot path — one comparison, no allocation beyond
        # the tuple), a frozenset for heterogeneous node types.  The
        # same pair always maps to the same key either way.
        original: Dict[Hashable, bool] = {}
        state: Dict[Hashable, bool] = {}
        changed_keys: Set[Hashable] = set()
        order: List[Tuple[Hashable, Node, Node]] = []

        def canon(u: Node, v: Node) -> Hashable:
            try:
                return (u, v) if u <= v else (v, u)
            except TypeError:
                return frozenset((u, v))

        def lookup(key: Hashable, u: Node, v: Node) -> bool:
            current = state.get(key)
            if current is None:
                current = has_edge(u, v)
                original[key] = current
                state[key] = current
                order.append((key, u, v))
            return current

        ops = 0
        for request in group:
            try:
                if request.kind == "insert_edge":
                    u, v = request.args
                    ops += 1
                    if u == v:
                        raise ValueError(
                            f"self-loop on {u!r} not allowed in a simple graph"
                        )
                    key = canon(u, v)
                    if lookup(key, u, v):
                        request.result = False
                    else:
                        state[key] = True
                        changed_keys.add(key)
                        request.result = True
                elif request.kind == "delete_edge":
                    u, v = request.args
                    ops += 1
                    if u == v:
                        raise EdgeNotFoundError(u, v)
                    key = canon(u, v)
                    if not lookup(key, u, v):
                        raise EdgeNotFoundError(u, v)
                    state[key] = False
                    changed_keys.add(key)
                    request.result = None
                else:  # apply_batch: atomic per request
                    inserts, deletes = request.args
                    ops += len(inserts) + len(deletes)
                    staged: Dict[Hashable, bool] = {}
                    changed = 0
                    # Every touched key is registered in the group's
                    # presence map before any staging, so the commit
                    # below can net its effect.
                    for u, v in inserts:
                        if u == v:
                            raise ValueError(
                                f"self-loop on {u!r} not allowed in a simple graph"
                            )
                        key = canon(u, v)
                        current = staged.get(key)
                        if current is None:
                            current = lookup(key, u, v)
                        if not current:
                            staged[key] = True
                            changed += 1
                    for u, v in deletes:
                        if u == v:
                            raise EdgeNotFoundError(u, v)
                        key = canon(u, v)
                        current = staged.get(key)
                        if current is None:
                            current = lookup(key, u, v)
                        if not current:
                            raise EdgeNotFoundError(u, v)
                        staged[key] = False
                        changed += 1
                    for key, value in staged.items():
                        state[key] = value
                        changed_keys.add(key)
                    request.result = {
                        "ops": len(inserts) + len(deletes),
                        "changed": changed,
                    }
            except Exception as error:  # noqa: BLE001 — delivered to caller
                request.error = error
            request.applied = True

        net_inserts: List[Tuple[Node, Node]] = []
        net_deletes: List[Tuple[Node, Node]] = []
        for key, u, v in order:
            was, now = original[key], state[key]
            if not was and now:
                net_inserts.append((u, v))
            elif was and not now:
                net_deletes.append((u, v))
            elif not was and key in changed_keys:
                # Toggled back to absent: self-cancel in the batch so
                # the endpoints still intern (read-your-writes on node
                # existence for later queries).
                net_inserts.append((u, v))
                net_deletes.append((u, v))
        applied = len(net_inserts) + len(net_deletes)
        if applied == 1:
            # A lone net mutation (an awaited per-edge write, say) takes
            # the scalar O(degree) path — the vectorized batch machinery
            # only pays for itself from a few ops up.
            if net_inserts:
                service.insert_edge(*net_inserts[0])
            else:
                service.delete_edge(*net_deletes[0])
        elif applied:
            service.apply_batch(net_inserts, net_deletes, strict=True)
        record_write_batch(ops, applied)
        record_batch_writers(len({request.writer for request in group}))
        self.mutations_applied += sum(
            1 for request in group if request.error is None
        )

    async def _execute(self, batch: List[_Request]) -> None:
        """Answer one batch: write barrier, coalesced sweeps, fates."""
        record_serving_batch(len(batch), self._queue.qsize())
        self.batches_flushed += 1
        self._apply_mutations(batch)
        chaos = self._session is not None and not self._draining
        if chaos and len(batch) > 1:
            perm = self._session.reorder_permutation(
                self.batches_flushed, "gateway", len(batch)
            )
            if perm is not None:
                batch = [batch[i] for i in perm]
        levels: Dict[Node, Tuple[int, np.ndarray]] = {}
        crashed = False
        for request in batch:
            if crashed:
                # Everything after the crash point is lost with it.
                self._retry.append(request)
                record_serving_retry()
                continue
            fate = DELIVER
            if chaos:
                fate = self._session.message_fate(
                    self.batches_flushed, "gateway", f"q{request.seq}"
                )
            if fate.drop:
                crashed = True
                self._retry.append(request)
                record_serving_retry()
                continue
            try:
                result = self._answer(request, levels)
            except Exception as error:  # noqa: BLE001 — delivered to caller
                if not request.future.done():
                    request.future.set_exception(error)
                continue
            for _ in range(fate.delay):
                await asyncio.sleep(0)
            if not request.future.done():
                request.future.set_result(result)
                if request.kind not in _MUTATION_KINDS:
                    self.queries_answered += 1

    def _answer(
        self, request: _Request, levels: Dict[Node, Tuple[int, np.ndarray]]
    ) -> Any:
        """Compute one answer against the *current* service state."""
        service = self.service
        if request.kind in _MUTATION_KINDS:
            # Applied (exactly once) by the sequence barrier; this just
            # delivers the stored outcome — possibly on a retry flush
            # after a drop fate swallowed the first acknowledgment.
            if request.error is not None:
                raise request.error
            return request.result
        if request.kind == "distance":
            u, v = request.args
            target = service.patched.index_of(v)
            cached = levels.get(u)
            # A delay fate yields the event loop mid-batch, so a
            # concurrent task can mutate the service between answers.
            # A sweep is only reusable at the version it was taken —
            # a current index into a pre-mutation array would read a
            # stale level, or past the end for a node added mid-batch.
            if cached is None or cached[0] != service.version:
                cached = (service.version, service.distances_from(u))
                levels[u] = cached
                record_serving_sweep()
            level = int(cached[1][target])
            return None if level < 0 else level
        if request.kind == "nsf_level":
            return service.nsf_level(*request.args)
        if request.kind == "gateway_label":
            return service.gateway_label(*request.args)
        if request.kind == "pagerank_score":
            return service.pagerank_score(*request.args)
        if request.kind == "mis_member":
            return service.mis_member(*request.args)
        raise ValueError(f"unknown query kind {request.kind!r}")

    def __repr__(self) -> str:
        return (
            f"ServingGateway(max_batch={self.max_batch}, "
            f"max_delay={self.max_delay}, "
            f"batches={self.batches_flushed}, "
            f"answered={self.queries_answered})"
        )
