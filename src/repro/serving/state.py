"""Mutable serving state: a patched snapshot plus hot incremental indexes.

:class:`GraphService` is the synchronous core the async gateway wraps.
It owns three things and keeps them mutually consistent:

* a :class:`~repro.graphs.delta.PatchedGraph` — the CSR base plus the
  pending edge patches, rebased above ``threshold`` pending entries;
* an :class:`~repro.layering.incremental.IncrementalNSF` — the peel
  level labeling, repaired by round replay;
* an :class:`~repro.labeling.incremental.IncrementalLandmarkLabels` —
  the (distance, gateway) landmark labels, repaired by two-phase
  invalidate/relax.

Mutations are applied eagerly (O(degree) into the patch buffer) while
index repair is *lazy*: touched edge pairs accumulate in one dirty set
and both indexes are repaired on the first level/label query after a
mutation.  Distance queries never force a merge at all — they run the
patch-aware multi-source BFS (:meth:`PatchedGraph.bfs_levels`)
directly against the overlay.

Nothing in the steady state goes through the dict-graph refreeze path:
the constructor freezes the seed topology once via the plain
:class:`~repro.graphs.csr.FrozenGraph` constructor (no cache events),
and every later snapshot is a vectorized patch merge.  The
differential harness (``tests/test_incremental_differential.py``)
holds a mirror dict graph and asserts bit-exactness of the CSR arrays,
NSF levels, and landmark labels against the full-rebuild references at
every step.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.csr import FrozenGraph
from repro.graphs.delta import DEFAULT_PATCH_THRESHOLD, PatchedGraph
from repro.labeling.incremental import IncrementalLandmarkLabels
from repro.labeling.landmarks import select_landmarks
from repro.layering.incremental import IncrementalNSF

Node = Hashable


class GraphService:
    """Delta-aware graph state behind point-query methods.

    >>> from repro.graphs.graph import Graph
    >>> svc = GraphService(Graph([("a", "b"), ("b", "c")]), landmarks=["a"])
    >>> svc.insert_edge("a", "c")
    True
    >>> svc.distance("a", "c")
    1
    >>> svc.nsf_level("b") >= 1
    True
    """

    def __init__(
        self,
        graph,
        landmarks: Optional[Sequence[Node]] = None,
        landmark_count: int = 4,
        threshold: int = DEFAULT_PATCH_THRESHOLD,
    ) -> None:
        if landmarks is None:
            landmarks = select_landmarks(graph, landmark_count)
        self.landmarks: List[Node] = list(landmarks)
        base = FrozenGraph(graph)
        self._patched = PatchedGraph(base, threshold=threshold)
        #: Canonical index pairs mutated since the last index repair.
        #: Node indices are append-only, so pairs recorded at mutation
        #: time stay valid in every later snapshot.
        self._touched: Set[Tuple[int, int]] = set()
        self._nsf: Optional[IncrementalNSF] = None
        self._labels: Optional[IncrementalLandmarkLabels] = None

    # ------------------------------------------------------------------
    # state views
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone mutation counter (the patch buffer's version)."""
        return self._patched.version

    @property
    def patched(self) -> PatchedGraph:
        return self._patched

    @property
    def node_list(self) -> List[Node]:
        return self._patched.node_list

    def snapshot(self) -> FrozenGraph:
        """The current merged CSR snapshot (lazy, never a refreeze)."""
        return self._patched.snapshot()

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _touch(self, u: Node, v: Node) -> None:
        iu = self._patched.index_of(u)
        iv = self._patched.index_of(v)
        self._touched.add((iu, iv) if iu < iv else (iv, iu))

    def insert_edge(self, u: Node, v: Node) -> bool:
        """Add undirected edge (u, v); True if the topology changed."""
        changed = self._patched.insert_edge(u, v)
        if changed:
            self._touch(u, v)
        return changed

    def delete_edge(self, u: Node, v: Node) -> None:
        """Remove undirected edge (u, v); absent edges raise."""
        self._patched.delete_edge(u, v)
        self._touch(u, v)

    def has_edge(self, u: Node, v: Node) -> bool:
        return self._patched.has_edge(u, v)

    # ------------------------------------------------------------------
    # lazy index repair
    # ------------------------------------------------------------------
    def _repair(self) -> FrozenGraph:
        """Bring both incremental indexes up to the current snapshot."""
        fg = self._patched.snapshot()
        if self._nsf is None:
            self._nsf = IncrementalNSF(fg)
            self._labels = IncrementalLandmarkLabels(fg, self.landmarks)
            self._touched.clear()
        elif self._touched:
            pairs = sorted(self._touched)
            self._nsf.update(fg, pairs)
            self._labels.update(fg, pairs)
            self._touched.clear()
        return fg

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    def distances_from(self, source: Node) -> np.ndarray:
        """Hop levels from ``source`` over the patched topology.

        One patch-aware BFS sweep; the gateway coalesces every distance
        query sharing a source onto a single call.  Indexed by node
        position (-1 unreachable), aligned with :attr:`node_list`.
        """
        return self._patched.bfs_levels(self._patched.index_of(source))

    def distance(self, u: Node, v: Node) -> Optional[int]:
        """Hop distance between ``u`` and ``v``; None if disconnected."""
        level = int(self.distances_from(u)[self._patched.index_of(v)])
        return None if level < 0 else level

    def nsf_level(self, node: Node) -> int:
        """The node's NSF peel level (1-based), repaired incrementally."""
        self._repair()
        return self._nsf.level_of(self._patched.index_of(node))

    def gateway_label(self, node: Node) -> Optional[Tuple[int, Node]]:
        """(distance, gateway landmark) label; None if unreachable."""
        fg = self._repair()
        i = fg.index_of(node)
        if not self._labels.is_reachable(i):
            return None
        return self._labels.label_of(i)

    # ------------------------------------------------------------------
    # bulk views (differential-harness surface)
    # ------------------------------------------------------------------
    def nsf_levels_map(self) -> Dict[Node, int]:
        """All NSF levels by node, comparable with the batch reference."""
        fg = self._repair()
        return self._nsf.levels_map(fg)

    def gateway_labels_map(self) -> Dict[Node, Tuple[int, Node]]:
        """All landmark labels by node, comparable with the reference."""
        fg = self._repair()
        return self._labels.labels_map(fg)

    def __repr__(self) -> str:
        return (
            f"GraphService(n={self._patched.n}, version={self.version}, "
            f"pending={self._patched.pending}, "
            f"landmarks={len(self.landmarks)})"
        )
