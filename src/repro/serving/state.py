"""Mutable serving state: a patched snapshot plus hot incremental indexes.

:class:`GraphService` is the synchronous core the async gateway wraps.
It owns a :class:`~repro.graphs.delta.PatchedGraph` — the CSR base plus
the pending edge patches, rebased above ``threshold`` pending entries —
and five incremental indexes kept consistent with it:

* an :class:`~repro.layering.incremental.IncrementalNSF` — the peel
  level labeling, repaired by round replay;
* an :class:`~repro.labeling.incremental.IncrementalLandmarkLabels` —
  the (distance, gateway) landmark labels, repaired by two-phase
  invalidate/relax;
* an :class:`~repro.labeling.incremental.IncrementalPageRank` — scores
  re-converged by warm-started power iteration;
* an :class:`~repro.labeling.incremental.IncrementalMIS` — three-color
  clusterhead membership, repaired by round replay;
* an :class:`~repro.labeling.incremental.IncrementalCDS` — the Wu–Dai
  marked/trimmed backbone, repaired by touched-region rule replay.

Mutations are applied eagerly (O(degree) into the patch buffer; whole
batches in one vectorized :meth:`PatchedGraph.apply_batch` pass) while
index repair is *lazy*: touched edge pairs accumulate in one dirty set
per index and each index repairs on its first query after a mutation —
so a pure distance/PageRank workload never pays for label repair.  The
NSF levels and landmark labels share one dirty set (they are built and
repaired together; the serving workloads always touch both).  Distance
queries never force a merge at all — they run the patch-aware
multi-source BFS (:meth:`PatchedGraph.bfs_levels`) directly against
the overlay, with a version-keyed single-entry cache so repeated
same-source queries between mutations reuse one sweep.

Nothing in the steady state goes through the dict-graph refreeze path:
the constructor freezes the seed topology once via the plain
:class:`~repro.graphs.csr.FrozenGraph` constructor (no cache events),
and every later snapshot is a vectorized patch merge.  The
differential harness (``tests/test_incremental_differential.py``)
holds a mirror dict graph and asserts bit-exactness of the CSR arrays,
NSF levels, landmark labels, MIS, and CDS (PageRank within tolerance)
against the full-rebuild references at every step.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.csr import FrozenGraph
from repro.graphs.delta import (
    DEFAULT_PATCH_THRESHOLD,
    PatchBatchResult,
    PatchedGraph,
)
from repro.labeling.incremental import (
    IncrementalCDS,
    IncrementalLandmarkLabels,
    IncrementalMIS,
    IncrementalPageRank,
)
from repro.labeling.landmarks import select_landmarks
from repro.layering.incremental import IncrementalNSF

Node = Hashable


class GraphService:
    """Delta-aware graph state behind point-query methods.

    >>> from repro.graphs.graph import Graph
    >>> svc = GraphService(Graph([("a", "b"), ("b", "c")]), landmarks=["a"])
    >>> svc.insert_edge("a", "c")
    True
    >>> svc.distance("a", "c")
    1
    >>> svc.nsf_level("b") >= 1
    True
    """

    def __init__(
        self,
        graph,
        landmarks: Optional[Sequence[Node]] = None,
        landmark_count: int = 4,
        threshold: int = DEFAULT_PATCH_THRESHOLD,
    ) -> None:
        if landmarks is None:
            landmarks = select_landmarks(graph, landmark_count)
        self.landmarks: List[Node] = list(landmarks)
        base = FrozenGraph(graph)
        self._patched = PatchedGraph(base, threshold=threshold)
        #: Canonical index pairs mutated since each index's last repair.
        #: Node indices are append-only, so pairs recorded at mutation
        #: time stay valid in every later snapshot.  "core" covers the
        #: coupled NSF + landmark-label pair; PageRank, MIS, and CDS
        #: repair independently so querying one never repairs the others.
        self._dirty: Dict[str, Set[Tuple[int, int]]] = {
            "core": set(),
            "pagerank": set(),
            "mis": set(),
            "cds": set(),
        }
        self._nsf: Optional[IncrementalNSF] = None
        self._labels: Optional[IncrementalLandmarkLabels] = None
        self._pagerank: Optional[IncrementalPageRank] = None
        self._mis: Optional[IncrementalMIS] = None
        self._cds: Optional[IncrementalCDS] = None
        #: Single-entry BFS sweep cache: (version, n, source index, levels).
        self._dist_cache: Optional[Tuple[int, int, int, np.ndarray]] = None

    # ------------------------------------------------------------------
    # state views
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone mutation counter (the patch buffer's version)."""
        return self._patched.version

    @property
    def patched(self) -> PatchedGraph:
        return self._patched

    @property
    def node_list(self) -> List[Node]:
        return self._patched.node_list

    def snapshot(self) -> FrozenGraph:
        """The current merged CSR snapshot (lazy, never a refreeze)."""
        return self._patched.snapshot()

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _touch(self, u: Node, v: Node) -> None:
        iu = self._patched.index_of(u)
        iv = self._patched.index_of(v)
        key = (iu, iv) if iu < iv else (iv, iu)
        for dirty in self._dirty.values():
            dirty.add(key)

    def insert_edge(self, u: Node, v: Node) -> bool:
        """Add undirected edge (u, v); True if the topology changed."""
        changed = self._patched.insert_edge(u, v)
        if changed:
            self._touch(u, v)
        return changed

    def delete_edge(self, u: Node, v: Node) -> None:
        """Remove undirected edge (u, v); absent edges raise."""
        self._patched.delete_edge(u, v)
        self._touch(u, v)

    def apply_batch(
        self,
        inserts: Sequence[Tuple[Node, Node]] = (),
        deletes: Sequence[Tuple[Node, Node]] = (),
        strict: bool = True,
    ) -> PatchBatchResult:
        """Apply a mutation batch in one vectorized pass (the write path).

        Semantics of :meth:`PatchedGraph.apply_batch` (inserts first,
        then deletes; ``strict=False`` reports invalid ops per-op
        instead of raising); the batch's touched pairs feed every
        index's dirty set in one bulk union instead of a per-edge
        bookkeeping round-trip.
        """
        result = self._patched.apply_batch(inserts, deletes, strict=strict)
        if result.touched:
            for dirty in self._dirty.values():
                dirty.update(result.touched)
        return result

    def has_edge(self, u: Node, v: Node) -> bool:
        return self._patched.has_edge(u, v)

    # ------------------------------------------------------------------
    # lazy index repair
    # ------------------------------------------------------------------
    def _repair(self) -> FrozenGraph:
        """Bring the NSF + landmark-label pair up to the current snapshot.

        The size check alongside the dirty set covers the corner where
        a failed strict batch interned nodes without touching any edge
        (every ``update`` treats node growth as a repair trigger).
        """
        fg = self._patched.snapshot()
        dirty = self._dirty["core"]
        if self._nsf is None:
            self._nsf = IncrementalNSF(fg)
            self._labels = IncrementalLandmarkLabels(fg, self.landmarks)
            dirty.clear()
        elif dirty or fg.n != self._nsf._n:
            pairs = sorted(dirty)
            self._nsf.update(fg, pairs)
            self._labels.update(fg, pairs)
            dirty.clear()
        return fg

    def _repair_pagerank(self) -> FrozenGraph:
        """Bring the PageRank scores up to the current snapshot."""
        fg = self._patched.snapshot()
        dirty = self._dirty["pagerank"]
        if self._pagerank is None:
            self._pagerank = IncrementalPageRank(fg)
            dirty.clear()
        elif dirty or fg.n != self._pagerank._n:
            self._pagerank.update(fg, sorted(dirty))
            dirty.clear()
        return fg

    def _repair_mis(self) -> FrozenGraph:
        """Bring the MIS membership up to the current snapshot."""
        fg = self._patched.snapshot()
        dirty = self._dirty["mis"]
        if self._mis is None:
            self._mis = IncrementalMIS(fg)
            dirty.clear()
        elif dirty or fg.n != self._mis._n:
            self._mis.update(fg, sorted(dirty))
            dirty.clear()
        return fg

    def _repair_cds(self) -> FrozenGraph:
        """Bring the CDS membership up to the current snapshot."""
        fg = self._patched.snapshot()
        dirty = self._dirty["cds"]
        if self._cds is None:
            self._cds = IncrementalCDS(fg)
            dirty.clear()
        elif dirty or fg.n != self._cds._n:
            self._cds.update(fg, sorted(dirty))
            dirty.clear()
        return fg

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    def distances_from(self, source: Node) -> np.ndarray:
        """Hop levels from ``source`` over the patched topology.

        One patch-aware BFS sweep; the gateway coalesces every distance
        query sharing a source onto a single call, and a version-keyed
        single-entry cache reuses the sweep across repeated same-source
        queries between mutations (any mutation bumps ``version`` and
        so invalidates it).  Indexed by node position (-1 unreachable),
        aligned with :attr:`node_list`.
        """
        i = self._patched.index_of(source)
        version = self._patched.version
        n = self._patched.n
        cache = self._dist_cache
        if cache is not None and cache[:3] == (version, n, i):
            return cache[3]
        levels = self._patched.bfs_levels(i)
        self._dist_cache = (version, n, i, levels)
        return levels

    def distance(self, u: Node, v: Node) -> Optional[int]:
        """Hop distance between ``u`` and ``v``; None if disconnected."""
        level = int(self.distances_from(u)[self._patched.index_of(v)])
        return None if level < 0 else level

    def nsf_level(self, node: Node) -> int:
        """The node's NSF peel level (1-based), repaired incrementally."""
        self._repair()
        return self._nsf.level_of(self._patched.index_of(node))

    def gateway_label(self, node: Node) -> Optional[Tuple[int, Node]]:
        """(distance, gateway landmark) label; None if unreachable."""
        fg = self._repair()
        i = fg.index_of(node)
        if not self._labels.is_reachable(i):
            return None
        return self._labels.label_of(i)

    # ------------------------------------------------------------------
    # bulk views (differential-harness surface)
    # ------------------------------------------------------------------
    def nsf_levels_map(self) -> Dict[Node, int]:
        """All NSF levels by node, comparable with the batch reference."""
        fg = self._repair()
        return self._nsf.levels_map(fg)

    def gateway_labels_map(self) -> Dict[Node, Tuple[int, Node]]:
        """All landmark labels by node, comparable with the reference."""
        fg = self._repair()
        return self._labels.labels_map(fg)

    # ------------------------------------------------------------------
    # PageRank / MIS queries (incremental, independently repaired)
    # ------------------------------------------------------------------
    def pagerank_score(self, node: Node) -> float:
        """The node's PageRank score, re-converged incrementally."""
        fg = self._repair_pagerank()
        return float(self._pagerank.scores[fg.index_of(node)])

    def pagerank_vector(self) -> np.ndarray:
        """Index-aligned PageRank scores (read-only by convention)."""
        self._repair_pagerank()
        return self._pagerank.scores

    def pagerank_map(self) -> Dict[Node, float]:
        """Node-facing PageRank view, comparable with the batch kernel."""
        fg = self._repair_pagerank()
        scores = self._pagerank.scores
        nodes = fg.node_list
        return {nodes[i]: float(scores[i]) for i in range(fg.n)}

    def mis_priorities(self) -> np.ndarray:
        """The repr-rank priorities the maintained MIS was built with."""
        self._repair_mis()
        return self._mis.priorities

    def mis_member(self, node: Node) -> bool:
        """Whether ``node`` is a clusterhead in the maintained MIS."""
        fg = self._repair_mis()
        return bool(self._mis.member_mask()[fg.index_of(node)])

    def mis_mask(self) -> np.ndarray:
        """Index-aligned MIS membership mask (read-only by convention)."""
        self._repair_mis()
        return self._mis.member_mask()

    def mis_set(self) -> Set[Node]:
        """The maintained MIS as a node set, comparable with the batch kernel."""
        fg = self._repair_mis()
        return self._mis.members(fg)

    # ------------------------------------------------------------------
    # CDS queries (incremental, independently repaired)
    # ------------------------------------------------------------------
    def cds_member(self, node: Node) -> bool:
        """Whether ``node`` is on the maintained Wu–Dai backbone."""
        fg = self._repair_cds()
        return bool(self._cds.member_mask()[fg.index_of(node)])

    def cds_mask(self) -> np.ndarray:
        """Index-aligned CDS membership mask (read-only by convention)."""
        self._repair_cds()
        return self._cds.member_mask()

    def cds_set(self) -> Set[Node]:
        """The maintained trimmed CDS, comparable with ``wu_dai_cds``."""
        fg = self._repair_cds()
        return self._cds.members(fg)

    def cds_marked_set(self) -> Set[Node]:
        """The pre-trimming marked (black) set of the maintained CDS."""
        fg = self._repair_cds()
        return self._cds.marked(fg)

    def __repr__(self) -> str:
        return (
            f"GraphService(n={self._patched.n}, version={self.version}, "
            f"pending={self._patched.pending}, "
            f"landmarks={len(self.landmarks)})"
        )
