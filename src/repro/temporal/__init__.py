"""Time-evolving graphs: the temporal substrate (Sec. II-B of the paper).

Micro-level: :class:`EvolvingGraph` with per-edge time-unit label sets,
journeys (earliest-completion / minimum-hop / fastest), time-sensitive
connectivity and the dynamic diameter.  Macro-level: contact traces with
contact-duration and inter-contact-time distributions, and the
two-state edge-Markovian process.
"""

from repro.temporal.connectivity import (
    connection_start_times,
    dynamic_diameter,
    ever_snapshot_connected,
    flooding_time,
    is_connected_at,
    is_time_i_connected,
    reachable_set,
    snapshot_connected_pairs,
    temporal_eccentricities,
    temporal_eccentricity,
)
from repro.temporal.frozen import FROZEN_MIN_CONTACTS, FrozenContacts
from repro.temporal.contacts import (
    ContactRecord,
    ContactTrace,
    ExponentialFit,
    fit_exponential,
    generate_exponential_trace,
)
from repro.temporal.edge_markovian import (
    EdgeMarkovianProcess,
    FloodingMeasurement,
    measure_flooding_times,
)
from repro.temporal.evolving import EvolvingGraph, paper_fig2_evolving_graph
from repro.temporal.incremental import (
    IncrementalReachability,
    incremental_from_contacts,
)
from repro.temporal.weighted_journeys import (
    journey_bottleneck,
    journey_delay,
    max_bandwidth_journey,
    min_delay_journey,
    most_reliable_journey,
)
from repro.temporal.small_world import (
    TemporalSmallWorldReport,
    characteristic_temporal_path_length,
    randomize_contact_times,
    temporal_correlation_coefficient,
    temporal_small_world_report,
)
from repro.temporal.journeys import (
    Journey,
    earliest_arrival,
    earliest_completion_journey,
    fastest_journey,
    foremost_tree,
    is_valid_journey,
    latest_departure,
    minimum_hop_journey,
    temporal_distance,
)

__all__ = [
    "FROZEN_MIN_CONTACTS",
    "ContactRecord",
    "ContactTrace",
    "FrozenContacts",
    "EdgeMarkovianProcess",
    "EvolvingGraph",
    "ExponentialFit",
    "FloodingMeasurement",
    "IncrementalReachability",
    "Journey",
    "TemporalSmallWorldReport",
    "connection_start_times",
    "dynamic_diameter",
    "earliest_arrival",
    "earliest_completion_journey",
    "ever_snapshot_connected",
    "fastest_journey",
    "fit_exponential",
    "flooding_time",
    "foremost_tree",
    "generate_exponential_trace",
    "incremental_from_contacts",
    "is_connected_at",
    "is_time_i_connected",
    "is_valid_journey",
    "journey_bottleneck",
    "journey_delay",
    "latest_departure",
    "max_bandwidth_journey",
    "measure_flooding_times",
    "min_delay_journey",
    "most_reliable_journey",
    "minimum_hop_journey",
    "paper_fig2_evolving_graph",
    "reachable_set",
    "snapshot_connected_pairs",
    "characteristic_temporal_path_length",
    "randomize_contact_times",
    "temporal_correlation_coefficient",
    "temporal_distance",
    "temporal_small_world_report",
    "temporal_eccentricities",
    "temporal_eccentricity",
]
