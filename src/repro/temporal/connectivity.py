"""Time-sensitive connectivity of time-evolving graphs (Sec. II-B).

The paper's convention: vertex u is *connected to* v at time unit i if a
journey u →* v exists whose first edge label is ≥ i.  Note connectivity
over time is **not symmetric** — in Fig. 2, A is connected to C at time
units 0..4 while the two are never connected within a single snapshot.

This module provides reachability sets, the per-pair set of feasible
starting times, whole-network time-i-connectivity (the precondition of
the trimming rule in Sec. III-A), and the *dynamic diameter* — the
flooding time, extending "diameter" to the temporal setting.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import NodeNotFoundError
from repro.temporal.evolving import EvolvingGraph
from repro.temporal.frozen import FROZEN_MIN_CONTACTS
from repro.observability.telemetry import record_dispatch
from repro.temporal.journeys import earliest_arrival, earliest_arrival_reference

Node = Hashable


def is_connected_at(eg: EvolvingGraph, u: Node, v: Node, start: int) -> bool:
    """True iff a journey u →* v exists with first label >= ``start``."""
    if not eg.has_node(v):
        raise NodeNotFoundError(v)
    return v in earliest_arrival(eg, u, start)


def reachable_set(eg: EvolvingGraph, source: Node, start: int = 0) -> Set[Node]:
    """All nodes connected from ``source`` at starting time ``start``."""
    return set(earliest_arrival(eg, source, start))


def connection_start_times(eg: EvolvingGraph, u: Node, v: Node) -> List[int]:
    """All starting time units i at which u is connected to v.

    For the paper's Fig. 2, ``connection_start_times(eg, "A", "C")``
    is ``[0, 1, 2, 3, 4]``.
    """
    if not eg.has_node(u):
        raise NodeNotFoundError(u)
    if not eg.has_node(v):
        raise NodeNotFoundError(v)
    return [
        start for start in range(eg.horizon) if is_connected_at(eg, u, v, start)
    ]


def is_time_i_connected(eg: EvolvingGraph, start: int) -> bool:
    """True iff every ordered pair of nodes is connected at time ``start``.

    This is the property the Sec. III-A trimming rule preserves: "if the
    network is time-i-connected, it remains connected after using the
    trimming rule".  Above the frozen threshold every source floods in
    one bit-parallel batched scan instead of one scan per source.
    """
    if eg.num_contacts >= FROZEN_MIN_CONTACTS:
        record_dispatch("temporal.is_time_i_connected", fast=True)
        _, reached = eg.frozen().flooding_stats(start)
        return bool((reached == eg.num_nodes).all())
    record_dispatch("temporal.is_time_i_connected", fast=False)
    return is_time_i_connected_reference(eg, start)


def is_time_i_connected_reference(eg: EvolvingGraph, start: int) -> bool:
    """One reference arrival scan per source: the ground truth."""
    nodes = list(eg.nodes())
    for source in nodes:
        if len(earliest_arrival_reference(eg, source, start)) != len(nodes):
            return False
    return True


def snapshot_connected_pairs(eg: EvolvingGraph, time: int) -> Set[Tuple[Node, Node]]:
    """Unordered pairs connected *within* snapshot G_time (no storage)."""
    from repro.graphs.traversal import connected_components

    snapshot = eg.snapshot(time)
    pairs: Set[Tuple[Node, Node]] = set()
    for component in connected_components(snapshot):
        members = sorted(component, key=repr)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                pairs.add((a, b))
    return pairs


def ever_snapshot_connected(eg: EvolvingGraph, u: Node, v: Node) -> bool:
    """True iff u and v lie in one component of *some* single snapshot.

    Fig. 2's point: this can be False while carry-store-forward routing
    still delivers (A and C).
    """
    from repro.graphs.traversal import connected_components

    for time in range(eg.horizon):
        for component in connected_components(eg.snapshot(time)):
            if u in component and v in component:
                return True
    return False


def flooding_time(eg: EvolvingGraph, source: Node, start: int = 0) -> Optional[int]:
    """Time units until a flood from ``source`` covers every node.

    Returns ``latest earliest-arrival - start`` when all nodes are
    reached, else ``None``.  This is the per-source component of the
    dynamic diameter.  (``earliest_arrival`` routes through the frozen
    single-scan kernel above the threshold.)
    """
    arrival = earliest_arrival(eg, source, start)
    if len(arrival) != eg.num_nodes:
        return None
    latest = max(arrival.values())
    return latest - start


def flooding_time_reference(
    eg: EvolvingGraph, source: Node, start: int = 0
) -> Optional[int]:
    """Flooding time over the reference arrival scan: ground truth."""
    arrival = earliest_arrival_reference(eg, source, start)
    if len(arrival) != eg.num_nodes:
        return None
    latest = max(arrival.values())
    return latest - start


def temporal_eccentricities(
    eg: EvolvingGraph, start: int = 0
) -> Dict[Node, Optional[int]]:
    """Temporal eccentricity (flooding time) of *every* node at once.

    One bit-parallel batched scan of the contact index covers all
    sources together above the frozen threshold — the multi-source
    kernel behind :func:`dynamic_diameter` — instead of one full
    per-source scan each.  ``None`` where a flood never completes.
    """
    if eg.num_contacts >= FROZEN_MIN_CONTACTS:
        record_dispatch("temporal.temporal_eccentricities", fast=True)
        fc = eg.frozen()
        latest, reached = fc.flooding_stats(start)
        n = eg.num_nodes
        return {
            node: int(latest[i]) - start if int(reached[i]) == n else None
            for i, node in enumerate(fc.node_list)
        }
    record_dispatch("temporal.temporal_eccentricities", fast=False)
    return {
        node: flooding_time_reference(eg, node, start) for node in eg.nodes()
    }


def dynamic_diameter(eg: EvolvingGraph, start: int = 0) -> Optional[int]:
    """The dynamic diameter: worst-case flooding time over all sources.

    The paper: "diameter [extends] to dynamic diameter (which is
    flooding time)".  ``None`` when some flood never completes.
    """
    if eg.num_contacts >= FROZEN_MIN_CONTACTS:
        record_dispatch("temporal.dynamic_diameter", fast=True)
        worst = 0
        for time in temporal_eccentricities(eg, start).values():
            if time is None:
                return None
            worst = max(worst, time)
        return worst
    record_dispatch("temporal.dynamic_diameter", fast=False)
    return dynamic_diameter_reference(eg, start)


def dynamic_diameter_reference(eg: EvolvingGraph, start: int = 0) -> Optional[int]:
    """One reference flood per source: the ground truth."""
    worst = 0
    for source in eg.nodes():
        time = flooding_time_reference(eg, source, start)
        if time is None:
            return None
        worst = max(worst, time)
    return worst


def temporal_eccentricity(
    eg: EvolvingGraph, source: Node, start: int = 0
) -> Optional[int]:
    """Max temporal distance from ``source``; ``None`` if not all reached."""
    return flooding_time(eg, source, start)
