"""Contact traces: the macro-level model of Sec. II-B.

In the system community, per-time-unit edge labels are abstracted as
*contacts* following a distribution induced by a mobility model.  The
two standard measures the paper names are the **contact duration
distribution** and the **inter-contact time distribution**; the
exponential distribution is the common (if imperfect) analytical
choice.

This module defines continuous-time contact records, computes both
empirical distributions, fits exponential rates by maximum likelihood
(with a simple KS goodness-of-fit score), and discretises a trace into
an :class:`~repro.temporal.evolving.EvolvingGraph` so the micro-level
machinery applies to macro-level data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.temporal.evolving import EvolvingGraph

Node = Hashable
Pair = FrozenSet[Node]


@dataclass(frozen=True)
class ContactRecord:
    """One contact: nodes u and v within range during [start, end)."""

    u: Node
    v: Node
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-contact on {self.u!r}")
        if self.end <= self.start:
            raise ValueError(
                f"contact must have positive duration: [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def pair(self) -> Pair:
        return frozenset((self.u, self.v))


@dataclass
class ContactTrace:
    """An ordered collection of contact records plus the node universe."""

    records: List[ContactRecord] = field(default_factory=list)
    nodes: set = field(default_factory=set)

    def add(self, record: ContactRecord) -> None:
        self.records.append(record)
        self.nodes.add(record.u)
        self.nodes.add(record.v)

    def add_contact(self, u: Node, v: Node, start: float, end: float) -> None:
        self.add(ContactRecord(u=u, v=v, start=start, end=end))

    def sorted_records(self) -> List[ContactRecord]:
        return sorted(self.records, key=lambda r: (r.start, r.end, repr(r.pair)))

    @property
    def num_contacts(self) -> int:
        return len(self.records)

    @property
    def end_time(self) -> float:
        return max((r.end for r in self.records), default=0.0)

    # ------------------------------------------------------------------
    # the two macro-level distributions
    # ------------------------------------------------------------------
    def contact_durations(self) -> List[float]:
        """All contact durations (the contact duration distribution)."""
        return [record.duration for record in self.records]

    def inter_contact_times(self) -> List[float]:
        """Per-pair gaps between consecutive contacts, pooled over pairs.

        The inter-contact time of a pair is the time from the end of one
        contact to the start of the next contact of the *same* pair.
        """
        by_pair: Dict[Pair, List[ContactRecord]] = {}
        for record in self.records:
            by_pair.setdefault(record.pair, []).append(record)
        gaps: List[float] = []
        for pair_records in by_pair.values():
            pair_records.sort(key=lambda r: r.start)
            for previous, current in zip(pair_records, pair_records[1:]):
                gap = current.start - previous.end
                if gap > 0:
                    gaps.append(gap)
        return gaps

    def pair_contact_counts(self) -> Dict[Pair, int]:
        """Number of contacts per node pair (contact frequency)."""
        counts: Dict[Pair, int] = {}
        for record in self.records:
            counts[record.pair] = counts.get(record.pair, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # discretisation
    # ------------------------------------------------------------------
    def to_evolving(self, slot: float, horizon: Optional[int] = None) -> EvolvingGraph:
        """Discretise into time units of length ``slot``.

        Edge (u, v) gets label i when the contact overlaps time window
        [i * slot, (i+1) * slot).  Above
        :data:`~repro.temporal.frozen.FROZEN_MIN_CONTACTS` records the
        per-record unit windows are computed vectorized and inserted in
        bulk (same first-touch edge order, same label sets); the
        per-record loop below that is the reference path.
        """
        from repro.temporal.frozen import FROZEN_MIN_CONTACTS

        if slot <= 0:
            raise ValueError(f"slot must be positive, got {slot}")
        if horizon is None:
            horizon = max(1, int(math.ceil(self.end_time / slot)))
        from repro.observability.telemetry import record_dispatch

        eg = EvolvingGraph(horizon=horizon, nodes=self.nodes)
        if len(self.records) >= FROZEN_MIN_CONTACTS:
            record_dispatch("temporal.to_evolving", fast=True)
            starts = np.fromiter(
                (r.start for r in self.records), dtype=np.float64
            )
            ends = np.fromiter((r.end for r in self.records), dtype=np.float64)
            firsts = np.maximum(
                np.floor(starts / slot).astype(np.int64), 0
            )
            lasts = np.minimum(
                np.ceil(ends / slot).astype(np.int64) - 1, horizon - 1
            )
            eg._bulk_add_contacts(
                (record.u, record.v, unit)
                for record, first, last in zip(
                    self.records, firsts.tolist(), lasts.tolist()
                )
                for unit in range(first, last + 1)
            )
            return eg
        record_dispatch("temporal.to_evolving", fast=False)
        for record in self.records:
            first = int(math.floor(record.start / slot))
            last = int(math.ceil(record.end / slot)) - 1
            for unit in range(max(0, first), min(horizon - 1, last) + 1):
                eg.add_contact(record.u, record.v, unit)
        return eg


@dataclass(frozen=True)
class ExponentialFit:
    """MLE exponential fit with a Kolmogorov–Smirnov distance."""

    rate: float
    n: int
    ks_distance: float

    @property
    def mean(self) -> float:
        return 1.0 / self.rate


def fit_exponential(samples: Sequence[float]) -> ExponentialFit:
    """MLE rate = 1 / mean, plus the KS distance to the fitted CDF.

    The paper notes the exponential is "frequently used due to the
    simplicity of its mathematics" but that e.g. boundaryless random
    waypoint does *not* match it — the KS distance quantifies that
    mismatch in our benchmarks.
    """
    values = [float(x) for x in samples if x > 0]
    if len(values) < 2:
        raise ValueError(f"need at least 2 positive samples, got {len(values)}")
    mean = sum(values) / len(values)
    rate = 1.0 / mean
    data = np.sort(np.asarray(values))
    n = len(data)
    empirical = np.arange(1, n + 1) / n
    model = 1.0 - np.exp(-rate * data)
    ks = float(
        max(
            np.max(np.abs(empirical - model)),
            np.max(np.abs(empirical - 1.0 / n - model)),
        )
    )
    return ExponentialFit(rate=rate, n=n, ks_distance=ks)


def generate_exponential_trace(
    nodes: Sequence[Node],
    rate: float,
    duration_mean: float,
    end_time: float,
    rng: np.random.Generator,
    pair_rates: Optional[Dict[Pair, float]] = None,
) -> ContactTrace:
    """Synthetic trace with exponential inter-contacts per pair.

    Each unordered pair meets as a Poisson process of intensity
    ``rate`` (or its ``pair_rates`` override); contact durations are
    exponential with mean ``duration_mean``.  This is the macro-level
    analytical model of Sec. II-B, and the setting in which the
    time-varying forwarding set of [13] is provably optimal.
    """
    if rate <= 0 and not pair_rates:
        raise ValueError("rate must be positive (or pair_rates supplied)")
    trace = ContactTrace()
    trace.nodes.update(nodes)
    node_list = list(nodes)
    for i, u in enumerate(node_list):
        for v in node_list[i + 1 :]:
            pair = frozenset((u, v))
            pair_rate = (pair_rates or {}).get(pair, rate)
            if pair_rate <= 0:
                continue
            t = float(rng.exponential(1.0 / pair_rate))
            while t < end_time:
                duration = float(rng.exponential(duration_mean))
                trace.add_contact(u, v, t, min(t + max(duration, 1e-9), end_time + duration))
                t += float(rng.exponential(1.0 / pair_rate)) + duration
    return trace
