"""The two-state edge-Markovian dynamic graph process (Sec. II-B, [6]).

The paper's "elegant two-state edge-Markovian process": every potential
edge evolves independently as a two-state Markov chain — if the edge
exists at time i it *dies* at time i+1 with probability p; if it does
not exist it *appears* with probability q.  The chain has the unique
stationary edge density q / (p + q), and the process "has been
successfully used to calculate the dynamic diameter" — which
:func:`measure_flooding_times` reproduces empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.temporal.connectivity import flooding_time
from repro.temporal.evolving import EvolvingGraph


class EdgeMarkovianProcess:
    """Generator of edge-Markovian snapshot sequences on n labelled nodes.

    Parameters
    ----------
    n:
        number of nodes (0..n-1).
    p:
        death probability — an existing edge disappears next step.
    q:
        birth probability — an absent edge appears next step.
    rng:
        numpy random generator (reproducibility).
    initial_density:
        edge density of G_0; defaults to the stationary density
        q / (p + q) so the process starts in equilibrium.
    """

    def __init__(
        self,
        n: int,
        p: float,
        q: float,
        rng: np.random.Generator,
        initial_density: Optional[float] = None,
    ) -> None:
        if n < 2:
            raise ValueError(f"need n >= 2 nodes, got {n}")
        for name, value in (("p", p), ("q", q)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if p + q == 0.0:
            raise ValueError("p + q must be positive (otherwise the graph is frozen)")
        self.n = int(n)
        self.p = float(p)
        self.q = float(q)
        self._rng = rng
        density = self.stationary_density if initial_density is None else initial_density
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"initial_density must be in [0, 1], got {density}")
        rows, cols = np.triu_indices(self.n, k=1)
        self._rows = rows
        self._cols = cols
        self._state = rng.random(len(rows)) < density

    @property
    def stationary_density(self) -> float:
        """The unique stationary edge density q / (p + q)."""
        return self.q / (self.p + self.q)

    def current_snapshot(self) -> Graph:
        graph = Graph()
        for node in range(self.n):
            graph.add_node(node)
        for u, v in zip(self._rows[self._state], self._cols[self._state]):
            graph.add_edge(int(u), int(v))
        return graph

    def step(self) -> Graph:
        """Advance one time unit and return the new snapshot."""
        draws = self._rng.random(len(self._state))
        survived = self._state & (draws >= self.p)
        born = (~self._state) & (draws < self.q)
        self._state = survived | born
        return self.current_snapshot()

    def edge_density(self) -> float:
        total = len(self._state)
        return float(np.count_nonzero(self._state)) / total if total else 0.0

    def generate(self, horizon: int) -> EvolvingGraph:
        """An :class:`EvolvingGraph` of ``horizon`` consecutive snapshots.

        Snapshot 0 is the current state; each later snapshot advances
        the chain by one step.
        """
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        snapshots = [self.current_snapshot()]
        for _ in range(horizon - 1):
            snapshots.append(self.step())
        return EvolvingGraph.from_snapshots(snapshots)


@dataclass(frozen=True)
class FloodingMeasurement:
    """Summary of empirical flooding times for one (n, p, q) setting."""

    n: int
    p: float
    q: float
    trials: int
    completed: int
    mean_flooding_time: Optional[float]
    max_flooding_time: Optional[int]


def measure_flooding_times(
    n: int,
    p: float,
    q: float,
    trials: int,
    horizon: int,
    rng: np.random.Generator,
) -> FloodingMeasurement:
    """Empirical dynamic-diameter measurement on edge-Markovian graphs.

    For each trial, generate a fresh process in equilibrium, flood from
    node 0 and record the flooding time within ``horizon``.  Mirrors
    the analysis setting of Clementi et al. [6]: denser / more volatile
    graphs (larger q) flood faster.
    """
    times: List[int] = []
    for _ in range(trials):
        process = EdgeMarkovianProcess(n, p, q, rng)
        eg = process.generate(horizon)
        time = flooding_time(eg, 0, start=0)
        if time is not None:
            times.append(time)
    if times:
        return FloodingMeasurement(
            n=n,
            p=p,
            q=q,
            trials=trials,
            completed=len(times),
            mean_flooding_time=sum(times) / len(times),
            max_flooding_time=max(times),
        )
    return FloodingMeasurement(
        n=n, p=p, q=q, trials=trials, completed=0,
        mean_flooding_time=None, max_flooding_time=None,
    )
