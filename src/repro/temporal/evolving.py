"""Time-evolving graphs (Sec. II-B, Fig. 2).

A time-evolving graph ``EG`` over a node set V is a collection of
spanning subgraphs ``G_0, G_1, ..., G_k`` for consecutive time units, in
which each edge (u, v) carries an *edge label set* — the set of time
units ``{i | (u, v) ∈ E_i}`` during which the edge (contact) exists.
Message transmission over a contact is instantaneous; storage between
contacts is free (carry-store-forward).

The class supports both views:

* label view — ``labels(u, v)`` returns the time units of the contact;
* snapshot view — ``snapshot(i)`` materialises G_i as a static graph.

A weighted variant attaches a per-(edge, time) weight, interpreted by
the application (bandwidth, delay, reliability).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import EdgeNotFoundError, NodeNotFoundError
from repro.graphs.graph import Graph, _edge_key

Node = Hashable
EdgeKey = Tuple[Node, Node]


class EvolvingGraph:
    """An undirected time-evolving graph with integer time-unit labels.

    >>> eg = EvolvingGraph(horizon=6)
    >>> eg.add_contact("A", "B", 1)
    >>> eg.add_contact("A", "B", 4)
    >>> sorted(eg.labels("A", "B"))
    [1, 4]
    """

    def __init__(self, horizon: int, nodes: Optional[Iterable[Node]] = None) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = int(horizon)
        self._nodes: Set[Node] = set()
        self._adj: Dict[Node, Set[Node]] = {}
        self._labels: Dict[EdgeKey, Set[int]] = {}
        self._weights: Dict[Tuple[EdgeKey, int], float] = {}
        # Mutation generation: bumped by any contact/node/weight change;
        # keys the frozen snapshot and the sorted-contact caches below
        # (same invalidation scheme as Graph._generation).
        self._generation = 0
        self._frozen = None
        self._contacts_cache: Dict[Node, Tuple[List[int], List[Tuple[int, Node]]]] = {}
        self._contacts_cache_generation = -1
        self._all_contacts_cache: Optional[List[Tuple[int, Node, Node]]] = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node not in self._nodes:
            self._nodes.add(node)
            self._adj[node] = set()
            self._generation += 1

    def add_contact(self, u: Node, v: Node, time: int, weight: Optional[float] = None) -> None:
        """Declare that edge (u, v) exists during time unit ``time``.

        Re-adding an existing contact (same time label, and the same —
        or no — weight) is a no-op and does *not* bump the mutation
        generation, so cached frozen snapshots stay valid; a changed
        weight does invalidate (``FrozenContacts`` captures weights).
        """
        if u == v:
            raise ValueError(f"self-contact on {u!r} not allowed")
        self._check_time(time)
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        key = _edge_key(u, v)
        times = self._labels.setdefault(key, set())
        changed = time not in times
        if changed:
            times.add(time)
        if weight is not None:
            weight_key = (key, time)
            if self._weights.get(weight_key) != float(weight):
                self._weights[weight_key] = float(weight)
                changed = True
        if changed:
            self._generation += 1

    def _bulk_add_contacts(self, items: Iterable[Tuple[Node, Node, int]]) -> None:
        """Insert many (u, v, time) contacts with per-call checks hoisted.

        Used by the trace-discretisation fast path
        (:meth:`repro.temporal.contacts.ContactTrace.to_evolving`):
        times must already be validated against the horizon, and nodes
        must already exist.  Produces exactly the state a loop of
        :meth:`add_contact` calls would (label sets and first-touch
        edge-key order included) at a fraction of the interpreter cost.
        """
        adj = self._adj
        labels = self._labels
        changed = False
        for u, v, time in items:
            adj[u].add(v)
            adj[v].add(u)
            key = _edge_key(u, v)
            times = labels.get(key)
            if times is None:
                labels[key] = {time}
                changed = True
            elif time not in times:
                times.add(time)
                changed = True
        # One bump for the whole batch — and none at all when every
        # item was a duplicate (no-op bulk loads keep snapshots valid).
        if changed:
            self._generation += 1

    def add_periodic_contact(
        self, u: Node, v: Node, phase: int, period: int, weight: Optional[float] = None
    ) -> None:
        """Contacts at phase, phase+period, ... up to the horizon.

        Models the paper's VANET example where mobile nodes meet on
        movement cycles (Fig. 2: (B, D) and (C, D) have cycle 6, ...).
        """
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        time = phase
        while time < self.horizon:
            self.add_contact(u, v, time, weight)
            time += period

    def remove_contact(self, u: Node, v: Node, time: int) -> None:
        """Remove one time label; drops the edge entirely when none remain."""
        key = _edge_key(u, v)
        if key not in self._labels or time not in self._labels[key]:
            raise EdgeNotFoundError(u, v)
        self._labels[key].discard(time)
        self._weights.pop((key, time), None)
        if not self._labels[key]:
            del self._labels[key]
            self._adj[u].discard(v)
            self._adj[v].discard(u)
        self._generation += 1

    def remove_node(self, node: Node) -> None:
        """Remove a node and all its contacts (used by trimming)."""
        if node not in self._nodes:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adj[node]):
            key = _edge_key(node, neighbor)
            for time in list(self._labels.get(key, ())):
                self._weights.pop((key, time), None)
            self._labels.pop(key, None)
            self._adj[neighbor].discard(node)
        del self._adj[node]
        self._nodes.discard(node)
        self._generation += 1

    def _check_time(self, time: int) -> None:
        if not 0 <= time < self.horizon:
            raise ValueError(
                f"time {time} out of range [0, {self.horizon})"
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def has_node(self, node: Node) -> bool:
        return node in self._nodes

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def edges(self) -> Iterator[EdgeKey]:
        """Each footprint edge (edge with ≥ 1 label) exactly once."""
        return iter(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._labels)

    @property
    def num_contacts(self) -> int:
        return sum(len(times) for times in self._labels.values())

    def has_edge(self, u: Node, v: Node) -> bool:
        return _edge_key(u, v) in self._labels

    def has_contact(self, u: Node, v: Node, time: int) -> bool:
        labels = self._labels.get(_edge_key(u, v))
        return labels is not None and time in labels

    def labels(self, u: Node, v: Node) -> FrozenSet[int]:
        """The edge label set {i | (u, v) ∈ E_i}."""
        labels = self._labels.get(_edge_key(u, v))
        if labels is None:
            raise EdgeNotFoundError(u, v)
        return frozenset(labels)

    def weight(self, u: Node, v: Node, time: int, default: float = 1.0) -> float:
        """The weight w_i of the contact, or ``default`` when unset."""
        if not self.has_contact(u, v, time):
            raise EdgeNotFoundError(u, v)
        return self._weights.get((_edge_key(u, v), time), default)

    def neighbors(self, node: Node) -> Set[Node]:
        """Footprint neighbors: contacted at *some* time (copy)."""
        if node not in self._nodes:
            raise NodeNotFoundError(node)
        return set(self._adj[node])

    def neighbors_at(self, node: Node, time: int) -> Set[Node]:
        """Neighbors with a contact exactly at time unit ``time``."""
        if node not in self._nodes:
            raise NodeNotFoundError(node)
        self._check_time(time)
        return {
            other
            for other in self._adj[node]
            if time in self._labels[_edge_key(node, other)]
        }

    def _contact_caches(self) -> Dict[Node, Tuple[List[int], List[Tuple[int, Node]]]]:
        """The per-node sorted-contact cache, generation-invalidated."""
        if self._contacts_cache_generation != self._generation:
            self._contacts_cache = {}
            self._all_contacts_cache = None
            self._contacts_cache_generation = self._generation
        return self._contacts_cache

    def contacts_from(self, node: Node, not_before: int = 0) -> List[Tuple[int, Node]]:
        """(time, neighbor) pairs with time >= not_before, sorted by time.

        The sorted list is cached per node (invalidated by the mutation
        generation counter), so repeated queries bisect instead of
        re-scanning and re-sorting the label sets.
        """
        if node not in self._nodes:
            raise NodeNotFoundError(node)
        cache = self._contact_caches()
        cached = cache.get(node)
        if cached is None:
            pairs: List[Tuple[int, Node]] = []
            for other in self._adj[node]:
                for time in self._labels[_edge_key(node, other)]:
                    pairs.append((time, other))
            pairs.sort(key=lambda pair: (pair[0], repr(pair[1])))
            cached = ([pair[0] for pair in pairs], pairs)
            cache[node] = cached
        times, pairs = cached
        if not_before <= 0:
            return list(pairs)
        return pairs[bisect_left(times, not_before):]

    def all_contacts(self) -> List[Tuple[int, Node, Node]]:
        """Every (time, u, v) contact, sorted by time (cached)."""
        self._contact_caches()
        if self._all_contacts_cache is None:
            result: List[Tuple[int, Node, Node]] = []
            for (u, v), times in self._labels.items():
                for time in times:
                    result.append((time, u, v))
            result.sort(key=lambda c: (c[0], repr(c[1]), repr(c[2])))
            self._all_contacts_cache = result
        return list(self._all_contacts_cache)

    # ------------------------------------------------------------------
    # views and conversions
    # ------------------------------------------------------------------
    def frozen(self) -> "FrozenContacts":
        """A cached time-sorted contact index for the vectorized kernels.

        Mirrors ``Graph.frozen()``: the snapshot is rebuilt lazily
        whenever contacts, nodes, or weights have mutated since the
        last call (tracked by the generation counter); repeated
        temporal sweeps over an unchanged graph pay the O(C log C)
        sort cost once.  See :mod:`repro.temporal.frozen`.
        """
        from repro.graphs.csr import generation_cached
        from repro.temporal.frozen import FrozenContacts

        return generation_cached(self, FrozenContacts)

    def snapshot(self, time: int) -> Graph:
        """G_i: the spanning subgraph during time unit ``time``."""
        self._check_time(time)
        graph = Graph()
        for node in self._nodes:
            graph.add_node(node)
        for (u, v), times in self._labels.items():
            if time in times:
                graph.add_edge(u, v)
        return graph

    def snapshots(self) -> Iterator[Graph]:
        for time in range(self.horizon):
            yield self.snapshot(time)

    def footprint(self) -> Graph:
        """The union graph: edge present iff it has any label.

        This is the static-graph abstraction the paper says "cannot
        sufficiently capture the dynamic nature" — useful exactly as the
        lossy baseline.
        """
        graph = Graph()
        for node in self._nodes:
            graph.add_node(node)
        for u, v in self._labels:
            graph.add_edge(u, v)
        return graph

    def subgraph(self, nodes: Iterable[Node]) -> "EvolvingGraph":
        """Induced time-evolving subgraph on ``nodes``."""
        keep = set(nodes)
        missing = keep - self._nodes
        if missing:
            raise NodeNotFoundError(next(iter(missing)))
        sub = EvolvingGraph(horizon=self.horizon, nodes=keep)
        for (u, v), times in self._labels.items():
            if u in keep and v in keep:
                for time in times:
                    weight = self._weights.get((_edge_key(u, v), time))
                    sub.add_contact(u, v, time, weight)
        return sub

    def copy(self) -> "EvolvingGraph":
        return self.subgraph(self._nodes)

    @classmethod
    def from_snapshots(cls, snapshots: Sequence[Graph]) -> "EvolvingGraph":
        """Build an EG from an ordered sequence of spanning subgraphs."""
        if not snapshots:
            raise ValueError("at least one snapshot is required")
        eg = cls(horizon=len(snapshots))
        for graph in snapshots:
            for node in graph.nodes():
                eg.add_node(node)
        for time, graph in enumerate(snapshots):
            for u, v in graph.edges():
                eg.add_contact(u, v, time)
        return eg

    @classmethod
    def from_contacts(
        cls,
        contacts: Iterable[Tuple[Node, Node, int]],
        horizon: Optional[int] = None,
        nodes: Optional[Iterable[Node]] = None,
    ) -> "EvolvingGraph":
        """Build an EG from (u, v, time) triples (e.g. a contact trace)."""
        contact_list = list(contacts)
        if horizon is None:
            if not contact_list:
                raise ValueError("horizon is required when contacts are empty")
            horizon = max(time for _, _, time in contact_list) + 1
        eg = cls(horizon=horizon, nodes=nodes)
        for u, v, time in contact_list:
            eg.add_contact(u, v, time)
        return eg

    def __repr__(self) -> str:
        return (
            f"EvolvingGraph(n={self.num_nodes}, edges={self.num_edges}, "
            f"contacts={self.num_contacts}, horizon={self.horizon})"
        )


def paper_fig2_evolving_graph() -> EvolvingGraph:
    """The Fig. 2 time-evolving graph of the paper.

    Six nodes: mobile B, C, D (moving cycles 3, 3, 2) and three static
    nodes A, E, F.  Edge label sets over horizon 7, following the
    caption — (B, D) and (C, D) have cycle 6, (A, D) has cycle 2, and
    (A, B) and (B, C) have cycle 3:

    * (A, D): {1, 3}      * (A, B): {1, 4}     * (B, C): {2, 5}
    * (B, D): {0, 6}      * (C, D): {6}        * (E, F): every unit

    The facts the paper states about this figure, all verified in
    tests: path A --4--> B --5--> C exists, so A is connected to C at
    starting times 0..4 (and not 5 or 6); A and C are not connected in
    any single snapshot; every path A -> D -> C (e.g. A --3--> D --6--> C)
    can be replaced by a path A -> B -> C (e.g. A --4--> B --5--> C), so
    A may trim neighbor D under the Sec. III-A rule.
    """
    eg = EvolvingGraph(horizon=7, nodes=["A", "B", "C", "D", "E", "F"])
    eg.add_periodic_contact("A", "D", phase=1, period=2)   # labels 1, 3 (5 off: D out of range)
    eg.remove_contact("A", "D", 5)
    eg.add_periodic_contact("A", "B", phase=1, period=3)   # labels 1, 4
    eg.add_periodic_contact("B", "C", phase=2, period=3)   # labels 2, 5
    eg.add_periodic_contact("B", "D", phase=0, period=6)   # labels 0, 6
    eg.add_periodic_contact("C", "D", phase=6, period=6)   # label 6
    eg.add_periodic_contact("E", "F", phase=0, period=1)   # static pair
    return eg
