"""Frozen temporal contact index: the vectorized fast path for journeys.

Every temporal workload of the paper (Sec. II-B journeys, time-i
connectivity, the DTN sweeps behind Fig. 9) is, at bottom, one scan of
the contact set in time order — Casteigts et al. (arXiv:1807.07801)
frame foremost/fastest/shortest temporal reachability exactly this way.
On the dict-of-sets :class:`~repro.temporal.evolving.EvolvingGraph`
each scan re-derives that order per call: ``all_contacts`` re-sorts
every contact, ``contacts_from`` re-sorts per node, and the per-time
BFS pays Python interpreter cost per contact.

:class:`FrozenContacts` is an immutable snapshot of an EvolvingGraph —
node↔index interning plus NumPy columns (time, u, v, weight) in the
canonical ``all_contacts`` order, per-time group offsets, and a
per-node CSR of outgoing contacts in ``contacts_from`` order.  Obtain
one through ``eg.frozen()``; the snapshot is cached on the graph and
keyed to a mutation *generation* counter, mirroring
``Graph.frozen()``/:class:`~repro.graphs.csr.FrozenGraph`.

The kernels are output-equivalent to their pure-Python references
(``*_reference`` functions in :mod:`repro.temporal.journeys`,
:mod:`repro.temporal.weighted_journeys`,
:mod:`repro.temporal.connectivity`) — including parent-hop tie-breaks
for foremost trees — enforced by ``tests/test_frozen_temporal.py`` and
the ``perf-temporal`` benchmark.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import NodeNotFoundError
from repro.observability.profiling import profiled

Node = Hashable
Hop = Tuple[Node, Node, int]

#: Below this contact count the constant costs of freezing outweigh the
#: vectorization win; routed entry points fall back to the dict-of-sets
#: reference path.
FROZEN_MIN_CONTACTS = 64

_NO_ARRIVAL = -1
_INT64_MAX = np.iinfo(np.int64).max

#: Sources per bit-parallel flooding batch (multiples of 64 pack evenly
#: into uint64 frontier words).
_BITSET_BATCH = 256


class FrozenContacts:
    """An immutable time-sorted contact index with vectorized kernels.

    Build via ``eg.frozen()`` (cached) rather than directly.  The
    snapshot captures contacts and weights at freeze time; later
    mutations of the source graph bump its generation and the next
    ``eg.frozen()`` call rebuilds.

    >>> from repro.temporal.evolving import EvolvingGraph
    >>> eg = EvolvingGraph(horizon=5)
    >>> eg.add_contact("a", "b", 1)
    >>> eg.add_contact("b", "c", 3)
    >>> fc = eg.frozen()
    >>> fc.earliest_arrival("a")
    {'a': 0, 'b': 1, 'c': 3}
    """

    def __init__(self, eg) -> None:
        # Node interning: dict insertion order (deterministic), ranks by
        # repr for the library-wide tie-break convention.
        nodes: List[Node] = list(eg._adj)
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        self.node_list = nodes
        self.index = index
        self.n = n
        self.horizon = int(eg.horizon)
        self.generation = getattr(eg, "_generation", -1)

        order = sorted(range(n), key=lambda i: repr(nodes[i]))
        rank = np.empty(n, dtype=np.int64)
        rank[np.asarray(order, dtype=np.int64) if n else []] = np.arange(
            n, dtype=np.int64
        )
        self.repr_rank = rank

        # Contacts in the exact ``all_contacts`` order: sorted by
        # (time, repr(u), repr(v)) over canonical edge keys.
        triples: List[Tuple[int, Node, Node]] = []
        for (u, v), times in eg._labels.items():
            for time in times:
                triples.append((time, u, v))
        triples.sort(key=lambda c: (c[0], repr(c[1]), repr(c[2])))
        count = len(triples)
        self.num_contacts = count
        self.times = np.fromiter(
            (c[0] for c in triples), dtype=np.int64, count=count
        )
        self.ua = np.fromiter(
            (index[c[1]] for c in triples), dtype=np.int64, count=count
        )
        self.va = np.fromiter(
            (index[c[2]] for c in triples), dtype=np.int64, count=count
        )
        weights = eg._weights
        self.weights = np.fromiter(
            (
                weights.get(((c[1], c[2]), c[0]), 1.0)
                for c in triples
            ),
            dtype=np.float64,
            count=count,
        )

        # Time groups over the sorted columns.
        if count:
            boundaries = np.flatnonzero(np.diff(self.times)) + 1
            self.group_times = self.times[
                np.concatenate(([0], boundaries))
            ]
            self.group_ptr = np.concatenate(
                ([0], boundaries, [count])
            ).astype(np.int64)
        else:
            self.group_times = np.empty(0, dtype=np.int64)
            self.group_ptr = np.zeros(1, dtype=np.int64)

        # Both-direction edge columns, grouped by time (src sorted
        # within each group so segment folds can reduceat per row).
        src2 = np.concatenate((self.ua, self.va))
        dst2 = np.concatenate((self.va, self.ua))
        t2 = np.concatenate((self.times, self.times))
        w2 = np.concatenate((self.weights, self.weights))
        sort2 = np.lexsort((src2, t2))
        self.g_src = src2[sort2]
        self.g_dst = dst2[sort2]
        self.g_w = w2[sort2]
        if count:
            # Group g spans [2 * group_ptr[g], 2 * group_ptr[g + 1]).
            self.g_ptr = self.group_ptr * 2
        else:
            self.g_ptr = np.zeros(1, dtype=np.int64)

        # Per-node directed contact CSR in ``contacts_from`` order:
        # each row sorted by (time, repr-rank of neighbor).
        nbr_sort = np.lexsort((rank[dst2], t2, src2)) if count else sort2
        self.nbr_src_sorted = src2[nbr_sort]
        self.nbr_time = t2[nbr_sort]
        self.nbr_idx = dst2[nbr_sort]
        self.nbr_w = w2[nbr_sort]
        counts = np.bincount(self.nbr_src_sorted, minlength=n) if count else np.zeros(n, dtype=np.int64)
        self.nbr_indptr = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)

        self._contacts_from_cache: Dict[int, Tuple[List[int], List[Tuple[int, Node]]]] = {}
        self._weighted_from_cache: Dict[int, List[Tuple[int, Node, float]]] = {}
        self._weighted_list: Optional[List[Tuple[int, Node, Node, float]]] = None

    # ------------------------------------------------------------------
    # shared-memory plane
    # ------------------------------------------------------------------
    def to_shared(self, backend: Optional[str] = None):
        """Publish this snapshot's arrays into a shared-memory segment.

        Returns a :class:`repro.graphs.shm.SharedSnapshot` whose
        picklable ``handle`` reconstructs a zero-copy read-only twin
        via :meth:`from_shared` in any process.  The caller owns the
        snapshot and must ``close()`` it to unlink the segment.
        """
        from repro.graphs import shm

        return shm.share_contacts(self, backend=backend)

    @classmethod
    def from_shared(cls, handle) -> "FrozenContacts":
        """Attach a snapshot published by :meth:`to_shared` (cached)."""
        from repro.graphs import shm

        return shm.attach_cached(handle)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def index_of(self, node: Node) -> int:
        try:
            return self.index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def __repr__(self) -> str:
        return (
            f"FrozenContacts(n={self.n}, contacts={self.num_contacts}, "
            f"horizon={self.horizon}, generation={self.generation})"
        )

    def _group_range(self, start: int) -> range:
        """Indices of time groups with label >= start, ascending."""
        first = int(np.searchsorted(self.group_times, start, side="left"))
        return range(first, self.group_times.shape[0])

    def _group_edges(self, g: int) -> Tuple[np.ndarray, np.ndarray]:
        a, b = int(self.g_ptr[g]), int(self.g_ptr[g + 1])
        return self.g_src[a:b], self.g_dst[a:b]

    # ------------------------------------------------------------------
    # contact list views (the cached-sort satellite)
    # ------------------------------------------------------------------
    def contacts_from_lists(
        self, node_idx: int
    ) -> Tuple[List[int], List[Tuple[int, Node]]]:
        """(times, (time, neighbor) pairs) of a node, contacts_from order.

        Materialised lazily per node and cached on the snapshot, so
        repeated ``contacts_from`` queries bisect instead of re-sorting.
        """
        cached = self._contacts_from_cache.get(node_idx)
        if cached is None:
            a = int(self.nbr_indptr[node_idx])
            b = int(self.nbr_indptr[node_idx + 1])
            times = self.nbr_time[a:b].tolist()
            nodes = self.node_list
            pairs = [
                (t, nodes[j]) for t, j in zip(times, self.nbr_idx[a:b].tolist())
            ]
            cached = (times, pairs)
            self._contacts_from_cache[node_idx] = cached
        return cached

    def weighted_contacts_from(
        self, node_idx: int
    ) -> List[Tuple[int, Node, float]]:
        """(time, neighbor, weight) of a node in ``contacts_from`` order.

        Cached per node; the min-delay Dijkstra relaxes over these
        pre-sorted rows instead of re-sorting and re-resolving weights
        on every heap pop.
        """
        cached = self._weighted_from_cache.get(node_idx)
        if cached is None:
            a = int(self.nbr_indptr[node_idx])
            b = int(self.nbr_indptr[node_idx + 1])
            nodes = self.node_list
            cached = [
                (t, nodes[j], w)
                for t, j, w in zip(
                    self.nbr_time[a:b].tolist(),
                    self.nbr_idx[a:b].tolist(),
                    self.nbr_w[a:b].tolist(),
                )
            ]
            self._weighted_from_cache[node_idx] = cached
        return cached

    def weighted_contacts(self) -> List[Tuple[int, Node, Node, float]]:
        """All (time, u, v, weight) in ``all_contacts`` order, cached."""
        if self._weighted_list is None:
            nodes = self.node_list
            self._weighted_list = [
                (int(t), nodes[u], nodes[v], float(w))
                for t, u, v, w in zip(
                    self.times.tolist(),
                    self.ua.tolist(),
                    self.va.tolist(),
                    self.weights.tolist(),
                )
            ]
        return self._weighted_list

    # ------------------------------------------------------------------
    # single-source earliest arrival
    # ------------------------------------------------------------------
    @profiled("repro.temporal.frozen.earliest_arrival_times")
    def earliest_arrival_times(self, source_idx: int, start: int = 0) -> np.ndarray:
        """Earliest arrival per node index; -1 for unreachable.

        One ascending scan of the time groups; within a time unit the
        informed set closes transitively (non-decreasing labels), via a
        fixpoint over that group's edges.  ``arrival[source] = start``.
        """
        n = self.n
        arrival = np.full(n, _NO_ARRIVAL, dtype=np.int64)
        arrival[source_idx] = start
        informed = np.zeros(n, dtype=bool)
        informed[source_idx] = True
        remaining = n - 1
        for g in self._group_range(start):
            if remaining == 0:
                break
            src, dst = self._group_edges(g)
            t = int(self.group_times[g])
            while True:
                sel = informed[src] & ~informed[dst]
                if not sel.any():
                    break
                fresh = np.unique(dst[sel])
                informed[fresh] = True
                arrival[fresh] = t
                remaining -= int(fresh.shape[0])
        return arrival

    def earliest_arrival(self, source: Node, start: int = 0) -> Dict[Node, int]:
        """Node-facing wrapper: reachable nodes → earliest arrival."""
        arrival = self.earliest_arrival_times(self.index_of(source), start)
        nodes = self.node_list
        return {
            nodes[i]: int(arrival[i]) for i in np.flatnonzero(arrival >= 0)
        }

    def reaches(
        self, source_idx: int, target_idx: int, start: int, min_weight: float
    ) -> bool:
        """Temporal reachability using only contacts of weight >= min_weight.

        The inner loop of the max-bandwidth threshold search: one masked
        arrival scan per candidate bottleneck, with early exit the
        moment the target is informed.
        """
        if source_idx == target_idx:
            return True
        n = self.n
        informed = np.zeros(n, dtype=bool)
        informed[source_idx] = True
        for g in self._group_range(start):
            a, b = int(self.g_ptr[g]), int(self.g_ptr[g + 1])
            keep = self.g_w[a:b] >= min_weight
            src = self.g_src[a:b][keep]
            dst = self.g_dst[a:b][keep]
            while True:
                sel = informed[src] & ~informed[dst]
                if not sel.any():
                    break
                informed[dst[sel]] = True
                if informed[target_idx]:
                    return True
        return False

    # ------------------------------------------------------------------
    # exact foremost tree (reference tie-breaks reproduced)
    # ------------------------------------------------------------------
    @profiled("repro.temporal.frozen.foremost_tree_arrays")
    def foremost_tree_arrays(
        self, source_idx: int, start: int = 0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(arrival, parent node index, parent time) per node index.

        Reproduces :func:`repro.temporal.journeys.foremost_tree_reference`
        exactly, parents included.  The reference runs, per time unit, a
        FIFO BFS seeded with the informed endpoints in repr order and
        expanding neighbor lists in repr order; in such a BFS a node's
        parent is the queued neighbor with the smallest dequeue index,
        and dequeue order within a level is (parent's dequeue index,
        repr rank).  The kernel replays that ordering level-
        synchronously: a segment scatter-min of dequeue indices picks
        each discovery's parent, and a lexsort assigns the next level's
        dequeue indices.
        """
        n = self.n
        rank = self.repr_rank
        arrival = np.full(n, _NO_ARRIVAL, dtype=np.int64)
        parent_node = np.full(n, -1, dtype=np.int64)
        parent_time = np.full(n, _NO_ARRIVAL, dtype=np.int64)
        arrival[source_idx] = start
        informed = np.zeros(n, dtype=bool)
        informed[source_idx] = True
        remaining = n - 1
        deq = np.empty(n, dtype=np.int64)
        for g in self._group_range(start):
            if remaining == 0:
                break
            src, dst = self._group_edges(g)
            t = int(self.group_times[g])
            touched_informed = np.unique(src[informed[src]])
            if touched_informed.shape[0] == 0:
                continue
            # Dequeue indices: level 0 is the informed endpoints in
            # repr order; later levels extend the counter.
            deq.fill(_INT64_MAX)
            deq_order = touched_informed[np.argsort(rank[touched_informed])]
            deq[deq_order] = np.arange(deq_order.shape[0], dtype=np.int64)
            queue = [deq_order]
            next_deq = int(deq_order.shape[0])
            while True:
                sel = (deq[src] < _INT64_MAX) & ~informed[dst]
                if not sel.any():
                    break
                best = np.full(n, _INT64_MAX, dtype=np.int64)
                np.minimum.at(best, dst[sel], deq[src[sel]])
                new = np.flatnonzero(best < _INT64_MAX)
                # FIFO dequeue order of the new level.
                new = new[np.lexsort((rank[new], best[new]))]
                all_order = np.concatenate(queue)
                parent_node[new] = all_order[best[new]]
                parent_time[new] = t
                arrival[new] = t
                informed[new] = True
                deq[new] = next_deq + np.arange(new.shape[0], dtype=np.int64)
                next_deq += int(new.shape[0])
                queue.append(new)
                remaining -= int(new.shape[0])
        return arrival, parent_node, parent_time

    def foremost_tree(
        self, source: Node, start: int = 0
    ) -> Dict[Node, Optional[Hop]]:
        """Node-facing wrapper, equal to the reference parent map."""
        source_idx = self.index_of(source)
        arrival, parent_node, parent_time = self.foremost_tree_arrays(
            source_idx, start
        )
        nodes = self.node_list
        parent: Dict[Node, Optional[Hop]] = {source: None}
        for i in np.flatnonzero(parent_node >= 0):
            parent[nodes[i]] = (
                nodes[int(parent_node[i])], nodes[i], int(parent_time[i])
            )
        return parent

    # ------------------------------------------------------------------
    # reverse scan: latest departure
    # ------------------------------------------------------------------
    @profiled("repro.temporal.frozen.latest_departure_times")
    def latest_departure_times(
        self, target_idx: int, deadline: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(latest departure per node index, reachability mask).

        Time-reversed dual of :meth:`earliest_arrival_times`: descending
        scan over groups with label < deadline.  The mask distinguishes
        genuinely unreachable nodes from negative departure values.
        """
        n = self.n
        departure = np.full(n, _NO_ARRIVAL, dtype=np.int64)
        departure[target_idx] = deadline
        informed = np.zeros(n, dtype=bool)
        informed[target_idx] = True
        last = int(
            np.searchsorted(self.group_times, deadline, side="left")
        )
        for g in range(last - 1, -1, -1):
            src, dst = self._group_edges(g)
            t = int(self.group_times[g])
            while True:
                sel = informed[src] & ~informed[dst]
                if not sel.any():
                    break
                fresh = np.unique(dst[sel])
                informed[fresh] = True
                departure[fresh] = t
        return np.where(informed, departure, _NO_ARRIVAL), informed

    def latest_departure(self, target: Node, deadline: int) -> Dict[Node, int]:
        """Node-facing wrapper, equal to the reference departure map."""
        departure, informed = self.latest_departure_times(
            self.index_of(target), deadline
        )
        nodes = self.node_list
        return {
            nodes[i]: int(departure[i]) for i in np.flatnonzero(informed)
        }

    # ------------------------------------------------------------------
    # batched multi-source flooding (dynamic diameter and friends)
    # ------------------------------------------------------------------
    @profiled("repro.temporal.frozen.flooding_stats")
    def flooding_stats(
        self, start: int = 0, sources: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(latest arrival, reached count) per source index.

        ``sources`` defaults to every node; batches of
        :data:`_BITSET_BATCH` keep the bit matrices bounded.
        """
        if sources is None:
            sources = np.arange(self.n, dtype=np.int64)
        latest = np.full(sources.shape[0], start, dtype=np.int64)
        reached = np.ones(sources.shape[0], dtype=np.int64)
        for lo in range(0, sources.shape[0], _BITSET_BATCH):
            batch = sources[lo : lo + _BITSET_BATCH]
            b_latest, b_reached = self._flood_batch_tracked(batch, start)
            latest[lo : lo + batch.shape[0]] = b_latest
            reached[lo : lo + batch.shape[0]] = b_reached
        return latest, reached

    def _flood_batch_tracked(
        self, sources: np.ndarray, start: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bit-parallel flood recording per-source latest arrival/counts."""
        n = self.n
        batch = int(sources.shape[0])
        words = (batch + 63) // 64
        cols = np.arange(batch, dtype=np.int64)
        reach = np.zeros((n, words), dtype=np.uint64)
        bits = np.left_shift(np.uint64(1), (cols % 64).astype(np.uint64))
        np.bitwise_or.at(reach, (sources, cols // 64), bits)
        latest = np.full(batch, start, dtype=np.int64)
        reached = np.ones(batch, dtype=np.int64)
        done = n * batch
        for g in self._group_range(start):
            if int(reached.sum()) == done:
                break
            src, dst = self._group_edges(g)
            t = int(self.group_times[g])
            while True:
                cand = reach[src] & ~reach[dst]
                hit = cand.any(axis=1)
                if not hit.any():
                    break
                rows = dst[hit]
                add = cand[hit]
                # Rows repeat when several edges enter one node; fold
                # the additions per row first so the per-source count
                # sees each new bit exactly once.
                uniq, inverse = np.unique(rows, return_inverse=True)
                folded = np.zeros((uniq.shape[0], words), dtype=np.uint64)
                np.bitwise_or.at(folded, inverse, add)
                folded &= ~reach[uniq]
                reach[uniq] |= folded
                fresh = np.unpackbits(
                    folded.view(np.uint8), axis=1, bitorder="little"
                )[:, :batch].sum(axis=0, dtype=np.int64)
                grew = fresh > 0
                reached += fresh
                latest[grew] = t
        return latest, reached
