"""Incremental temporal reachability (Sec. IV-C).

"Another promising area is integrating the process of building a
structure with the change of topology ... different from most existing
approaches where structure re-building occurs after a topology change."

:class:`IncrementalReachability` maintains, for one source, the
earliest-arrival (foremost) tree of a growing contact stream *as the
contacts arrive*, instead of recomputing after every change:

* contacts are appended in non-decreasing time order (the natural
  streaming regime of a live trace);
* each appended contact (u, v, t) triggers work only when it actually
  improves someone's arrival time, and the improvement can cascade only
  through *future-or-equal* contacts already seen at the same time unit
  — so the amortised cost per contact is O(1) dictionary updates plus
  the size of the genuine improvement, versus a full O(contacts) rescan;
* :meth:`arrival_times` / :meth:`reachable_set` answer queries at any
  moment and always agree exactly with the batch
  :func:`repro.temporal.journeys.earliest_arrival` (cross-checked in
  tests and benchmarked for the speedup).

The same-unit-chaining subtlety of journeys (labels are non-decreasing,
so several hops may share a time unit) is handled by buffering the
current unit's contacts and propagating within the buffer.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import NodeNotFoundError

Node = Hashable


class IncrementalReachability:
    """Streaming earliest-arrival maintenance for one source."""

    def __init__(self, source: Node, start: int = 0) -> None:
        self.source = source
        self.start = int(start)
        self._arrival: Dict[Node, int] = {source: self.start}
        self._parent: Dict[Node, Optional[Tuple[Node, Node, int]]] = {source: None}
        self._last_time: Optional[int] = None
        # Contacts of the *current* time unit (for same-unit chaining).
        self._unit_contacts: List[Tuple[Node, Node]] = []
        self._contacts_processed = 0
        self._improvements = 0

    # ------------------------------------------------------------------
    # stream input
    # ------------------------------------------------------------------
    def add_contact(self, u: Node, v: Node, time: int) -> bool:
        """Append one contact; returns True iff reachability improved.

        Contacts must arrive in non-decreasing time order.
        """
        if u == v:
            raise ValueError(f"self-contact on {u!r}")
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"contacts must be appended in time order: got {time} after "
                f"{self._last_time}"
            )
        if self._last_time is None or time > self._last_time:
            self._unit_contacts = []
            self._last_time = time
        self._unit_contacts.append((u, v))
        self._contacts_processed += 1
        if time < self.start:
            return False
        improved = self._relax(u, v, time)
        if improved:
            self._cascade(time)
        return improved

    def _relax(self, u: Node, v: Node, time: int) -> bool:
        changed = False
        for src, dst in ((u, v), (v, u)):
            src_arrival = self._arrival.get(src)
            if src_arrival is None or src_arrival > time:
                continue
            if self._arrival.get(dst, time + 1) > time:
                self._arrival[dst] = time
                self._parent[dst] = (src, dst, time)
                self._improvements += 1
                changed = True
        return changed

    def _cascade(self, time: int) -> None:
        """Re-relax the current unit's buffered contacts to a fixpoint.

        A new arrival at this time unit can enable earlier contacts of
        the *same* unit (non-decreasing labels permit same-unit chains);
        earlier units can never be affected, so the buffer suffices.
        """
        changed = True
        while changed:
            changed = False
            for u, v in self._unit_contacts:
                if self._relax(u, v, time):
                    changed = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def arrival_time(self, node: Node) -> Optional[int]:
        """Earliest time ``node`` holds the message, or ``None``."""
        return self._arrival.get(node)

    def arrival_times(self) -> Dict[Node, int]:
        return dict(self._arrival)

    def reachable_set(self) -> Set[Node]:
        return set(self._arrival)

    def journey_to(self, target: Node) -> Optional[List[Tuple[Node, Node, int]]]:
        """The maintained foremost journey to ``target``, or ``None``."""
        if target not in self._parent:
            return None
        hops: List[Tuple[Node, Node, int]] = []
        node = target
        while True:
            hop = self._parent[node]
            if hop is None:
                break
            hops.append(hop)
            node = hop[0]
        hops.reverse()
        return hops

    @property
    def stats(self) -> Dict[str, int]:
        """Work counters: contacts seen vs arrival improvements made."""
        return {
            "contacts_processed": self._contacts_processed,
            "improvements": self._improvements,
        }


def incremental_from_contacts(
    source: Node,
    contacts: List[Tuple[Node, Node, int]],
    start: int = 0,
) -> IncrementalReachability:
    """Feed a (time-sorted) contact list through the incremental engine."""
    engine = IncrementalReachability(source, start)
    for u, v, time in sorted(contacts, key=lambda c: c[2]):
        engine.add_contact(u, v, time)
    return engine
