"""Journeys: paths over time in a time-evolving graph (Sec. II-B).

A *journey* (temporal path) is an alternating sequence of vertices and
contacts with non-decreasing edge labels; transmission at a contact is
instantaneous and intermediate nodes store the message between contacts
(carry-store-forward).  The paper lists three optimization problems,
"extensions of the traditional shortest path problem, but still solvable
using variations of the classical Dijkstra's shortest path algorithm":

1. **earliest completion time** — minimise the label of the last contact;
2. **minimum hop** — minimise the number of contacts used;
3. **fastest** — minimise the span between first and last contact.

All three are implemented here, plus journey validation and foremost
(earliest-arrival) trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import NodeNotFoundError
from repro.temporal.evolving import EvolvingGraph
from repro.temporal.frozen import FROZEN_MIN_CONTACTS
from repro.observability.telemetry import record_dispatch

Node = Hashable
Hop = Tuple[Node, Node, int]  # (from, to, contact time)


@dataclass(frozen=True)
class Journey:
    """A temporal path: hops with non-decreasing contact labels."""

    source: Node
    hops: Tuple[Hop, ...]

    @property
    def target(self) -> Node:
        return self.hops[-1][1] if self.hops else self.source

    @property
    def hop_count(self) -> int:
        return len(self.hops)

    @property
    def departure(self) -> Optional[int]:
        """Label of the first contact (None for the empty journey)."""
        return self.hops[0][2] if self.hops else None

    @property
    def completion(self) -> Optional[int]:
        """Label of the last contact — the completion time."""
        return self.hops[-1][2] if self.hops else None

    @property
    def span(self) -> int:
        """Elapsed time between first and last contact (0 if trivial)."""
        if not self.hops:
            return 0
        return self.hops[-1][2] - self.hops[0][2]

    def nodes(self) -> List[Node]:
        result = [self.source]
        result.extend(hop[1] for hop in self.hops)
        return result

    def __len__(self) -> int:
        return len(self.hops)


def is_valid_journey(eg: EvolvingGraph, journey: Journey, start: int = 0) -> bool:
    """Check contiguity, contact existence and non-decreasing labels.

    ``start`` enforces the paper's connectivity convention: the first
    edge label must be >= the starting time unit.
    """
    current = journey.source
    previous_time = start
    for u, v, time in journey.hops:
        if u != current:
            return False
        if not eg.has_contact(u, v, time):
            return False
        if time < previous_time:
            return False
        current = v
        previous_time = time
    return True


def _contacts_by_time(eg: EvolvingGraph, start: int) -> List[Tuple[int, List[Tuple[Node, Node]]]]:
    """Contacts grouped by time unit, ascending, labels >= start."""
    groups: Dict[int, List[Tuple[Node, Node]]] = {}
    for time, u, v in eg.all_contacts():
        if time >= start:
            groups.setdefault(time, []).append((u, v))
    return sorted(groups.items())


def foremost_tree(
    eg: EvolvingGraph, source: Node, start: int = 0
) -> Dict[Node, Optional[Hop]]:
    """Parent hops of an earliest-arrival (foremost) tree from ``source``.

    Maps each reachable node to the hop that first delivered to it
    (``None`` for the source).  Routes through the frozen contact index
    above :data:`~repro.temporal.frozen.FROZEN_MIN_CONTACTS` contacts
    (parent tie-breaks reproduced exactly); the reference below is the
    ground truth and the small-graph path.
    """
    if not eg.has_node(source):
        raise NodeNotFoundError(source)
    if eg.num_contacts >= FROZEN_MIN_CONTACTS:
        record_dispatch("temporal.foremost_tree", fast=True)
        return eg.frozen().foremost_tree(source, start)
    record_dispatch("temporal.foremost_tree", fast=False)
    return foremost_tree_reference(eg, source, start)


def foremost_tree_reference(
    eg: EvolvingGraph, source: Node, start: int = 0
) -> Dict[Node, Optional[Hop]]:
    """The per-time-unit BFS foremost tree: ground truth for the kernel.

    Labels along a journey are *non-decreasing*, so several hops may
    share one time unit (transmission is instantaneous); each time unit
    is therefore processed as a BFS over that unit's contacts from all
    already-informed nodes.
    """
    if not eg.has_node(source):
        raise NodeNotFoundError(source)
    arrival: Dict[Node, int] = {source: start}
    parent: Dict[Node, Optional[Hop]] = {source: None}
    for time, contacts in _contacts_by_time(eg, start):
        adjacency: Dict[Node, List[Node]] = {}
        for u, v in contacts:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        frontier = [
            node for node in adjacency
            if node in arrival and arrival[node] <= time
        ]
        frontier.sort(key=repr)
        head = 0
        while head < len(frontier):
            node = frontier[head]
            head += 1
            for neighbor in sorted(adjacency.get(node, ()), key=repr):
                if neighbor not in arrival or arrival[neighbor] > time:
                    arrival[neighbor] = time
                    parent[neighbor] = (node, neighbor, time)
                    frontier.append(neighbor)
    return parent


def earliest_arrival(
    eg: EvolvingGraph, source: Node, start: int = 0
) -> Dict[Node, int]:
    """Earliest time each node can hold a message originating at ``source``.

    ``arrival[source] = start``; a contact (u, v, t) with t >= arrival[u]
    delivers to v at time t, and the message may traverse several
    contacts within the same time unit (non-decreasing labels).
    Unreachable nodes are absent from the result.  Arrival times (unlike
    tree parents) are canonical, so the frozen path uses the cheaper
    parent-free single-scan kernel.
    """
    if not eg.has_node(source):
        raise NodeNotFoundError(source)
    if eg.num_contacts >= FROZEN_MIN_CONTACTS:
        record_dispatch("temporal.earliest_arrival", fast=True)
        return eg.frozen().earliest_arrival(source, start)
    record_dispatch("temporal.earliest_arrival", fast=False)
    return earliest_arrival_reference(eg, source, start)


def earliest_arrival_reference(
    eg: EvolvingGraph, source: Node, start: int = 0
) -> Dict[Node, int]:
    """Arrival times read off the reference foremost tree."""
    parent = foremost_tree_reference(eg, source, start)
    arrival: Dict[Node, int] = {}
    for node, hop in parent.items():
        arrival[node] = start if hop is None else hop[2]
    return arrival


def _journey_from_parents(
    parent: Dict[Node, Optional[Hop]], source: Node, target: Node
) -> Optional[Journey]:
    if target not in parent:
        return None
    hops: List[Hop] = []
    node = target
    while node != source:
        hop = parent[node]
        if hop is None:
            break
        hops.append(hop)
        node = hop[0]
    hops.reverse()
    return Journey(source=source, hops=tuple(hops))


def earliest_completion_journey(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Journey]:
    """A journey minimising the completion time at ``target``, or ``None``."""
    if not eg.has_node(target):
        raise NodeNotFoundError(target)
    parent = foremost_tree(eg, source, start)
    return _journey_from_parents(parent, source, target)


def minimum_hop_journey(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Journey]:
    """A journey with the fewest contacts from ``source`` to ``target``.

    Level-by-level dynamic programming: after h hops each node keeps its
    *minimum achievable arrival time* using exactly ≤ h hops; a smaller
    arrival time can never hurt later hops, so the per-level minimum is
    a sufficient state and the DP is exact.  At most n levels.
    """
    if not eg.has_node(source):
        raise NodeNotFoundError(source)
    if not eg.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return Journey(source=source, hops=())

    best_arrival: Dict[Node, int] = {source: start}
    parent: Dict[Node, Hop] = {}
    frontier: Dict[Node, int] = {source: start}
    for _ in range(eg.num_nodes):
        next_frontier: Dict[Node, int] = {}
        for u, ready_time in frontier.items():
            for time, v in eg.contacts_from(u, not_before=ready_time):
                known = best_arrival.get(v)
                if known is not None and known <= time:
                    continue
                pending = next_frontier.get(v)
                if pending is not None and pending <= time:
                    continue
                next_frontier[v] = time
                parent[v] = (u, v, time)
        if not next_frontier:
            return None
        for node, time in next_frontier.items():
            previous = best_arrival.get(node)
            if previous is None or time < previous:
                best_arrival[node] = time
        if target in next_frontier:
            hops: List[Hop] = []
            node = target
            while node != source:
                hop = parent[node]
                hops.append(hop)
                node = hop[0]
            hops.reverse()
            return Journey(source=source, hops=tuple(hops))
        frontier = next_frontier
    return None


def fastest_journey(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Journey]:
    """A journey minimising the span between first and last contact.

    Classic reduction: for every candidate departure time d (a label of
    some contact incident to the source, d >= start), run the
    earliest-arrival scan restricted to labels >= d and take the journey
    with the smallest ``completion - departure``.
    """
    if not eg.has_node(source):
        raise NodeNotFoundError(source)
    if not eg.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return Journey(source=source, hops=())

    departures = sorted({time for time, _ in eg.contacts_from(source, not_before=start)})
    best: Optional[Journey] = None
    for depart in departures:
        parent = foremost_tree(eg, source, depart)
        journey = _journey_from_parents(parent, source, target)
        if journey is None or not journey.hops:
            continue
        if best is None or journey.span < best.span:
            best = journey
        if best is not None and best.span == 0:
            break
    return best


def latest_departure(
    eg: EvolvingGraph, target: Node, deadline: Optional[int] = None
) -> Dict[Node, int]:
    """Latest time each node may *depart* and still reach ``target``.

    The time-reversed dual of :func:`earliest_arrival`: scanning
    contacts in non-increasing label order.  ``departure[target]`` is
    the deadline (default: the horizon).  Useful for reverse routing
    tables in DTNs.
    """
    if not eg.has_node(target):
        raise NodeNotFoundError(target)
    if deadline is None:
        deadline = eg.horizon
    if eg.num_contacts >= FROZEN_MIN_CONTACTS:
        record_dispatch("temporal.latest_departure", fast=True)
        return eg.frozen().latest_departure(target, deadline)
    record_dispatch("temporal.latest_departure", fast=False)
    return latest_departure_reference(eg, target, deadline)


def latest_departure_reference(
    eg: EvolvingGraph, target: Node, deadline: Optional[int] = None
) -> Dict[Node, int]:
    """The per-time-unit reverse BFS: ground truth for the kernel."""
    if not eg.has_node(target):
        raise NodeNotFoundError(target)
    if deadline is None:
        deadline = eg.horizon
    departure: Dict[Node, int] = {target: deadline}
    groups: Dict[int, List[Tuple[Node, Node]]] = {}
    for time, u, v in eg.all_contacts():
        if time < deadline:
            groups.setdefault(time, []).append((u, v))
    for time in sorted(groups, reverse=True):
        adjacency: Dict[Node, List[Node]] = {}
        for u, v in groups[time]:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        frontier = [
            node for node in adjacency
            if node in departure and departure[node] >= time
        ]
        frontier.sort(key=repr)
        head = 0
        while head < len(frontier):
            node = frontier[head]
            head += 1
            for neighbor in sorted(adjacency.get(node, ()), key=repr):
                if neighbor not in departure or departure[neighbor] < time:
                    departure[neighbor] = time
                    frontier.append(neighbor)
    return departure


def temporal_distance(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[int]:
    """Earliest completion time minus ``start``, or ``None`` if unreachable.

    The paper's "distance extended to temporal distance".
    """
    arrival = earliest_arrival(eg, source, start)
    if target not in arrival:
        return None
    if source == target:
        return 0
    return arrival[target] - start
