"""Small-world behaviour in time-varying graphs (Sec. III-B, [15]).

"The work done on the small-world behavior of the real-world in
time-and-space dimensions [15] has the potential to explore the layered
structure of a complex network."

Following Tang, Scellato, Musolesi, Mascolo and Latora (Phys. Rev. E
2010), the two static small-world ingredients are lifted to time:

* **temporal correlation coefficient C** — how much a node's
  neighborhood persists between consecutive snapshots:
  C_i(t) = |N_t(i) ∩ N_{t+1}(i)| / sqrt(|N_t(i)| · |N_{t+1}(i)|),
  averaged over nodes and time;
* **characteristic temporal path length L** — the average temporal
  distance (earliest-arrival delay) over ordered reachable pairs.

A time-varying graph is *temporally small-world* when C is high (like a
regular/persistent structure) while L stays close to that of a
time-randomised null model — exactly mirroring Watts–Strogatz.  The
null model (:func:`randomize_contact_times`) shuffles the contact
*times* while preserving the footprint and the number of contacts per
edge, destroying temporal correlation but keeping the static topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.temporal.evolving import EvolvingGraph
from repro.temporal.journeys import earliest_arrival

Node = Hashable


def temporal_correlation_coefficient(eg: EvolvingGraph) -> float:
    """Average neighborhood persistence across consecutive snapshots."""
    if eg.horizon < 2:
        return 0.0
    nodes = sorted(eg.nodes(), key=repr)
    total = 0.0
    count = 0
    neighbor_sets = [
        {node: eg.neighbors_at(node, t) for node in nodes}
        for t in range(eg.horizon)
    ]
    for node in nodes:
        node_total = 0.0
        for t in range(eg.horizon - 1):
            now = neighbor_sets[t][node]
            nxt = neighbor_sets[t + 1][node]
            if not now or not nxt:
                continue
            node_total += len(now & nxt) / math.sqrt(len(now) * len(nxt))
        total += node_total / (eg.horizon - 1)
        count += 1
    return total / count if count else 0.0


def characteristic_temporal_path_length(
    eg: EvolvingGraph, start: int = 0
) -> Tuple[float, float]:
    """(average temporal distance, reachability ratio) over ordered pairs.

    Unreachable pairs are excluded from the average and reported via
    the reachability ratio, following the standard convention for
    possibly-disconnected temporal networks.
    """
    nodes = sorted(eg.nodes(), key=repr)
    n = len(nodes)
    if n < 2:
        return 0.0, 1.0
    total = 0.0
    reached = 0
    for source in nodes:
        arrival = earliest_arrival(eg, source, start)
        for target, time in arrival.items():
            if target == source:
                continue
            total += time - start
            reached += 1
    pairs = n * (n - 1)
    if reached == 0:
        return math.inf, 0.0
    return total / reached, reached / pairs


def randomize_contact_times(
    eg: EvolvingGraph, rng: np.random.Generator
) -> EvolvingGraph:
    """The null model: shuffle all contact times across the whole trace.

    Preserves the footprint graph, the total number of contacts, and
    each edge's contact *count*; destroys inter-snapshot correlation
    and any temporal ordering structure.
    """
    contacts = eg.all_contacts()
    times = [time for time, _, _ in contacts]
    rng.shuffle(times)
    randomized = EvolvingGraph(horizon=eg.horizon, nodes=eg.nodes())
    used = set()
    index = 0
    for (_, u, v) in contacts:
        # Skip duplicate (edge, time) collisions produced by shuffling.
        for offset in range(len(times)):
            candidate = times[(index + offset) % len(times)]
            key = (frozenset((u, v)), candidate)
            if key not in used:
                used.add(key)
                randomized.add_contact(u, v, candidate)
                index = (index + offset + 1) % len(times)
                break
    return randomized


@dataclass(frozen=True)
class TemporalSmallWorldReport:
    """C and L of a temporal network against its time-randomised null."""

    correlation: float
    null_correlation: float
    path_length: float
    null_path_length: float
    reachability: float
    null_reachability: float

    @property
    def correlation_ratio(self) -> float:
        """C / C_null — >> 1 for temporally-structured networks."""
        if self.null_correlation == 0:
            return math.inf if self.correlation > 0 else 1.0
        return self.correlation / self.null_correlation

    @property
    def path_ratio(self) -> float:
        """L / L_null — ≈ 1 for temporally small-world networks."""
        if self.null_path_length == 0:
            return math.inf if self.path_length > 0 else 1.0
        return self.path_length / self.null_path_length

    @property
    def is_temporally_small_world(self) -> bool:
        """High temporal clustering, near-null temporal distances."""
        return self.correlation_ratio > 1.5 and self.path_ratio < 2.0


def temporal_small_world_report(
    eg: EvolvingGraph,
    rng: np.random.Generator,
    null_samples: int = 3,
    start: int = 0,
) -> TemporalSmallWorldReport:
    """Compute C, L and their null-model baselines ([15]'s analysis)."""
    if null_samples < 1:
        raise ValueError(f"null_samples must be >= 1, got {null_samples}")
    correlation = temporal_correlation_coefficient(eg)
    path_length, reachability = characteristic_temporal_path_length(eg, start)
    null_c: List[float] = []
    null_l: List[float] = []
    null_r: List[float] = []
    for _ in range(null_samples):
        null = randomize_contact_times(eg, rng)
        null_c.append(temporal_correlation_coefficient(null))
        length, ratio = characteristic_temporal_path_length(null, start)
        if not math.isinf(length):
            null_l.append(length)
        null_r.append(ratio)
    return TemporalSmallWorldReport(
        correlation=correlation,
        null_correlation=sum(null_c) / len(null_c),
        path_length=path_length,
        null_path_length=(sum(null_l) / len(null_l)) if null_l else math.inf,
        reachability=reachability,
        null_reachability=sum(null_r) / len(null_r),
    )
