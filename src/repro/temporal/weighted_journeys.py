"""Journeys in *weighted* time-evolving graphs (Sec. II-B).

"A weighted time-evolving graph has a definition similar to the
time-evolving graph except that each edge at time unit i is associated
with a weight w_i, which [has] different interpretations based on the
application.  For example, a weight can be the bandwidth, transmission
delay, or reliability."

One path problem per interpretation:

* **transmission delay** — :func:`min_delay_journey`: a contact at
  label t with weight w occupies [t, t + w); the message leaves the
  receiving node no earlier than t + w.  Minimise the arrival time
  (the weighted generalisation of earliest completion, solved by a
  time-ordered Dijkstra);
* **reliability** — :func:`most_reliable_journey`: each contact
  succeeds independently with probability w ∈ (0, 1]; maximise the
  product of weights (Viterbi-style DP over labels);
* **bandwidth** — :func:`max_bandwidth_journey`: the journey's
  bandwidth is the minimum weight along it; maximise that bottleneck
  (binary search over thresholds + temporal reachability).

Above :data:`~repro.temporal.frozen.FROZEN_MIN_CONTACTS` contacts the
entry points relax over the pre-sorted arrays of the frozen contact
index (``eg.frozen()``); the ``*_reference`` bodies are the pure-Python
ground truth and the small-graph path.  Outputs are identical either
way — hop-for-hop, enforced by ``tests/test_frozen_temporal.py``.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import NodeNotFoundError
from repro.temporal.evolving import EvolvingGraph
from repro.temporal.frozen import FROZEN_MIN_CONTACTS
from repro.observability.telemetry import record_dispatch
from repro.temporal.journeys import Hop, Journey

Node = Hashable


def _weighted_contacts(eg: EvolvingGraph) -> List[Tuple[int, Node, Node, float]]:
    """All (time, u, v, weight) rows in ``all_contacts`` order.

    Above the frozen threshold the list is materialised once on the
    frozen snapshot and reused until the graph mutates (generation
    bump); callers must not mutate the returned list.
    """
    if eg.num_contacts >= FROZEN_MIN_CONTACTS:
        record_dispatch("temporal.weighted_contacts", fast=True)
        return eg.frozen().weighted_contacts()
    record_dispatch("temporal.weighted_contacts", fast=False)
    return [
        (time, u, v, eg.weight(u, v, time))
        for time, u, v in eg.all_contacts()
    ]


def min_delay_journey(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Journey]:
    """Minimise arrival time when weights are per-contact delays.

    A contact (u, v, t, w) is usable if the holder is ready by t
    (ready time ≤ t) and delivers at t + w; the receiver is ready at
    t + w.  Dijkstra over (ready time, node) states.  Above the frozen
    threshold the relaxation reads each node's cached pre-sorted
    (time, neighbor, weight) rows instead of re-sorting and resolving
    weights per pop; heap order and parents are identical.
    """
    for node in (source, target):
        if not eg.has_node(node):
            raise NodeNotFoundError(node)
    if source == target:
        return Journey(source=source, hops=())
    if eg.num_contacts >= FROZEN_MIN_CONTACTS:
        record_dispatch("temporal.min_delay_journey", fast=True)
        return _min_delay_journey_frozen(eg, source, target, start)
    record_dispatch("temporal.min_delay_journey", fast=False)
    return min_delay_journey_reference(eg, source, target, start)


def min_delay_journey_reference(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Journey]:
    """The dict-of-sets Dijkstra: ground truth for the frozen path."""
    for node in (source, target):
        if not eg.has_node(node):
            raise NodeNotFoundError(node)
    if source == target:
        return Journey(source=source, hops=())

    ready: Dict[Node, float] = {source: float(start)}
    parent: Dict[Node, Hop] = {}
    heap: List[Tuple[float, int, Node]] = [(float(start), 0, source)]
    counter = 1
    done: Set[Node] = set()
    while heap:
        time_ready, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        if node == target:
            break
        for contact_time, neighbor in eg.contacts_from(node):
            if contact_time < time_ready:
                continue
            weight = eg.weight(node, neighbor, contact_time)
            arrival = contact_time + weight
            if arrival < ready.get(neighbor, math.inf):
                ready[neighbor] = arrival
                parent[neighbor] = (node, neighbor, contact_time)
                heapq.heappush(heap, (arrival, counter, neighbor))
                counter += 1
    if target not in parent:
        return None
    hops: List[Hop] = []
    node = target
    while node != source:
        hop = parent[node]
        hops.append(hop)
        node = hop[0]
    hops.reverse()
    return Journey(source=source, hops=tuple(hops))


def _min_delay_journey_frozen(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Journey]:
    """Same Dijkstra, relaxing over the frozen per-node contact rows."""
    fc = eg.frozen()
    weighted_from = fc.weighted_contacts_from
    index_of = fc.index_of

    ready: Dict[Node, float] = {source: float(start)}
    parent: Dict[Node, Hop] = {}
    heap: List[Tuple[float, int, Node]] = [(float(start), 0, source)]
    counter = 1
    done: Set[Node] = set()
    while heap:
        time_ready, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        if node == target:
            break
        for contact_time, neighbor, weight in weighted_from(index_of(node)):
            if contact_time < time_ready:
                continue
            arrival = contact_time + weight
            if arrival < ready.get(neighbor, math.inf):
                ready[neighbor] = arrival
                parent[neighbor] = (node, neighbor, contact_time)
                heapq.heappush(heap, (arrival, counter, neighbor))
                counter += 1
    if target not in parent:
        return None
    hops: List[Hop] = []
    node = target
    while node != source:
        hop = parent[node]
        hops.append(hop)
        node = hop[0]
    hops.reverse()
    return Journey(source=source, hops=tuple(hops))


def journey_delay(eg: EvolvingGraph, journey: Journey, start: int = 0) -> float:
    """Total arrival time of a journey under delay weights."""
    ready = float(start)
    for u, v, t in journey.hops:
        if t < ready:
            raise ValueError(f"contact at {t} before ready time {ready}")
        ready = t + eg.weight(u, v, t)
    return ready


def _most_reliable_over(
    contacts: List[Tuple[int, Node, Node, float]],
    source: Node,
    target: Node,
    start: int,
) -> Optional[Tuple[Journey, float]]:
    """The reliability DP over an explicit (time, u, v, w) contact list.

    Shared by the routed entry point (frozen cached list) and the
    reference (freshly built list); the relaxation itself is unchanged
    from the original pure-Python body.
    """
    best: Dict[Node, float] = {source: 1.0}
    # Best value at the moment each node first attains it, and the hop used.
    parent: Dict[Node, Hop] = {}
    index = 0
    n = len(contacts)
    while index < n:
        time = contacts[index][0]
        group = []
        while index < n and contacts[index][0] == time:
            group.append(contacts[index])
            index += 1
        if time < start:
            continue
        changed = True
        while changed:
            changed = False
            for _, u, v, weight in group:
                if not 0.0 < weight <= 1.0:
                    raise ValueError(
                        f"reliability weights must be in (0, 1], got {weight}"
                    )
                for a, b in ((u, v), (v, u)):
                    candidate = best.get(a, 0.0) * weight
                    if candidate > best.get(b, 0.0) + 1e-15:
                        best[b] = candidate
                        parent[b] = (a, b, time)
                        changed = True
    if target not in best:
        return None
    if source == target:
        return Journey(source=source, hops=()), 1.0
    if target not in parent:
        return None
    hops: List[Hop] = []
    node = target
    seen_guard = 0
    while node != source and seen_guard <= len(parent) + 1:
        hop = parent[node]
        hops.append(hop)
        node = hop[0]
        seen_guard += 1
    hops.reverse()
    return Journey(source=source, hops=tuple(hops)), best[target]


def most_reliable_journey(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Tuple[Journey, float]]:
    """Maximise the product of contact reliabilities along a journey.

    Weights must lie in (0, 1].  Returns (journey, reliability) or
    ``None`` when unreachable.  DP over time: best[node] = highest
    success probability of holding the message by the current label,
    with same-unit chaining handled by per-unit fixpoint (max is
    idempotent).  Above the frozen threshold the DP reads the cached
    pre-sorted weighted contact list instead of rebuilding it per call.
    """
    for node in (source, target):
        if not eg.has_node(node):
            raise NodeNotFoundError(node)
    return _most_reliable_over(_weighted_contacts(eg), source, target, start)


def most_reliable_journey_reference(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Tuple[Journey, float]]:
    """The DP over a freshly built contact list: ground truth."""
    for node in (source, target):
        if not eg.has_node(node):
            raise NodeNotFoundError(node)
    contacts = [
        (time, u, v, eg.weight(u, v, time))
        for time, u, v in eg.all_contacts()
    ]
    return _most_reliable_over(contacts, source, target, start)


def max_bandwidth_journey(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Tuple[Journey, float]]:
    """Maximise the bottleneck (minimum) weight along a journey.

    Search over the distinct weight values: the best bottleneck is the
    largest threshold for which the subgraph of contacts with weight ≥
    threshold still temporally connects source to target.  Above the
    frozen threshold each candidate is tested by one masked vectorized
    reachability scan; the filtered graph (and its journey) is built
    only once, for the winning threshold.
    """
    from repro.temporal.journeys import earliest_completion_journey

    for node in (source, target):
        if not eg.has_node(node):
            raise NodeNotFoundError(node)
    if source == target:
        return Journey(source=source, hops=()), math.inf
    if eg.num_contacts < FROZEN_MIN_CONTACTS:
        record_dispatch("temporal.max_bandwidth_journey", fast=False)
        return max_bandwidth_journey_reference(eg, source, target, start)

    record_dispatch("temporal.max_bandwidth_journey", fast=True)
    fc = eg.frozen()
    source_idx = fc.index_of(source)
    target_idx = fc.index_of(target)
    contacts = fc.weighted_contacts()
    thresholds = sorted({weight for _, _, _, weight in contacts}, reverse=True)
    for threshold in thresholds:
        if not fc.reaches(source_idx, target_idx, start, threshold):
            continue
        filtered = EvolvingGraph(horizon=eg.horizon, nodes=eg.nodes())
        for time, u, v, weight in contacts:
            if weight >= threshold:
                filtered.add_contact(u, v, time, weight)
        journey = earliest_completion_journey(filtered, source, target, start)
        if journey is not None and (journey.hops or source == target):
            return journey, threshold
    return None


def max_bandwidth_journey_reference(
    eg: EvolvingGraph, source: Node, target: Node, start: int = 0
) -> Optional[Tuple[Journey, float]]:
    """One filtered graph + journey per threshold: ground truth."""
    from repro.temporal.journeys import earliest_completion_journey

    for node in (source, target):
        if not eg.has_node(node):
            raise NodeNotFoundError(node)
    if source == target:
        return Journey(source=source, hops=()), math.inf

    contacts = [
        (time, u, v, eg.weight(u, v, time))
        for time, u, v in eg.all_contacts()
    ]
    thresholds = sorted({weight for _, _, _, weight in contacts}, reverse=True)
    for threshold in thresholds:
        filtered = EvolvingGraph(horizon=eg.horizon, nodes=eg.nodes())
        for time, u, v, weight in contacts:
            if weight >= threshold:
                filtered.add_contact(u, v, time, weight)
        journey = earliest_completion_journey(filtered, source, target, start)
        if journey is not None and (journey.hops or source == target):
            return journey, threshold
    return None


def journey_bottleneck(eg: EvolvingGraph, journey: Journey) -> float:
    """The minimum weight along a journey (inf for the empty journey)."""
    if not journey.hops:
        return math.inf
    return min(eg.weight(u, v, t) for u, v, t in journey.hops)
