"""Structural trimming (Sec. III-A of the paper).

Static trimming: the evolving-graph node/link replacement rules with
priorities, localized topology control on unit disk graphs (Gabriel,
RNG, XTC), and greedy t-spanners.  Dynamic trimming: fixed-point,
time-varying (utility decay) and copy-varying forwarding sets for
opportunistic routing.
"""

from repro.trimming.forwarding_set import (
    CopyVaryingPolicy,
    ForwardingPolicy,
    TimeVaryingForwardingSets,
    optimal_copy_varying_sets,
    optimal_forwarding_sets,
    simulate_single_copy,
)
from repro.trimming.probabilistic import (
    ProbabilisticEvolvingGraph,
    SamplingVerdict,
    node_trimmable_p1,
    node_trimmable_p2,
    replacement_probability,
)
from repro.trimming.spanners import greedy_spanner, spanner_stretch
from repro.trimming.static_rules import (
    betweenness_priority,
    degree_priority,
    id_priority,
    ignorable_links,
    link_ignorable,
    node_trimmable,
    trim_nodes,
)
from repro.trimming.topology_control import (
    gabriel_graph,
    relative_neighborhood_graph,
    stretch_factor,
    xtc,
)

__all__ = [
    "CopyVaryingPolicy",
    "ForwardingPolicy",
    "ProbabilisticEvolvingGraph",
    "SamplingVerdict",
    "TimeVaryingForwardingSets",
    "betweenness_priority",
    "degree_priority",
    "gabriel_graph",
    "greedy_spanner",
    "id_priority",
    "ignorable_links",
    "link_ignorable",
    "node_trimmable",
    "node_trimmable_p1",
    "node_trimmable_p2",
    "replacement_probability",
    "optimal_copy_varying_sets",
    "optimal_forwarding_sets",
    "relative_neighborhood_graph",
    "simulate_single_copy",
    "spanner_stretch",
    "stretch_factor",
    "trim_nodes",
    "xtc",
]
