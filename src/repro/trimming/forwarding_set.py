"""Dynamic trimming: forwarding sets in opportunistic networks (Sec. III-A).

Dynamic trimming is the online version of trimming for a particular
application — routing.  The paper's bus-riding analogy: should a
message board the first contact to arrive (maybe a longer route) or
wait for a later, shorter one?  Three models are implemented, matching
the paper's three citations:

* **fixed-point forwarding sets** ([12], Conan et al.) — single-copy
  routing under exponential inter-contact times; the optimal policy
  forwards to neighbor w iff w's expected delay is below the current
  holder's, and the expected delays satisfy a Dijkstra-like fixed
  point, solved exactly here;
* **time-varying forwarding sets** ([13], TOUR) — when message utility
  decays linearly over time, the optimal forwarding set at a node
  *shrinks over time*; computed by backward induction on the expected
  residual utility, and the shrinkage is verified in tests;
* **copy-varying forwarding sets** — multi-copy delivery minimising
  the first-copy delay; the acceptance set depends on how many copies
  remain, computed exactly by subset value iteration on small networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import AlgorithmError, NodeNotFoundError
from repro.observability.instrument import timed

Node = Hashable
Pair = FrozenSet[Node]


def _rate(rates: Mapping[Pair, float], u: Node, v: Node) -> float:
    return float(rates.get(frozenset((u, v)), 0.0))


def _nodes_of(rates: Mapping[Pair, float]) -> Set[Node]:
    nodes: Set[Node] = set()
    for pair in rates:
        nodes |= set(pair)
    return nodes


# ----------------------------------------------------------------------
# fixed-point forwarding sets ([12])
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ForwardingPolicy:
    """Optimal single-copy policy: expected delays and forwarding sets."""

    destination: Node
    expected_delay: Dict[Node, float]
    forwarding_sets: Dict[Node, FrozenSet[Node]]

    def should_forward(self, holder: Node, contact: Node) -> bool:
        """Forward on a (holder, contact) meeting iff contact ∈ F(holder)."""
        return contact in self.forwarding_sets.get(holder, frozenset())


@timed("repro.trimming.optimal_forwarding_sets")
def optimal_forwarding_sets(
    rates: Mapping[Pair, float], destination: Node
) -> ForwardingPolicy:
    """Solve the fixed point of single-copy opportunistic routing.

    Pairs meet as independent Poisson processes with the given rates.
    A holder u using forwarding set F waits an Exp(Λ) time,
    Λ = Σ_{w∈F} λ_{uw}, then hands the message to the first arrival:

        D(u) = (1 + Σ_{w∈F} λ_uw · D(w)) / Λ,   D(destination) = 0.

    The optimal F(u) contains exactly the neighbors with D(w) < D(u);
    the delays are computed by a Dijkstra-style greedy that finalises
    nodes in increasing D — each new node's best delay uses only
    already-finalised (smaller-D) relays, mirroring [12].
    Unreachable nodes get D = inf and an empty set.
    """
    nodes = _nodes_of(rates) | {destination}
    delay: Dict[Node, float] = {node: math.inf for node in nodes}
    delay[destination] = 0.0
    finalized: Set[Node] = set()

    def best_delay(u: Node) -> Tuple[float, FrozenSet[Node]]:
        # Greedy over finalised relays sorted by delay: adding relay w
        # helps iff D(w) < current D(u) estimate.
        candidates = sorted(
            (w for w in finalized if _rate(rates, u, w) > 0),
            key=lambda w: delay[w],
        )
        total_rate = 0.0
        weighted = 0.0
        current = math.inf
        chosen: List[Node] = []
        for w in candidates:
            if delay[w] >= current:
                break
            total_rate += _rate(rates, u, w)
            weighted += _rate(rates, u, w) * delay[w]
            current = (1.0 + weighted) / total_rate
            chosen.append(w)
        return current, frozenset(chosen)

    sets: Dict[Node, FrozenSet[Node]] = {node: frozenset() for node in nodes}
    finalized.add(destination)
    pending = set(nodes) - finalized
    while pending:
        best_node = None
        best_value = math.inf
        best_set: FrozenSet[Node] = frozenset()
        for u in sorted(pending, key=repr):
            value, chosen = best_delay(u)
            if value < best_value:
                best_value, best_node, best_set = value, u, chosen
        if best_node is None or math.isinf(best_value):
            break
        delay[best_node] = best_value
        sets[best_node] = best_set
        finalized.add(best_node)
        pending.discard(best_node)
    return ForwardingPolicy(
        destination=destination, expected_delay=delay, forwarding_sets=sets
    )


def simulate_single_copy(
    rates: Mapping[Pair, float],
    source: Node,
    destination: Node,
    policy: str,
    rng: np.random.Generator,
    forwarding: Optional[ForwardingPolicy] = None,
    max_time: float = 1e6,
) -> float:
    """Monte-Carlo delivery time of one message under a policy.

    ``policy`` ∈ {"direct", "first-contact", "forwarding-set"}:
    direct waits for the destination; first-contact hands off on every
    meeting (the impatient bus rider); forwarding-set follows the
    optimal sets.  Returns the delivery time (or ``max_time`` if the
    clock runs out).
    """
    if policy == "forwarding-set" and forwarding is None:
        raise ValueError("forwarding-set policy needs a ForwardingPolicy")
    holder = source
    now = 0.0
    nodes = _nodes_of(rates) | {destination, source}
    while now < max_time:
        if holder == destination:
            return now
        partners = [
            (w, _rate(rates, holder, w)) for w in nodes
            if w != holder and _rate(rates, holder, w) > 0
        ]
        if not partners:
            return max_time
        total = sum(rate for _, rate in partners)
        now += float(rng.exponential(1.0 / total))
        pick = rng.random() * total
        cumulative = 0.0
        contact = partners[-1][0]
        for w, rate in partners:
            cumulative += rate
            if pick <= cumulative:
                contact = w
                break
        if contact == destination:
            return now
        if policy == "direct":
            continue
        if policy == "first-contact":
            holder = contact
        elif policy == "forwarding-set":
            assert forwarding is not None
            if forwarding.should_forward(holder, contact):
                holder = contact
        else:
            raise ValueError(f"unknown policy {policy!r}")
    return max_time


# ----------------------------------------------------------------------
# time-varying forwarding sets under utility decay ([13], TOUR)
# ----------------------------------------------------------------------

class TimeVaryingForwardingSets:
    """Optimal forwarding under linearly decaying utility ([13], TOUR).

    A message created at time 0 has utility ``u0 - beta * t`` when
    delivered at time t (0 once expired); handing the message to a
    relay costs ``cost`` (transmission expenditure).  ``value(u, t)``
    is the expected net utility-to-go when node u holds the message at
    time t; computed by backward induction on a grid of step ``dt``:

        V_u(t − dt) = V_u(t) + dt · Σ_w λ_uw · max(0, V_w(t) − V_u(t) − cost)

    with V_dest(t) = max(u0 − beta·t, 0) (delivery is instantaneous on
    contact).  The optimal time-varying forwarding set is
    F_u(t) = {w : V_w(t) − V_u(t) > cost}.  With a positive cost the
    utility gaps decay toward the deadline, so — as the paper states —
    the set at an intermediate node *shrinks over time* (verified in
    tests and in the Text-3 benchmark).
    """

    def __init__(
        self,
        rates: Mapping[Pair, float],
        destination: Node,
        u0: float,
        beta: float,
        cost: float = 0.0,
        dt: float = 0.01,
    ) -> None:
        if u0 <= 0:
            raise ValueError(f"u0 must be positive, got {u0}")
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.rates = dict(rates)
        self.destination = destination
        self.u0 = float(u0)
        self.beta = float(beta)
        self.cost = float(cost)
        self.dt = float(dt)
        self.deadline = self.u0 / self.beta
        self.nodes = sorted(_nodes_of(rates) | {destination}, key=repr)
        self._index = {node: i for i, node in enumerate(self.nodes)}
        self._steps = int(math.ceil(self.deadline / self.dt)) + 1
        self._grid = np.zeros((self._steps, len(self.nodes)))
        self._solve()

    def _solve(self) -> None:
        dest = self._index[self.destination]
        times = np.arange(self._steps) * self.dt
        # Terminal condition: at the deadline utility is zero everywhere.
        self._grid[-1, :] = 0.0
        self._grid[:, dest] = np.maximum(self.u0 - self.beta * times, 0.0)
        rate_matrix = np.zeros((len(self.nodes), len(self.nodes)))
        for pair, rate in self.rates.items():
            members = tuple(pair)
            if len(members) != 2:
                continue
            i, j = self._index[members[0]], self._index[members[1]]
            rate_matrix[i, j] = rate
            rate_matrix[j, i] = rate
        for step in range(self._steps - 2, -1, -1):
            future = self._grid[step + 1]
            gain = np.maximum(future[None, :] - future[:, None] - self.cost, 0.0)
            drift = (rate_matrix * gain).sum(axis=1)
            updated = future + self.dt * drift
            updated[dest] = self._grid[step, dest]
            self._grid[step] = np.minimum(updated, self.u0)

    def value(self, node: Node, t: float) -> float:
        """Expected utility-to-go of the message at ``node`` at time t."""
        if node not in self._index:
            raise NodeNotFoundError(node)
        if t >= self.deadline:
            return 0.0
        step = min(int(t / self.dt), self._steps - 1)
        return float(self._grid[step, self._index[node]])

    def forwarding_set(self, node: Node, t: float) -> FrozenSet[Node]:
        """F_node(t): neighbors whose utility gain exceeds the cost."""
        own = self.value(node, t)
        members = []
        for other in self.nodes:
            if other == node or _rate(self.rates, node, other) <= 0:
                continue
            if self.value(other, t) - own > self.cost + 1e-12:
                members.append(other)
        return frozenset(members)


# ----------------------------------------------------------------------
# copy-varying forwarding sets (multi-copy first-delivery)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CopyVaryingPolicy:
    """Exact multi-copy policy on a small network.

    ``expected_delay[S]`` is the optimal expected first-copy delivery
    time when the copy-holder set is S (|S| <= budget);
    ``acceptance[S]`` is the set of nodes worth replicating to from S.
    """

    destination: Node
    budget: int
    expected_delay: Dict[FrozenSet[Node], float]
    acceptance: Dict[FrozenSet[Node], FrozenSet[Node]]

    def forwarding_set(self, holders: FrozenSet[Node]) -> FrozenSet[Node]:
        return self.acceptance.get(holders, frozenset())


@timed("repro.trimming.optimal_copy_varying_sets")
def optimal_copy_varying_sets(
    rates: Mapping[Pair, float],
    destination: Node,
    budget: int,
    max_nodes: int = 14,
) -> CopyVaryingPolicy:
    """Exact value iteration over copy-holder subsets.

    State: the set S of nodes currently holding a copy (destination
    excluded).  Contacts between a holder and the destination deliver;
    contacts between a holder and an outsider w may replicate (if
    |S| < budget and w is *accepted*).  By memorylessness, rejected
    contacts can be ignored, so

        D(S) = (1 + Σ_{w∈A(S)} Λ_w(S)·D(S∪{w})) / (Λ_dest(S) + Σ_{w∈A(S)} Λ_w(S))

    where Λ_w(S) = Σ_{s∈S} λ_sw and the optimal acceptance set A(S) is
    found greedily over candidates sorted by D(S∪{w}) — exactly the
    structure of the single-copy fixed point, lifted to subsets.  The
    acceptance sets demonstrably vary with the number of copies left —
    the paper's "copy-varying" forwarding set.
    """
    nodes = sorted(_nodes_of(rates) | {destination}, key=repr)
    relay_nodes = [node for node in nodes if node != destination]
    if len(relay_nodes) > max_nodes:
        raise AlgorithmError(
            f"exact subset iteration limited to {max_nodes} relay nodes, "
            f"got {len(relay_nodes)}"
        )
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")

    from itertools import combinations

    def dest_rate(holders: FrozenSet[Node]) -> float:
        return sum(_rate(rates, s, destination) for s in holders)

    def outsider_rate(holders: FrozenSet[Node], w: Node) -> float:
        return sum(_rate(rates, s, w) for s in holders)

    expected: Dict[FrozenSet[Node], float] = {}
    acceptance: Dict[FrozenSet[Node], FrozenSet[Node]] = {}

    sizes = range(min(budget, len(relay_nodes)), 0, -1)
    for size in sizes:
        for combo in combinations(relay_nodes, size):
            holders = frozenset(combo)
            base_rate = dest_rate(holders)
            if size >= budget:
                expected[holders] = math.inf if base_rate == 0 else 1.0 / base_rate
                acceptance[holders] = frozenset()
                continue
            candidates = []
            for w in relay_nodes:
                if w in holders:
                    continue
                rate_w = outsider_rate(holders, w)
                if rate_w <= 0:
                    continue
                candidates.append((expected[holders | {w}], rate_w, w))
            candidates.sort(key=lambda item: (item[0], repr(item[2])))
            total_rate = base_rate
            weighted = 0.0
            best = math.inf if base_rate == 0 else 1.0 / base_rate
            chosen: List[Node] = []
            for next_delay, rate_w, w in candidates:
                if next_delay >= best:
                    break
                if math.isinf(next_delay):
                    break
                total_rate += rate_w
                weighted += rate_w * next_delay
                best = (1.0 + weighted) / total_rate if total_rate > 0 else math.inf
                chosen.append(w)
            expected[holders] = best
            acceptance[holders] = frozenset(chosen)
    return CopyVaryingPolicy(
        destination=destination,
        budget=budget,
        expected_delay=expected,
        acceptance=acceptance,
    )
