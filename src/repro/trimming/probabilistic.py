"""Probabilistic trimming of evolving graphs (Sec. III-A, open question).

"In situations where link labels are not deterministically, but rather,
probabilistically, known, it would be interesting to explore different
probabilistic versions of the trimming rule."

This module answers that invitation with a concrete model and two
rules:

**Model** — a :class:`ProbabilisticEvolvingGraph`: each (edge, time
unit) contact materialises independently with a known probability
``p(u, v, t)`` (e.g. estimated from a mobility model's history).

**Rule P1 (expectation rule)** — node u is trimmable at confidence
``gamma`` if for every 2-hop pattern w → u → v with label pair
(i, j), i ≤ j, the probability that *some* replacement journey
(departing ≥ i, arriving ≤ j, avoiding u) materialises is at least
``gamma`` times the probability that the original pair itself
materialises.  With all probabilities 1 and gamma = 1 this degenerates
to the paper's deterministic rule (tested).

**Rule P2 (sampling rule)** — Monte-Carlo version: sample
realisations, apply the deterministic rule per realisation, and trim
nodes that are trimmable in at least a ``gamma`` fraction — an
estimator of the same quantity usable when exact path enumeration is
too expensive.

Replacement probabilities are the best-single-journey products (see
:func:`replacement_probability`) — guaranteed lower bounds on the
union over all replacement journeys, whose exact evaluation is #P-hard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.errors import NodeNotFoundError
from repro.temporal.evolving import EvolvingGraph

Node = Hashable
ContactKey = Tuple[FrozenSet, int]


class ProbabilisticEvolvingGraph:
    """An evolving graph whose contacts exist with known probabilities."""

    def __init__(self, horizon: int, nodes: Optional[Iterable[Node]] = None) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = int(horizon)
        self._nodes: Set[Node] = set(nodes) if nodes is not None else set()
        self._prob: Dict[ContactKey, float] = {}

    def add_node(self, node: Node) -> None:
        self._nodes.add(node)

    def set_contact_probability(
        self, u: Node, v: Node, time: int, probability: float
    ) -> None:
        if u == v:
            raise ValueError(f"self-contact on {u!r}")
        if not 0 <= time < self.horizon:
            raise ValueError(f"time {time} out of range [0, {self.horizon})")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._nodes.add(u)
        self._nodes.add(v)
        key = (frozenset((u, v)), time)
        if probability == 0.0:
            self._prob.pop(key, None)
        else:
            self._prob[key] = float(probability)

    def contact_probability(self, u: Node, v: Node, time: int) -> float:
        return self._prob.get((frozenset((u, v)), time), 0.0)

    def nodes(self) -> Set[Node]:
        return set(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def neighbors(self, node: Node) -> Set[Node]:
        if node not in self._nodes:
            raise NodeNotFoundError(node)
        result: Set[Node] = set()
        for (pair, _), _p in self._prob.items():
            if node in pair:
                result |= pair - {node}
        return result

    def potential_labels(self, u: Node, v: Node) -> List[Tuple[int, float]]:
        """(time, probability) pairs for edge (u, v), time-sorted."""
        pair = frozenset((u, v))
        return sorted(
            (time, p)
            for (key, time), p in self._prob.items()
            if key == pair
        )

    def sample(self, rng: np.random.Generator) -> EvolvingGraph:
        """One deterministic realisation of the probabilistic graph."""
        eg = EvolvingGraph(horizon=self.horizon, nodes=self._nodes)
        for (pair, time), p in self._prob.items():
            if rng.random() < p:
                u, v = tuple(pair)
                eg.add_contact(u, v, time)
        return eg

    @classmethod
    def from_evolving(
        cls, eg: EvolvingGraph, probability: float = 1.0
    ) -> "ProbabilisticEvolvingGraph":
        """Lift a deterministic EG: every contact gets ``probability``."""
        peg = cls(horizon=eg.horizon, nodes=eg.nodes())
        for time, u, v in eg.all_contacts():
            peg.set_contact_probability(u, v, time, probability)
        return peg


def replacement_probability(
    peg: ProbabilisticEvolvingGraph,
    w: Node,
    v: Node,
    first_label: int,
    last_label: int,
    forbidden: Set[Node],
) -> float:
    """Probability of the *best single* replacement journey w →* v.

    The maximum, over journeys departing ≥ ``first_label`` and arriving
    ≤ ``last_label`` that avoid ``forbidden`` nodes, of the product of
    the journey's contact probabilities.  This is a guaranteed lower
    bound on P(some replacement materialises) — the exact union over
    correlated paths is #P-hard — and it is precisely the quantity a
    practical protocol committing to one backup path needs.

    Computed by a Viterbi-style DP: ``best[x]`` is the best product
    probability of reaching x so far; within each time unit the relax
    step iterates to a fixpoint (same-unit chains are allowed because
    labels are non-decreasing), which is safe because ``max`` is
    idempotent — unlike a union bound, probabilities cannot compound.
    """
    best: Dict[Node, float] = {w: 1.0}
    for time in range(first_label, last_label + 1):
        for _ in range(peg.num_nodes):
            changed = False
            for (pair, t), p in peg._prob.items():
                if t != time:
                    continue
                a, b = tuple(pair)
                if a in forbidden or b in forbidden:
                    continue
                for src, dst in ((a, b), (b, a)):
                    candidate = best.get(src, 0.0) * p
                    if candidate > best.get(dst, 0.0) + 1e-15:
                        best[dst] = candidate
                        changed = True
            if not changed:
                break
    return best.get(v, 0.0)


def node_trimmable_p1(
    peg: ProbabilisticEvolvingGraph,
    u: Node,
    gamma: float = 0.9,
    priorities: Optional[Dict[Node, float]] = None,
) -> bool:
    """Rule P1: expectation version of the node replacement rule.

    For each 2-hop pattern w --i--> u --j--> v (i <= j) with pattern
    probability q = p(w,u,i) · p(u,v,j), a replacement must exist with
    probability >= gamma · q.  Priorities restrict replacement
    intermediates exactly as in the deterministic rule.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    if u not in peg.nodes():
        raise NodeNotFoundError(u)
    forbidden = {u}
    if priorities is not None:
        forbidden |= {
            x for x in peg.nodes()
            if x != u and priorities.get(x, 0.0) <= priorities.get(u, 0.0)
        }
    neighbors = sorted(peg.neighbors(u), key=repr)
    for w in neighbors:
        for v in neighbors:
            if v == w:
                continue
            for i, p_in in peg.potential_labels(w, u):
                for j, p_out in peg.potential_labels(u, v):
                    if i > j:
                        continue
                    pattern_probability = p_in * p_out
                    if pattern_probability <= 0:
                        continue
                    replacement = replacement_probability(
                        peg, w, v, i, j, forbidden - {w, v}
                    )
                    if replacement + 1e-12 < gamma * pattern_probability:
                        return False
    return True


@dataclass(frozen=True)
class SamplingVerdict:
    """Rule P2 outcome for one node."""

    node: Node
    trimmable_fraction: float
    samples: int

    def trimmable(self, gamma: float) -> bool:
        return self.trimmable_fraction >= gamma


def node_trimmable_p2(
    peg: ProbabilisticEvolvingGraph,
    u: Node,
    rng: np.random.Generator,
    samples: int = 50,
    priorities: Optional[Dict[Node, float]] = None,
) -> SamplingVerdict:
    """Rule P2: Monte-Carlo estimate of deterministic trimmability."""
    from repro.trimming.static_rules import node_trimmable

    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    hits = 0
    for _ in range(samples):
        realization = peg.sample(rng)
        if not realization.has_node(u) or not realization.neighbors(u):
            hits += 1  # vacuously trimmable in this realization
            continue
        if node_trimmable(realization, u, priorities):
            hits += 1
    return SamplingVerdict(
        node=u, trimmable_fraction=hits / samples, samples=samples
    )
