"""Greedy t-spanners: distance-preserving structural trimming (Sec. III-A).

"Subgraph distances closely resemble the distances in the original
graph for designing the approximation algorithms" [8] — the classical
construction with that guarantee is the greedy t-spanner: scan edges by
increasing weight and keep an edge only when the current spanner's
distance between its endpoints exceeds t × its weight.  The result
satisfies d_spanner(u, v) <= t · d_graph(u, v) for *all* pairs, while
dropping most edges of dense graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Set, Tuple

from repro.graphs.csr import FROZEN_MIN_NODES
from repro.observability.telemetry import record_dispatch
from repro.graphs.graph import Graph
from repro.graphs.traversal import dijkstra
from repro.observability.instrument import timed

Node = Hashable


def _is_unit_weighted(graph: Graph, weight: str, default_weight: float) -> bool:
    """True when every edge resolves to weight 1.0 (the hop-metric case)."""
    if default_weight != 1.0:
        return False
    return all(
        attrs.get(weight, 1.0) == 1.0 for attrs in graph._edge_attrs.values()
    )


@timed("repro.trimming.greedy_spanner")
def greedy_spanner(
    graph: Graph,
    t: float,
    weight: str = "weight",
    default_weight: float = 1.0,
) -> Graph:
    """The greedy t-spanner of a weighted undirected graph.

    Guarantee: for every edge (u, v) of the input — and hence every
    pair — the spanner distance is at most ``t`` times the graph
    distance.  ``t`` must be >= 1.
    """
    if t < 1.0:
        raise ValueError(f"stretch t must be >= 1, got {t}")
    spanner = Graph()
    for node in graph.nodes():
        spanner.add_node(node)

    def weight_of(u: Node, v: Node) -> float:
        return float(graph.edge_attr(u, v, weight, default_weight))

    def spanner_weight(u: Node, v: Node) -> float:
        return float(spanner.edge_attr(u, v, weight, default_weight))

    edges = sorted(
        graph.edges(), key=lambda e: (weight_of(e[0], e[1]), repr(e))
    )
    if _is_unit_weighted(graph, weight, default_weight):
        # Hop metric: the bounded Dijkstra reduces to a depth-limited
        # BFS over the growing spanner (exact — all distances are
        # integers), which drops the heap and float bookkeeping.
        max_hops = int(t)
        for u, v in edges:
            if _within_hops(spanner._adj, u, v, max_hops):
                continue
            spanner.add_edge(u, v, **{weight: 1.0})
        return spanner
    for u, v in edges:
        w = weight_of(u, v)
        distance = _bounded_distance(spanner, u, v, t * w, spanner_weight)
        if distance is None or distance > t * w:
            spanner.add_edge(u, v, **{weight: w})
    return spanner


def _within_hops(
    adjacency: Dict[Node, Set[Node]], source: Node, target: Node, max_hops: int
) -> bool:
    """Depth-limited BFS: is ``target`` within ``max_hops`` of ``source``?"""
    if max_hops <= 0:
        return source == target
    seen = {source}
    frontier = [source]
    for _ in range(max_hops):
        next_frontier = []
        for node in frontier:
            for neighbor in adjacency[node]:
                if neighbor == target:
                    return True
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            return False
        frontier = next_frontier
    return False


def _bounded_distance(
    graph: Graph,
    source: Node,
    target: Node,
    bound: float,
    weight_of: Callable[[Node, Node], float],
) -> Optional[float]:
    """Dijkstra distance source→target, early-exiting past ``bound``."""
    import heapq

    dist: Dict[Node, float] = {source: 0.0}
    heap = [(0.0, 0, source)]
    counter = 1
    done = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in done:
            continue
        if node == target:
            return d
        if d > bound:
            return None
        done.add(node)
        # Read the adjacency set live — graph.neighbors() would copy it
        # on every heap pop.
        for neighbor in graph._adj[node]:
            candidate = d + weight_of(node, neighbor)
            if candidate <= bound and (neighbor not in dist or candidate < dist[neighbor]):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return None


def spanner_stretch(
    graph: Graph,
    spanner: Graph,
    weight: str = "weight",
    default_weight: float = 1.0,
) -> float:
    """Measured worst-case stretch of the spanner over all pairs.

    Exact verification of the t-spanner property (used in tests and in
    the trimming ablation benchmark); returns inf if the spanner
    disconnects a connected pair.
    """
    if (
        graph.num_nodes >= FROZEN_MIN_NODES
        and _is_unit_weighted(graph, weight, default_weight)
        and _is_unit_weighted(spanner, weight, default_weight)
        and all(spanner.has_node(node) for node in graph.nodes())
    ):
        record_dispatch("trimming.spanner_stretch", fast=True)
        return _hop_stretch(graph, spanner)
    record_dispatch("trimming.spanner_stretch", fast=False)

    def graph_weight(u: Node, v: Node) -> float:
        return float(graph.edge_attr(u, v, weight, default_weight))

    def spanner_w(u: Node, v: Node) -> float:
        return float(spanner.edge_attr(u, v, weight, default_weight))

    worst = 1.0
    for source in graph.nodes():
        base, _ = dijkstra(graph, source, weight=graph_weight)
        new, _ = dijkstra(spanner, source, weight=spanner_w)
        for target, base_distance in base.items():
            if target == source or base_distance == 0:
                continue
            if target not in new:
                return float("inf")
            worst = max(worst, new[target] / base_distance)
    return worst


def _hop_stretch(graph: Graph, spanner: Graph) -> float:
    """Unit-weight stretch via per-source vectorized BFS on both graphs."""
    import numpy as np

    base_fg = graph.frozen()
    spanner_fg = spanner.frozen()
    # Align the spanner's index space with the base graph's.
    remap = np.array(
        [spanner_fg.index[node] for node in base_fg.node_list], dtype=np.int64
    )
    worst = 1.0
    for i in range(base_fg.n):
        base_levels = base_fg.bfs_levels(i)
        spanner_levels = spanner_fg.bfs_levels(int(remap[i]))[remap]
        reachable = base_levels > 0
        if not reachable.any():
            continue
        if (spanner_levels[reachable] < 0).any():
            return float("inf")
        ratios = spanner_levels[reachable] / base_levels[reachable]
        worst = max(worst, float(ratios.max()))
    return worst
