"""Greedy t-spanners: distance-preserving structural trimming (Sec. III-A).

"Subgraph distances closely resemble the distances in the original
graph for designing the approximation algorithms" [8] — the classical
construction with that guarantee is the greedy t-spanner: scan edges by
increasing weight and keep an edge only when the current spanner's
distance between its endpoints exceeds t × its weight.  The result
satisfies d_spanner(u, v) <= t · d_graph(u, v) for *all* pairs, while
dropping most edges of dense graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.graphs.graph import Graph
from repro.graphs.traversal import dijkstra
from repro.observability.instrument import timed

Node = Hashable


@timed("repro.trimming.greedy_spanner")
def greedy_spanner(
    graph: Graph,
    t: float,
    weight: str = "weight",
    default_weight: float = 1.0,
) -> Graph:
    """The greedy t-spanner of a weighted undirected graph.

    Guarantee: for every edge (u, v) of the input — and hence every
    pair — the spanner distance is at most ``t`` times the graph
    distance.  ``t`` must be >= 1.
    """
    if t < 1.0:
        raise ValueError(f"stretch t must be >= 1, got {t}")
    spanner = Graph()
    for node in graph.nodes():
        spanner.add_node(node)

    def weight_of(u: Node, v: Node) -> float:
        return float(graph.edge_attr(u, v, weight, default_weight))

    def spanner_weight(u: Node, v: Node) -> float:
        return float(spanner.edge_attr(u, v, weight, default_weight))

    edges = sorted(
        graph.edges(), key=lambda e: (weight_of(e[0], e[1]), repr(e))
    )
    for u, v in edges:
        w = weight_of(u, v)
        distance = _bounded_distance(spanner, u, v, t * w, spanner_weight)
        if distance is None or distance > t * w:
            spanner.add_edge(u, v, **{weight: w})
    return spanner


def _bounded_distance(
    graph: Graph,
    source: Node,
    target: Node,
    bound: float,
    weight_of: Callable[[Node, Node], float],
) -> Optional[float]:
    """Dijkstra distance source→target, early-exiting past ``bound``."""
    import heapq

    dist: Dict[Node, float] = {source: 0.0}
    heap = [(0.0, 0, source)]
    counter = 1
    done = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in done:
            continue
        if node == target:
            return d
        if d > bound:
            return None
        done.add(node)
        for neighbor in graph.neighbors(node):
            candidate = d + weight_of(node, neighbor)
            if candidate <= bound and (neighbor not in dist or candidate < dist[neighbor]):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return None


def spanner_stretch(
    graph: Graph,
    spanner: Graph,
    weight: str = "weight",
    default_weight: float = 1.0,
) -> float:
    """Measured worst-case stretch of the spanner over all pairs.

    Exact verification of the t-spanner property (used in tests and in
    the trimming ablation benchmark); returns inf if the spanner
    disconnects a connected pair.
    """
    def graph_weight(u: Node, v: Node) -> float:
        return float(graph.edge_attr(u, v, weight, default_weight))

    def spanner_w(u: Node, v: Node) -> float:
        return float(spanner.edge_attr(u, v, weight, default_weight))

    worst = 1.0
    for source in graph.nodes():
        base, _ = dijkstra(graph, source, weight=graph_weight)
        new, _ = dijkstra(spanner, source, weight=spanner_w)
        for target, base_distance in base.items():
            if target == source or base_distance == 0:
                continue
            if target not in new:
                return float("inf")
            worst = max(worst, new[target] / base_distance)
    return worst
