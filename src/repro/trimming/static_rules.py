"""Static trimming of time-evolving graphs (Sec. III-A).

The paper's trimming rule on an evolving graph EG, using local (2-hop)
information:

    node u can be trimmed if for any path w --i--> u --j--> v with
    i <= j there is another path (a *replacement path*)
    w --i'--> u_1 -> ... -> u_k --j'--> v such that i <= i' and j' <= j.

Only the first- and last-hop labels of the two paths are compared (the
replacement must itself be a valid journey, so its internal labels are
non-decreasing).  Replacing "later departure, earlier arrival" paths
preserves the earliest completion time of any journey through u —
:mod:`repro.core.properties` verifies this, and trimming preserves
time-i-connectivity.

To avoid circular replacement, each node u carries a distinct priority
p(u) and may only be trimmed if every intermediate node of the
replacement path has *higher* priority.  The paper suggests ID, degree
or betweenness priorities; all three are provided.

Refinements implemented, as the paper lists them:

* **hop-bounded rule** — replacement paths with at most one
  intermediate node, preserving minimum hop counts too;
* **link replacement rule** — remove a single link (or a single label
  of a link) instead of a whole node;
* "A can ignore neighbor D" — the per-node link-ignoring predicate.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import NodeNotFoundError
from repro.graphs.metrics import betweenness_centrality
from repro.temporal.evolving import EvolvingGraph

Node = Hashable
Priority = Callable[[Node], float]


def id_priority(eg: EvolvingGraph) -> Dict[Node, float]:
    """Distinct priorities by node ID: later in sort order = higher.

    Matches the paper's example ordering p(A) > p(B) > p(C) > ... when
    IDs are reverse-alphabetical ranks, so we map the *smallest* repr to
    the *highest* priority, as in "based on node IDs".
    """
    ordered = sorted(eg.nodes(), key=repr)
    n = len(ordered)
    return {node: float(n - index) for index, node in enumerate(ordered)}


def degree_priority(eg: EvolvingGraph) -> Dict[Node, float]:
    """Footprint-degree priority with ID tie-breaking (strategic nodes last)."""
    ordered = sorted(eg.nodes(), key=repr)
    n = len(ordered)
    return {
        node: len(eg.neighbors(node)) + (n - index) / (n + 1.0)
        for index, node in enumerate(ordered)
    }


def betweenness_priority(eg: EvolvingGraph) -> Dict[Node, float]:
    """Footprint-betweenness priority with ID tie-breaking."""
    centrality = betweenness_centrality(eg.footprint())
    ordered = sorted(eg.nodes(), key=repr)
    n = len(ordered)
    return {
        node: centrality[node] + (n - index) / (n + 1.0) * 1e-9
        for index, node in enumerate(ordered)
    }


def _replacement_exists(
    eg: EvolvingGraph,
    w: Node,
    v: Node,
    first_label: int,
    last_label: int,
    forbidden_nodes: Set[Node],
    forbidden_links: Set[frozenset],
    min_intermediate_priority: Optional[float],
    priorities: Optional[Dict[Node, float]],
    max_intermediates: Optional[int],
) -> bool:
    """Is there a journey w →* v with first label >= first_label, last
    label <= last_label, avoiding ``forbidden_nodes``/``forbidden_links``,
    whose intermediate nodes all have priority > min_intermediate_priority
    and number at most ``max_intermediates``?

    Search over states (node, arrival_time, hops) by a time-ordered
    relaxation: we track the earliest arrival per (node, hops_used)
    because an earlier arrival dominates.
    """
    # best[node][hops] = earliest arrival time
    limit = max_intermediates + 1 if max_intermediates is not None else eg.num_nodes
    best: Dict[Node, Dict[int, int]] = {w: {0: first_label}}
    frontier: List[Tuple[Node, int, int]] = [(w, first_label, 0)]
    while frontier:
        next_frontier: List[Tuple[Node, int, int]] = []
        for node, ready, hops in frontier:
            if hops > limit:
                continue
            for time, neighbor in eg.contacts_from(node, not_before=ready):
                if node == w and time < first_label:
                    continue
                if time > last_label:
                    break
                if frozenset((node, neighbor)) in forbidden_links:
                    continue
                if neighbor == v:
                    return True
                if neighbor in forbidden_nodes or neighbor == w:
                    continue
                if (
                    min_intermediate_priority is not None
                    and priorities is not None
                    and priorities[neighbor] <= min_intermediate_priority
                ):
                    continue
                new_hops = hops + 1
                if max_intermediates is not None and new_hops > max_intermediates:
                    continue
                by_hops = best.setdefault(neighbor, {})
                existing = by_hops.get(new_hops)
                if existing is not None and existing <= time:
                    continue
                # Dominance: any fewer-hop earlier arrival also covers this.
                if any(
                    h <= new_hops and t <= time for h, t in by_hops.items()
                ):
                    continue
                by_hops[new_hops] = time
                next_frontier.append((neighbor, time, new_hops))
        frontier = next_frontier
    return False


def node_trimmable(
    eg: EvolvingGraph,
    u: Node,
    priorities: Optional[Dict[Node, float]] = None,
    max_intermediates: Optional[int] = None,
) -> bool:
    """The paper's node replacement rule.

    ``u`` is trimmable iff for *every* 2-hop path w --i--> u --j--> v
    (w ≠ v neighbors of u, i <= j) a replacement journey exists from w
    to v avoiding u, with first label >= i, last label <= j, and all
    intermediate nodes of priority > p(u) (when priorities are given).
    ``max_intermediates=1`` yields the hop-preserving refinement.
    """
    if not eg.has_node(u):
        raise NodeNotFoundError(u)
    neighbors = sorted(eg.neighbors(u), key=repr)
    u_priority = priorities[u] if priorities is not None else None
    for w in neighbors:
        labels_in = sorted(eg.labels(w, u))
        for v in neighbors:
            if v == w:
                continue
            labels_out = sorted(eg.labels(u, v))
            for i in labels_in:
                for j in labels_out:
                    if i > j:
                        continue
                    if not _replacement_exists(
                        eg,
                        w,
                        v,
                        first_label=i,
                        last_label=j,
                        forbidden_nodes={u},
                        forbidden_links=set(),
                        min_intermediate_priority=u_priority,
                        priorities=priorities,
                        max_intermediates=max_intermediates,
                    ):
                        return False
    return True


def link_ignorable(
    eg: EvolvingGraph,
    u: Node,
    d: Node,
    priorities: Optional[Dict[Node, float]] = None,
    max_intermediates: Optional[int] = None,
) -> bool:
    """Can node ``u`` ignore its neighbor ``d`` (the link u–d)?

    The link replacement rule, refined from the node rule: for every
    2-hop path u --i--> d --j--> v (i <= j, v ≠ u), a replacement
    journey u →* v must exist that avoids the link (u, d), with first
    label >= i and last label <= j.  Priorities compare against p(d):
    intermediates must outrank the ignored neighbor.

    In the paper's Fig. 2, A can ignore neighbor D because every
    A → D → C path (e.g. A --3--> D --6--> C) is replaced by an
    A → B → C path (e.g. A --4--> B --5--> C).
    """
    if not eg.has_node(u):
        raise NodeNotFoundError(u)
    if not eg.has_node(d):
        raise NodeNotFoundError(d)
    labels_first = sorted(eg.labels(u, d))
    d_priority = priorities[d] if priorities is not None else None
    for v in sorted(eg.neighbors(d), key=repr):
        if v == u:
            continue
        labels_out = sorted(eg.labels(d, v))
        for i in labels_first:
            for j in labels_out:
                if i > j:
                    continue
                if not _replacement_exists(
                    eg,
                    u,
                    v,
                    first_label=i,
                    last_label=j,
                    forbidden_nodes=set(),
                    forbidden_links={frozenset((u, d))},
                    min_intermediate_priority=d_priority,
                    priorities=priorities,
                    max_intermediates=max_intermediates,
                ):
                    return False
    return True


def trim_nodes(
    eg: EvolvingGraph,
    priorities: Optional[Dict[Node, float]] = None,
    max_intermediates: Optional[int] = None,
) -> Tuple[EvolvingGraph, List[Node]]:
    """Iteratively remove trimmable nodes, lowest priority first.

    Returns the trimmed evolving graph and the removal order.  With
    distinct priorities the process is deterministic and circular
    replacement is impossible: a node is only removed when its
    replacement paths run through strictly higher-priority survivors.
    """
    if priorities is None:
        priorities = id_priority(eg)
    result = eg.copy()
    removed: List[Node] = []
    changed = True
    while changed:
        changed = False
        candidates = sorted(result.nodes(), key=lambda n: (priorities[n], repr(n)))
        for node in candidates:
            if not result.neighbors(node):
                continue
            if node_trimmable(result, node, priorities, max_intermediates):
                result.remove_node(node)
                removed.append(node)
                changed = True
                break
    return result, removed


def ignorable_links(
    eg: EvolvingGraph,
    priorities: Optional[Dict[Node, float]] = None,
    max_intermediates: Optional[int] = None,
) -> List[Tuple[Node, Node]]:
    """All directed (u, d) pairs where u may ignore neighbor d."""
    if priorities is None:
        priorities = id_priority(eg)
    result: List[Tuple[Node, Node]] = []
    for u in sorted(eg.nodes(), key=repr):
        for d in sorted(eg.neighbors(u), key=repr):
            if link_ignorable(eg, u, d, priorities, max_intermediates):
                result.append((u, d))
    return result
