"""Localized topology control on unit disk graphs (Sec. III-A, [10]).

Static trimming "is usually conducted through topology control":
localized processes that drop links from a UDG using only neighbor
locations (or neighbor connectivity), keeping the topology sparse while
preserving connectivity.  Sparsity reduces bandwidth contention in
simultaneous wireless transmissions.

Implemented trimmers — each computable by every node from purely local
information:

* **Gabriel graph** — keep edge (u, v) iff the disk with diameter uv is
  empty; connectivity-preserving, planar, contains the MST.
* **Relative neighborhood graph (RNG)** — keep (u, v) iff no witness w
  is closer to both endpoints; a subgraph of the Gabriel graph, still
  connected and MST-containing.
* **XTC** — Wattenhofer's ranking-based trimming that needs no
  positions at all, only neighbor orderings by link quality/distance.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.graphs.graph import Graph
from repro.graphs.unit_disk import POSITION_ATTR, euclidean, positions_of
from repro.observability.instrument import timed

Node = Hashable
Point = Tuple[float, float]


def _positions(graph: Graph, positions: Optional[Mapping[Node, Point]]) -> Mapping[Node, Point]:
    if positions is not None:
        return positions
    return positions_of(graph)


@timed("repro.trimming.gabriel_graph")
def gabriel_graph(
    graph: Graph, positions: Optional[Mapping[Node, Point]] = None
) -> Graph:
    """The Gabriel subgraph: (u, v) survives iff no common neighbor lies
    inside the closed disk whose diameter is the segment uv.

    Localized: node u decides about (u, v) from the positions of its
    1-hop neighbors only (any blocking witness w is within range of
    both endpoints, hence a neighbor of u in the UDG).
    """
    pos = _positions(graph, positions)
    trimmed = Graph()
    for node in graph.nodes():
        trimmed.add_node(node, **{POSITION_ATTR: pos[node]})
    for u, v in graph.edges():
        mid = ((pos[u][0] + pos[v][0]) / 2.0, (pos[u][1] + pos[v][1]) / 2.0)
        radius = euclidean(pos[u], pos[v]) / 2.0
        witnesses = graph.neighbors(u) & graph.neighbors(v)
        blocked = any(
            euclidean(pos[w], mid) < radius - 1e-12 for w in witnesses
        )
        if not blocked:
            trimmed.add_edge(u, v)
    return trimmed


@timed("repro.trimming.rng")
def relative_neighborhood_graph(
    graph: Graph, positions: Optional[Mapping[Node, Point]] = None
) -> Graph:
    """The RNG subgraph: (u, v) survives iff no witness w has
    max(d(u, w), d(v, w)) < d(u, v).

    RNG ⊆ Gabriel ⊆ UDG, and the RNG still contains the Euclidean MST,
    so connectivity is preserved (property-tested).
    """
    pos = _positions(graph, positions)
    trimmed = Graph()
    for node in graph.nodes():
        trimmed.add_node(node, **{POSITION_ATTR: pos[node]})
    for u, v in graph.edges():
        duv = euclidean(pos[u], pos[v])
        witnesses = graph.neighbors(u) & graph.neighbors(v)
        blocked = any(
            max(euclidean(pos[u], pos[w]), euclidean(pos[v], pos[w])) < duv - 1e-12
            for w in witnesses
        )
        if not blocked:
            trimmed.add_edge(u, v)
    return trimmed


@timed("repro.trimming.xtc")
def xtc(
    graph: Graph,
    rank: Optional[Callable[[Node, Node], float]] = None,
    positions: Optional[Mapping[Node, Point]] = None,
) -> Graph:
    """XTC topology control: position-free trimming by link ranking.

    Each node u orders its neighbors by ``rank(u, v)`` (default:
    Euclidean distance with an ID tie-break, the canonical
    instantiation).  Edge (u, v) is dropped iff some common neighbor w
    is better-ranked than v from *both* u's and v's point of view —
    decided purely from exchanged neighbor orderings.  The result is
    symmetric, connected whenever the input is, and ⊆ RNG for distance
    ranks in general position.
    """
    if rank is None:
        pos = _positions(graph, positions)

        def rank(u: Node, v: Node) -> float:
            return euclidean(pos[u], pos[v])

    def order(u: Node, v: Node) -> Tuple[float, str]:
        return (rank(u, v), repr(sorted((repr(u), repr(v)))))

    trimmed = Graph()
    for node in graph.nodes():
        attrs = {}
        stored = graph.node_attr(node, POSITION_ATTR)
        if stored is not None:
            attrs[POSITION_ATTR] = stored
        trimmed.add_node(node, **attrs)
    for u, v in graph.edges():
        witnesses = graph.neighbors(u) & graph.neighbors(v)
        # order(v, u) == order(u, v) because the rank is symmetric.
        blocked = any(
            order(u, w) < order(u, v) and order(v, w) < order(u, v)
            for w in witnesses
        )
        if not blocked:
            trimmed.add_edge(u, v)
    return trimmed


def stretch_factor(
    original: Graph,
    trimmed: Graph,
    positions: Optional[Mapping[Node, Point]] = None,
    sample_pairs: Optional[int] = None,
    rng=None,
) -> float:
    """Worst-case Euclidean-length stretch of trimmed vs original paths.

    For each (sampled) connected pair, the ratio of weighted shortest
    path lengths trimmed/original; the maximum over pairs.  Sec. III-A:
    "subgraph distances closely resemble the distances in the original
    graph".
    """
    from repro.graphs.traversal import dijkstra

    pos = _positions(original, positions)

    def weight(graph: Graph) -> Callable[[Node, Node], float]:
        def w(u: Node, v: Node) -> float:
            return euclidean(pos[u], pos[v])

        return w

    nodes = sorted(original.nodes(), key=repr)
    if sample_pairs is not None and rng is not None and len(nodes) > 1:
        sources = [nodes[int(rng.integers(len(nodes)))] for _ in range(sample_pairs)]
    else:
        sources = nodes

    worst = 1.0
    for source in sources:
        base, _ = dijkstra(original, source, weight=weight(original))
        new, _ = dijkstra(trimmed, source, weight=weight(trimmed))
        for target, base_distance in base.items():
            if target == source or base_distance == 0:
                continue
            if target not in new:
                return math.inf
            worst = max(worst, new[target] / base_distance)
    return worst
