"""Shared fixtures: seeded RNGs and canonical workload graphs."""

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, grid_2d, random_connected_graph
from repro.graphs.unit_disk import random_unit_disk_graph
from repro.graphs.traversal import connected_components


@pytest.fixture
def rng():
    """A fresh, deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_connected_graph(rng):
    """A random connected graph with ~20 nodes."""
    return random_connected_graph(20, 0.15, rng)


@pytest.fixture
def medium_udg(rng):
    """The giant component of a 120-node unit disk graph."""
    graph = random_unit_disk_graph(120, 10.0, 10.0, 1.8, rng)
    return graph.subgraph(connected_components(graph)[0])


@pytest.fixture
def grid5():
    return grid_2d(5, 5)
