"""Tier-1 wiring for the CSR perf benchmark (benchmarks/bench_perf_csr.py).

Runs the same harness as the committed ``BENCH_perf-csr.json`` feed at
toy scale against a temp directory: validates the emitted document
against the ``repro.bench/v1`` schema, checks the BENCH feed is
byte-identical to its sibling, and relies on the harness's built-in
assertion that every CSR kernel output equals its dict-of-sets
reference (the run raises otherwise).  No speedup floor at toy scale —
that is the full run's job — only schema and equivalence.
"""

import json
import os
import sys

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import bench_perf_csr  # noqa: E402  (benchmarks/bench_perf_csr.py)
from repro.observability import BENCH_SCHEMA, validate_bench_report  # noqa: E402


def test_perf_csr_toy_run_validates_schema_and_equivalence(tmp_path):
    result = bench_perf_csr.run(
        sizes=(150,), repeats=1, out_dir=str(tmp_path), top_dir=str(tmp_path)
    )
    assert result.experiment == "perf-csr"
    document = json.loads(open(result.json_path).read())
    assert document["schema"] == BENCH_SCHEMA
    assert validate_bench_report(document) == []
    assert open(result.bench_path).read() == open(result.json_path).read()
    kernels = {row[3] for row in result.rows}
    assert set(bench_perf_csr.TARGET_KERNELS) <= kernels
    # Median-of-k spread keys land in the timings map.
    assert any(key.endswith("_median_s") for key in document["timings"])
    assert any(key.endswith("_min_s") for key in document["timings"])
    assert any(key.startswith("freeze_") for key in document["timings"])


def test_committed_perf_csr_feed_is_valid_and_meets_target():
    top = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(top, "BENCH_perf-csr.json")
    document = json.loads(open(path).read())
    assert validate_bench_report(document) == []
    header = document["header"]
    kernel_col = header.index("kernel")
    speedup_col = header.index("speedup")
    n_col = header.index("requested n")
    largest = max(row[n_col] for row in document["rows"])
    for row in document["rows"]:
        if row[n_col] == largest and row[kernel_col] in bench_perf_csr.TARGET_KERNELS:
            assert row[speedup_col] >= bench_perf_csr.TARGET_SPEEDUP
