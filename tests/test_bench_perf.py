"""Tier-1 wiring for the perf benchmarks (bench_perf_csr /
bench_perf_temporal / bench_perf_labeling).

Runs the same harnesses as the committed ``BENCH_perf-*.json`` feeds at
toy scale against a temp directory: validates the emitted documents
against the ``repro.bench/v1`` schema, checks each BENCH feed is
byte-identical to its sibling, and relies on the harnesses' built-in
assertion that every fast-path output equals its pure-Python reference
(the run raises otherwise).  No speedup floor at toy scale — that is
the full run's job — only schema and equivalence.

The trajectory tests at the bottom re-time the fast-path kernels at
the smallest committed size and compare against the committed feed
through the configurable perf gate
(:mod:`repro.observability.regression`): warn by default (timings on
shared dev boxes are too noisy to hard-gate), fail when the ``CI`` env
var is set or ``REPRO_PERF_GATE=fail``, silent with
``REPRO_PERF_GATE=off``.  ``REPRO_PERF_GATE_THRESHOLD`` overrides the
3x slowdown factor.
"""

import json
import os
import sys

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import bench_perf_csr  # noqa: E402  (benchmarks/bench_perf_csr.py)
import bench_perf_labeling  # noqa: E402
import bench_perf_runtime  # noqa: E402
import bench_perf_scale  # noqa: E402
import bench_perf_temporal  # noqa: E402
import bench_serving  # noqa: E402
import bench_serving_write  # noqa: E402
from _util import time_repeated  # noqa: E402
from repro.observability import BENCH_SCHEMA, validate_bench_report  # noqa: E402
from repro.observability import regression  # noqa: E402

TOP = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Default slowdown factor for the trajectory gate (see
#: ``REPRO_PERF_GATE_THRESHOLD`` to override).
TRAJECTORY_SLOWDOWN = 3.0


def test_perf_csr_toy_run_validates_schema_and_equivalence(tmp_path):
    result = bench_perf_csr.run(
        sizes=(150,), repeats=1, out_dir=str(tmp_path), top_dir=str(tmp_path)
    )
    assert result.experiment == "perf-csr"
    document = json.loads(open(result.json_path).read())
    assert document["schema"] == BENCH_SCHEMA
    assert validate_bench_report(document) == []
    assert open(result.bench_path).read() == open(result.json_path).read()
    kernels = {row[3] for row in result.rows}
    assert set(bench_perf_csr.TARGET_KERNELS) <= kernels
    # Median-of-k spread keys land in the timings map.
    assert any(key.endswith("_median_s") for key in document["timings"])
    assert any(key.endswith("_min_s") for key in document["timings"])
    assert any(key.startswith("freeze_") for key in document["timings"])


def test_committed_perf_csr_feed_is_valid_and_meets_target():
    path = os.path.join(TOP, "BENCH_perf-csr.json")
    document = json.loads(open(path).read())
    assert validate_bench_report(document) == []
    header = document["header"]
    kernel_col = header.index("kernel")
    speedup_col = header.index("speedup")
    n_col = header.index("requested n")
    largest = max(row[n_col] for row in document["rows"])
    for row in document["rows"]:
        if row[n_col] == largest and row[kernel_col] in bench_perf_csr.TARGET_KERNELS:
            assert row[speedup_col] >= bench_perf_csr.TARGET_SPEEDUP


def test_perf_temporal_toy_run_validates_schema_and_equivalence(tmp_path):
    result = bench_perf_temporal.run(
        sizes=((30, 40, 400, 6),),
        repeats=1,
        out_dir=str(tmp_path),
        top_dir=str(tmp_path),
    )
    assert result.experiment == "perf-temporal"
    document = json.loads(open(result.json_path).read())
    assert document["schema"] == BENCH_SCHEMA
    assert validate_bench_report(document) == []
    assert open(result.bench_path).read() == open(result.json_path).read()
    kernels = {row[3] for row in result.rows}
    assert set(bench_perf_temporal.TARGET_KERNELS) <= kernels
    assert any(key.endswith("_frozen_median_s") for key in document["timings"])
    assert any(key.startswith("freeze_") for key in document["timings"])


def test_committed_perf_temporal_feed_is_valid_and_meets_target():
    path = os.path.join(TOP, "BENCH_perf-temporal.json")
    document = json.loads(open(path).read())
    assert validate_bench_report(document) == []
    header = document["header"]
    kernel_col = header.index("kernel")
    speedup_col = header.index("speedup")
    n_col = header.index("n")
    largest = max(row[n_col] for row in document["rows"])
    for row in document["rows"]:
        if (
            row[n_col] == largest
            and row[kernel_col] in bench_perf_temporal.TARGET_KERNELS
        ):
            assert row[speedup_col] >= bench_perf_temporal.TARGET_SPEEDUP


def test_perf_labeling_toy_run_validates_schema_and_equivalence(tmp_path):
    result = bench_perf_labeling.run(
        sizes=(bench_perf_labeling.TOY_SIZE,),
        repeats=1,
        out_dir=str(tmp_path),
        top_dir=str(tmp_path),
    )
    assert result.experiment == "perf-labeling"
    document = json.loads(open(result.json_path).read())
    assert document["schema"] == BENCH_SCHEMA
    assert validate_bench_report(document) == []
    assert open(result.bench_path).read() == open(result.json_path).read()
    kernels = {row[1] for row in result.rows}
    assert set(bench_perf_labeling.TARGET_SPEEDUPS) <= kernels
    assert any(key.endswith("_frozen_median_s") for key in document["timings"])
    assert any(key.startswith("freeze_") for key in document["timings"])


def test_committed_perf_labeling_feed_is_valid_and_meets_targets():
    path = os.path.join(TOP, "BENCH_perf-labeling.json")
    document = json.loads(open(path).read())
    assert validate_bench_report(document) == []
    header = document["header"]
    kernel_col = header.index("kernel")
    speedup_col = header.index("speedup")
    n_col = header.index("n")
    largest = max(row[n_col] for row in document["rows"])
    floors = bench_perf_labeling.TARGET_SPEEDUPS
    seen = set()
    for row in document["rows"]:
        floor = floors.get(row[kernel_col])
        if row[n_col] == largest and floor is not None:
            assert row[speedup_col] >= floor, row
            seen.add(row[kernel_col])
    assert seen == set(floors)  # every gated kernel appears at the top size


def test_perf_runtime_toy_run_validates_schema_and_equivalence(tmp_path):
    """Tiny instance of the vector-plane harness: every protocol runs on
    both engines and the harness asserts bit-exact state plus equal
    round/message accounting before its timing loop (no speedup floor
    at toy scale)."""
    result = bench_perf_runtime.run(
        sizes=(bench_perf_runtime.TOY_SIZE,),
        repeats=1,
        out_dir=str(tmp_path),
        top_dir=str(tmp_path),
    )
    assert result.experiment == "perf-runtime"
    document = json.loads(open(result.json_path).read())
    assert document["schema"] == BENCH_SCHEMA
    assert validate_bench_report(document) == []
    assert open(result.bench_path).read() == open(result.json_path).read()
    kernels = {row[1] for row in result.rows}
    assert set(bench_perf_runtime.TARGET_SPEEDUPS) <= kernels
    assert "mis" in kernels
    assert any(key.endswith("_vector_median_s") for key in document["timings"])
    assert any(key.endswith("_ref_median_s") for key in document["timings"])
    assert any(key.startswith("freeze_") for key in document["timings"])


def test_committed_perf_runtime_feed_is_valid_and_meets_targets():
    path = os.path.join(TOP, "BENCH_perf-runtime.json")
    document = json.loads(open(path).read())
    assert validate_bench_report(document) == []
    header = document["header"]
    kernel_col = header.index("kernel")
    speedup_col = header.index("speedup")
    n_col = header.index("n")
    # The tiers pair a random-graph n with a cube dimension, so each
    # kernel is gated at its own largest n (the cube's is a power of 2).
    floors = bench_perf_runtime.TARGET_SPEEDUPS
    largest = {
        kernel: max(
            row[n_col]
            for row in document["rows"]
            if row[kernel_col] == kernel
        )
        for kernel in floors
    }
    seen = set()
    for row in document["rows"]:
        floor = floors.get(row[kernel_col])
        if floor is not None and row[n_col] == largest[row[kernel_col]]:
            assert row[speedup_col] >= floor, row
            seen.add(row[kernel_col])
    assert seen == set(floors)  # every gated kernel appears at its top size


def test_perf_scale_toy_run_validates_schema_and_tiers(tmp_path):
    result = bench_perf_scale.run(
        scale_n=3000,
        verify_n=500,
        memory_budget=4 * 1024 * 1024,
        ceiling_mib=512.0,
        jobs=2,
        tasks=3,
        out_dir=str(tmp_path),
        top_dir=str(tmp_path),
    )
    assert result.experiment == "perf-scale"
    document = json.loads(open(result.json_path).read())
    assert document["schema"] == BENCH_SCHEMA
    assert validate_bench_report(document) == []
    assert open(result.bench_path).read() == open(result.json_path).read()
    tiers = {row[0] for row in result.rows}
    assert {"verify", "scale", "sweep"} <= tiers
    # the shm sweep and its pickle baseline both report a wall time
    assert "sweep_shm_s" in document["timings"]
    assert "sweep_pickle_s" in document["timings"]
    # every scale row stayed under the asserted ceiling
    header = document["header"]
    peak_col = header.index("peak MiB")
    ceiling_col = header.index("ceiling MiB")
    for row in document["rows"]:
        if row[0] == "scale":
            assert float(row[peak_col]) <= float(row[ceiling_col])


def test_committed_perf_scale_feed_has_million_node_rows():
    path = os.path.join(TOP, "BENCH_perf-scale.json")
    document = json.loads(open(path).read())
    assert validate_bench_report(document) == []
    header = document["header"]
    n_col = header.index("n")
    peak_col = header.index("peak MiB")
    ceiling_col = header.index("ceiling MiB")
    scale_rows = [row for row in document["rows"] if row[0] == "scale"]
    assert scale_rows, "committed feed must carry the scale tier"
    assert max(int(row[n_col]) for row in scale_rows) >= 1_000_000
    for row in scale_rows:
        assert float(row[peak_col]) <= float(row[ceiling_col]), row
    # the bit-exactness tier ran before any timing
    assert any(row[0] == "verify" for row in document["rows"])
    # shm sweep beat the per-task pickle baseline
    timings = document["timings"]
    assert timings["sweep_shm_s"] <= timings["sweep_pickle_s"]


def test_serving_toy_run_validates_schema_and_equivalence(tmp_path):
    """Tiny instance of the mixed mutate/query stream: both stacks run,
    answer equality and zero steady-state refreezes asserted inside
    ``run`` itself (no speedup floor at toy scale)."""
    result = bench_serving.run(
        sizes=(80,),
        epochs=2,
        mutations=2,
        repeats=1,
        threshold=16,
        out_dir=str(tmp_path),
        top_dir=str(tmp_path),
    )
    assert result.experiment == "serving"
    document = json.loads(open(result.json_path).read())
    assert document["schema"] == BENCH_SCHEMA
    assert validate_bench_report(document) == []
    assert open(result.bench_path).read() == open(result.json_path).read()
    assert any(
        key.startswith("serving_stream_") and key.endswith("_median_s")
        for key in document["timings"]
    )
    assert any(
        key.startswith("baseline_stream_") and key.endswith("_median_s")
        for key in document["timings"]
    )
    # The registry snapshot rides along: coalescing actually happened.
    assert "coalesce ratio" in document["notes"]


def test_committed_serving_feed_is_valid_and_meets_target():
    path = os.path.join(TOP, "BENCH_serving.json")
    document = json.loads(open(path).read())
    assert validate_bench_report(document) == []
    header = document["header"]
    speedup_col = header.index("speedup")
    n_col = header.index("n")
    largest = max(row[n_col] for row in document["rows"])
    for row in document["rows"]:
        if row[n_col] == largest:
            assert row[speedup_col] >= bench_serving.TARGET_SPEEDUP, row
    # Zero refreezes during the serving runs is asserted by the harness
    # before emission; the note records the structural economics.
    assert "zero repro.cache.frozen events" in document["notes"]


def test_serving_write_toy_run_validates_schema_and_equivalence(tmp_path):
    """Tiny instance of the mutation-heavy write stream: reference
    verification, per-edge vs batched answer equality, and zero
    steady-state refreezes asserted inside ``run`` itself (no speedup
    floor at toy scale).  Runs under a fresh global registry so the
    no-refreeze-series assertion on the emitted feed is about *this*
    harness, not whatever earlier tests recorded in-process."""
    from repro.observability.metrics import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry("test-serving-write"))
    try:
        result = bench_serving_write.run(
            sizes=(80,),
            epochs=2,
            bursts=2,
            repeats=1,
            threshold=16,
            out_dir=str(tmp_path),
            top_dir=str(tmp_path),
        )
    finally:
        set_registry(previous)
    assert result.experiment == "serving-write"
    document = json.loads(open(result.json_path).read())
    assert document["schema"] == BENCH_SCHEMA
    assert validate_bench_report(document) == []
    assert open(result.bench_path).read() == open(result.json_path).read()
    assert any(
        key.startswith("batched_stream_") and key.endswith("_median_s")
        for key in document["timings"]
    )
    assert any(
        key.startswith("per_edge_stream_") and key.endswith("_median_s")
        for key in document["timings"]
    )
    assert "verified against the reference kernels" in document["notes"]
    # Satellite invariant: the write-path feed carries no frozen-cache
    # refreeze series — the reference pass runs before the timed phase
    # and the serving stacks never touch the refreeze path.
    assert not any(
        "cache.frozen" in key for key in document.get("metrics", {})
    )


def test_committed_serving_write_feed_is_valid_and_meets_target():
    path = os.path.join(TOP, "BENCH_serving-write.json")
    document = json.loads(open(path).read())
    assert validate_bench_report(document) == []
    header = document["header"]
    speedup_col = header.index("speedup")
    n_col = header.index("n")
    largest = max(row[n_col] for row in document["rows"])
    for row in document["rows"]:
        if row[n_col] == largest:
            assert (
                row[speedup_col] >= bench_serving_write.TARGET_WRITE_SPEEDUP
            ), row
    assert "Zero repro.cache.frozen events" in document["notes"]


def test_committed_serving_feed_has_no_refreeze_leak():
    """The satellite-1 pin: the committed serving feed must not carry
    the baseline's refreeze storm in its metrics snapshot — the
    refreeze-per-generation phase runs in a scratch registry, and the
    notes record where those events went."""
    for feed in ("BENCH_serving.json", "BENCH_serving-write.json"):
        document = json.loads(open(os.path.join(TOP, feed)).read())
        refreeze_series = [
            key
            for key, value in document.get("metrics", {}).items()
            if "cache.frozen" in key or "refreeze" in str(value)
        ]
        assert refreeze_series == [], (feed, refreeze_series)
    notes = json.loads(
        open(os.path.join(TOP, "BENCH_serving.json")).read()
    )["notes"]
    assert "scratch registry" in notes


# ----------------------------------------------------------------------
# perf-trajectory guard (configurable gate; warn by default, fail in CI)
# ----------------------------------------------------------------------
def _committed_timings(feed_name):
    path = os.path.join(TOP, feed_name)
    return json.loads(open(path).read())["timings"]


def _flag_regression(kernel, committed_s, current_s):
    threshold = regression.gate_threshold(default=TRAJECTORY_SLOWDOWN)
    if committed_s > 0 and current_s > threshold * committed_s:
        regression.apply_gate(
            [
                regression.Regression(
                    experiment="trajectory",
                    key=kernel,
                    baseline_s=committed_s,
                    current_s=current_s,
                    threshold=threshold,
                )
            ]
        )


def test_perf_trajectory_csr_warn_only():
    """Re-time the CSR kernels at the smallest committed size; warn on >3x."""
    import numpy as np

    from repro.datasets.gnutella import gnutella_largest_scc

    timings = _committed_timings("BENCH_perf-csr.json")
    size = 600  # smallest committed size in bench_perf_csr's full run
    graph = gnutella_largest_scc(size, np.random.default_rng(size))
    fg = graph.frozen()
    for name, _ref_fn, csr_fn in bench_perf_csr._kernel_pairs(graph, fg):
        key = f"{name}_n{size}_csr_median_s"
        if key not in timings:
            continue
        _, timing = time_repeated(csr_fn, repeats=1, warmup=1)
        _flag_regression(f"{name} (csr, n={size})", timings[key], timing.median_s)


def test_perf_trajectory_temporal_warn_only():
    """Re-time the frozen temporal kernels at the smallest committed size."""
    n, horizon, contacts, messages = bench_perf_temporal.DEFAULT_SIZES[0]
    timings = _committed_timings("BENCH_perf-temporal.json")
    eg = bench_perf_temporal.temporal_workload(n, horizon, contacts, seed=n)
    specs = bench_perf_temporal.message_specs(n, messages, seed=n)
    for name, _ref_fn, frozen_fn in bench_perf_temporal._kernel_pairs(eg, specs):
        key = f"{name}_n{n}_frozen_median_s"
        if key not in timings:
            continue
        _, timing = time_repeated(frozen_fn, repeats=1, warmup=1)
        _flag_regression(f"{name} (frozen, n={n})", timings[key], timing.median_s)


def test_perf_trajectory_labeling_warn_only():
    """Re-time the frozen labeling/routing kernels at the smallest
    committed size; warn (never fail) on a >3x slowdown."""
    n, side, n_pairs, n_landmarks = bench_perf_labeling.DEFAULT_SIZES[0]
    timings = _committed_timings("BENCH_perf-labeling.json")
    workloads = bench_perf_labeling.build_workloads(n, side, n_pairs, n_landmarks)
    for name, _ref_fn, frozen_fn, _check in bench_perf_labeling._kernel_pairs(
        workloads
    ):
        key = f"{name}_n{n}_frozen_median_s"
        if key not in timings:
            continue
        _, timing = time_repeated(frozen_fn, repeats=1, warmup=1)
        _flag_regression(f"{name} (frozen, n={n})", timings[key], timing.median_s)


def test_perf_trajectory_runtime_warn_only():
    """Re-time the vector-plane kernels at the smallest committed tier;
    warn (never fail) on a >3x slowdown vs the committed median."""
    from repro.graphs.hypercube import binary_hypercube
    from repro.runtime.vector import hypercube_frozen

    n, dimension = bench_perf_runtime.DEFAULT_SIZES[0]
    timings = _committed_timings("BENCH_perf-runtime.json")
    graph, destination, stale = bench_perf_runtime.reversal_workload(n)
    fg = graph.frozen()
    faults = bench_perf_runtime.safety_workload(dimension)
    cube = binary_hypercube(dimension)
    cube_fg = hypercube_frozen(dimension)
    runners = [
        ("link-reversal", n,
         bench_perf_runtime._reversal_runners(graph, fg, destination, stale)),
        ("safety-levels", 1 << dimension,
         bench_perf_runtime._safety_runners(cube, cube_fg, dimension, faults)),
        ("mis", n, bench_perf_runtime._mis_runners(graph, fg)),
    ]
    for name, size_n, (_scalar_run, vector_run, _check) in runners:
        key = f"{name}_n{size_n}_vector_median_s"
        if key not in timings:
            continue
        _, timing = time_repeated(vector_run, repeats=1, warmup=1)
        _flag_regression(
            f"{name} (vector, n={size_n})", timings[key], timing.median_s
        )


def test_perf_trajectory_serving_warn_only():
    """Re-run the serving stack's mixed stream at the smallest committed
    size; warn (never fail) on a >3x slowdown vs the committed median."""
    from repro.labeling.landmarks import select_landmarks

    timings = _committed_timings("BENCH_serving.json")
    n = 500  # smallest committed size in bench_serving's full run
    key = f"serving_stream_n{n}_median_s"
    if key not in timings:
        return
    edges, script = bench_serving.build_workload(n, 4.0 / n, 6, 4, n)
    landmarks = select_landmarks(bench_serving.make_graph(edges), 4)
    _, timing = time_repeated(
        lambda: bench_serving.run_serving(edges, script, landmarks, 64),
        repeats=1,
        warmup=1,
    )
    _flag_regression(f"serving stream (n={n})", timings[key], timing.median_s)


def test_perf_trajectory_serving_write_warn_only():
    """Re-run the batched write stream at the smallest committed size;
    warn (never fail) on a >3x slowdown vs the committed median."""
    from repro.labeling.landmarks import select_landmarks

    timings = _committed_timings("BENCH_serving-write.json")
    n = 500  # smallest committed size in bench_serving_write's full run
    key = f"batched_stream_n{n}_median_s"
    if key not in timings:
        return
    edges, script = bench_serving_write.build_write_workload(
        n, 4.0 / n, 4, 16, n
    )
    landmarks = select_landmarks(bench_serving_write.make_graph(edges), 4)
    bench_serving_write.run_batched(edges, script, landmarks, 64)  # warmup
    _, seconds = bench_serving_write.run_batched(
        edges, script, landmarks, 64
    )
    _flag_regression(f"batched write stream (n={n})", timings[key], seconds)
