"""Tier-1 wiring for the benchmark smoke harness.

Runs one tiny instance of every figure benchmark (benchmarks/smoke.py)
with tracing enabled, against a temp directory, and checks the emitted
JSON validates against the ``repro.bench/v1`` schema — so a schema or
instrumentation regression fails the plain test suite, not just the
(slower) benchmark pass.
"""

import json
import os
import sys

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import smoke  # noqa: E402  (benchmarks/smoke.py)
from repro.observability import BENCH_SCHEMA, validate_bench_report  # noqa: E402


def test_smoke_runs_every_figure_and_validates(tmp_path):
    results = smoke.run_all(out_dir=str(tmp_path), top_dir=str(tmp_path))
    assert set(results) == set(smoke.SMOKE_RUNNERS)
    # Every figure of the paper, the DTN application table, the chaos
    # degradation sweep, and the million-node tier mechanics are covered.
    assert {f"fig{i}" for i in range(1, 10)} | {
        "dtn",
        "faults",
        "perf-runtime",
        "scale",
        "serving",
        "serving-write",
    } <= set(results)
    # The scale smoke must have exercised the sharded tier with its
    # memory ceiling intact (the runner raises past the ceiling).
    scale_rows = results["scale"].rows
    assert any(row[0] == "scale" for row in scale_rows)
    assert any(row[0] == "verify" for row in scale_rows)
    for name, result in results.items():
        assert os.path.dirname(result.json_path) == str(tmp_path)
        document = json.loads(open(result.json_path).read())
        assert document["schema"] == BENCH_SCHEMA
        assert validate_bench_report(document) == []
        # The BENCH_* perf-trajectory feed is byte-identical to the sibling.
        assert open(result.bench_path).read() == open(result.json_path).read()


def test_smoke_artifacts_are_atomic_no_leftover_temp_files(tmp_path):
    smoke.run_all(out_dir=str(tmp_path), top_dir=str(tmp_path))
    assert not [name for name in os.listdir(tmp_path) if name.endswith(".tmp")]
