"""Contact traces and the edge-Markovian process (Sec. II-B)."""

import numpy as np
import pytest

from repro.temporal.contacts import (
    ContactRecord,
    ContactTrace,
    fit_exponential,
    generate_exponential_trace,
)
from repro.temporal.edge_markovian import (
    EdgeMarkovianProcess,
    measure_flooding_times,
)


class TestContactRecords:
    def test_duration(self):
        r = ContactRecord("a", "b", 1.0, 3.5)
        assert r.duration == 2.5
        assert r.pair == frozenset({"a", "b"})

    def test_invalid_records(self):
        with pytest.raises(ValueError):
            ContactRecord("a", "a", 0, 1)
        with pytest.raises(ValueError):
            ContactRecord("a", "b", 2, 2)

    def test_trace_accumulates(self):
        trace = ContactTrace()
        trace.add_contact("a", "b", 0, 1)
        trace.add_contact("b", "c", 2, 3)
        assert trace.num_contacts == 2
        assert trace.nodes == {"a", "b", "c"}
        assert trace.end_time == 3

    def test_inter_contact_times_per_pair(self):
        trace = ContactTrace()
        trace.add_contact("a", "b", 0, 1)
        trace.add_contact("a", "b", 4, 5)
        trace.add_contact("a", "c", 2, 3)  # different pair: no gap yet
        gaps = trace.inter_contact_times()
        assert gaps == [3.0]

    def test_contact_durations(self):
        trace = ContactTrace()
        trace.add_contact("a", "b", 0, 2)
        trace.add_contact("a", "b", 5, 6)
        assert sorted(trace.contact_durations()) == [1.0, 2.0]

    def test_pair_counts(self):
        trace = ContactTrace()
        trace.add_contact("a", "b", 0, 1)
        trace.add_contact("a", "b", 2, 3)
        trace.add_contact("b", "c", 0, 1)
        counts = trace.pair_contact_counts()
        assert counts[frozenset({"a", "b"})] == 2
        assert counts[frozenset({"b", "c"})] == 1

    def test_to_evolving_discretisation(self):
        trace = ContactTrace()
        trace.add_contact("a", "b", 0.5, 2.5)
        eg = trace.to_evolving(slot=1.0)
        assert eg.labels("a", "b") == frozenset({0, 1, 2})

    def test_to_evolving_bad_slot(self):
        trace = ContactTrace()
        trace.add_contact("a", "b", 0, 1)
        with pytest.raises(ValueError):
            trace.to_evolving(slot=0)


class TestExponentialFit:
    def test_rate_is_inverse_mean(self, rng):
        samples = rng.exponential(2.0, size=5000)
        fit = fit_exponential(samples.tolist())
        assert fit.rate == pytest.approx(0.5, rel=0.1)
        assert fit.mean == pytest.approx(2.0, rel=0.1)

    def test_ks_small_for_true_exponential(self, rng):
        samples = rng.exponential(1.0, size=5000)
        fit = fit_exponential(samples.tolist())
        assert fit.ks_distance < 0.05

    def test_ks_large_for_uniform(self, rng):
        samples = rng.uniform(0.9, 1.1, size=5000)
        fit = fit_exponential(samples.tolist())
        assert fit.ks_distance > 0.2

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0])

    def test_synthetic_trace_inter_contacts_exponential(self, rng):
        trace = generate_exponential_trace(
            list(range(10)), rate=0.3, duration_mean=0.1, end_time=200.0, rng=rng
        )
        fit = fit_exponential(trace.inter_contact_times())
        assert fit.ks_distance < 0.08


class TestEdgeMarkovian:
    def test_stationary_density(self, rng):
        process = EdgeMarkovianProcess(30, p=0.2, q=0.1, rng=rng)
        assert process.stationary_density == pytest.approx(1 / 3)

    def test_density_stays_near_stationary(self, rng):
        process = EdgeMarkovianProcess(60, p=0.3, q=0.1, rng=rng)
        densities = []
        for _ in range(50):
            process.step()
            densities.append(process.edge_density())
        mean_density = sum(densities) / len(densities)
        assert abs(mean_density - 0.25) < 0.05

    def test_frozen_process_rejected(self, rng):
        with pytest.raises(ValueError):
            EdgeMarkovianProcess(10, p=0.0, q=0.0, rng=rng)

    def test_p_one_q_one_alternates(self, rng):
        process = EdgeMarkovianProcess(10, p=1.0, q=1.0, rng=rng, initial_density=1.0)
        full = process.current_snapshot()
        assert full.num_edges == 45
        empty = process.step()
        assert empty.num_edges == 0
        assert process.step().num_edges == 45

    def test_generate_evolving(self, rng):
        process = EdgeMarkovianProcess(15, p=0.5, q=0.2, rng=rng)
        eg = process.generate(horizon=8)
        assert eg.horizon == 8
        assert eg.num_nodes == 15

    def test_flooding_faster_when_denser(self, rng):
        sparse = measure_flooding_times(40, p=0.9, q=0.02, trials=10, horizon=60, rng=rng)
        rng2 = np.random.default_rng(999)
        dense = measure_flooding_times(40, p=0.2, q=0.2, trials=10, horizon=60, rng=rng2)
        assert dense.completed == 10
        assert dense.mean_flooding_time is not None
        if sparse.mean_flooding_time is not None:
            assert dense.mean_flooding_time <= sparse.mean_flooding_time

    def test_measurement_fields(self, rng):
        m = measure_flooding_times(10, p=0.3, q=0.3, trials=3, horizon=30, rng=rng)
        assert m.n == 10 and m.trials == 3
        assert m.completed <= 3
