"""The core API: structures, property checks, the analyzer."""

import math

import numpy as np
import pytest

from repro.core.properties import (
    contains_spanning_tree,
    hop_stretch,
    preserves_completion_times,
    preserves_connectivity,
    preserves_hop_counts,
    preserves_time_i_connectivity,
)
from repro.core.structures import Strategy, Structure, StructureKind, StructureReport
from repro.core.uncover import StructureAnalyzer, layer, remap, trim
from repro.graphs.generators import barabasi_albert, path_graph, random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.unit_disk import random_unit_disk_graph
from repro.graphs.traversal import connected_components
from repro.mobility.community import random_profiles
from repro.temporal.evolving import EvolvingGraph, paper_fig2_evolving_graph


class TestProperties:
    def test_preserves_connectivity_positive(self):
        g = path_graph(5)
        assert preserves_connectivity(g, g.copy())

    def test_preserves_connectivity_negative(self):
        g = path_graph(5)
        cut = g.copy()
        cut.remove_edge(2, 3)
        assert not preserves_connectivity(g, cut)

    def test_preserves_connectivity_with_removed_nodes(self):
        g = path_graph(5)
        sub = g.subgraph({0, 1, 2})
        assert preserves_connectivity(g, sub)

    def test_contains_spanning_tree(self):
        g = Graph()
        g.add_edge("a", "b", weight=1)
        g.add_edge("b", "c", weight=1)
        g.add_edge("a", "c", weight=5)
        sub = g.copy()
        sub.remove_edge("a", "c")
        assert contains_spanning_tree(g, sub)
        sub2 = g.copy()
        sub2.remove_edge("a", "b")
        assert not contains_spanning_tree(g, sub2)

    def test_hop_stretch(self):
        g = Graph()
        for u, v in [(0, 1), (1, 2), (0, 2)]:
            g.add_edge(u, v)
        sub = g.copy()
        sub.remove_edge(0, 2)
        assert hop_stretch(g, sub) == 2.0

    def test_hop_stretch_inf_when_disconnected(self):
        g = path_graph(3)
        sub = g.copy()
        sub.remove_edge(0, 1)
        assert hop_stretch(g, sub) == math.inf

    def test_temporal_preservation_identity(self):
        eg = paper_fig2_evolving_graph()
        assert preserves_completion_times(eg, eg.copy())
        assert preserves_time_i_connectivity(eg, eg.copy(), 0)
        assert preserves_hop_counts(eg, eg.copy())

    def test_temporal_preservation_detects_degradation(self):
        eg = EvolvingGraph(horizon=6)
        eg.add_contact("a", "b", 1)
        eg.add_contact("a", "b", 5)
        worse = eg.copy()
        worse.remove_contact("a", "b", 1)
        assert not preserves_completion_times(eg, worse)


class TestStructures:
    def test_report_accumulates(self):
        report = StructureReport(network_summary="test")
        report.add(Structure("s1", StructureKind.LOGICAL, Strategy.MODEL))
        report.add(Structure("s2", StructureKind.PHYSICAL, Strategy.TRIMMING))
        assert len(report) == 2
        assert report.find("s1") is not None
        assert report.find("nope") is None
        assert report.names() == ["s1", "s2"]
        assert len(report.by_strategy(Strategy.TRIMMING)) == 1

    def test_summary_readable(self):
        report = StructureReport(network_summary="net")
        report.add(
            Structure(
                "x", StructureKind.LOGICAL, Strategy.MODEL, evidence={"k": 1}
            )
        )
        text = report.summary()
        assert "net" in text and "x" in text and "k: 1" in text


class TestTrimDispatch:
    def test_trim_evolving_auto(self):
        structure = trim(paper_fig2_evolving_graph())
        assert structure.strategy == Strategy.TRIMMING
        assert structure.payload.num_nodes <= 6

    def test_trim_positioned_auto_gabriel(self, medium_udg):
        structure = trim(medium_udg)
        assert structure.name == "gabriel-backbone"
        assert structure.evidence["edges_after"] < structure.evidence["edges_before"]

    def test_trim_plain_graph_auto_spanner(self, rng):
        g = random_connected_graph(30, 0.3, rng)
        structure = trim(g)
        assert "spanner" in structure.name

    def test_trim_explicit_spanner_t(self, rng):
        g = random_connected_graph(25, 0.3, rng)
        structure = trim(g, "spanner", t=2.0)
        assert structure.evidence["t"] == 2.0

    def test_trim_type_errors(self, rng):
        with pytest.raises(TypeError):
            trim(path_graph(4), "replacement-rule")
        with pytest.raises(TypeError):
            trim(paper_fig2_evolving_graph(), "gabriel")
        with pytest.raises(ValueError):
            trim(path_graph(4), "shrink-ray")


class TestLayerDispatch:
    def test_layer_nsf(self, rng):
        g = barabasi_albert(100, 2, rng)
        structure = layer(g, "nsf")
        assert structure.strategy == Strategy.LAYERING
        assert set(structure.payload) == set(g.nodes())

    def test_layer_link_reversal(self, rng):
        g = random_connected_graph(20, 0.15, rng)
        structure = layer(g, "link-reversal", destination=0)
        assert structure.payload.is_destination_oriented(0)

    def test_layer_link_reversal_needs_destination(self):
        with pytest.raises(ValueError):
            layer(path_graph(4), "link-reversal")

    def test_layer_unknown(self):
        with pytest.raises(ValueError):
            layer(path_graph(4), "lasagna")


class TestRemapDispatch:
    def test_remap_hyperbolic(self, rng):
        g = random_connected_graph(30, 0.12, rng)
        structure = remap(g, "hyperbolic")
        assert structure.strategy == Strategy.REMAPPING
        assert structure.payload.tau > 0

    def test_remap_feature_space(self, rng):
        profiles = random_profiles(20, (2, 2, 3), rng)
        structure = remap(Graph(), "feature-space", profiles=profiles, radices=(2, 2, 3))
        assert structure.payload.hypercube.num_nodes == 12

    def test_remap_feature_space_needs_args(self):
        with pytest.raises(ValueError):
            remap(Graph(), "feature-space")

    def test_remap_unknown(self):
        with pytest.raises(ValueError):
            remap(path_graph(3), "astral")


class TestAnalyzer:
    def test_static_analysis_has_model_entries(self, rng):
        g = random_connected_graph(25, 0.15, rng)
        report = StructureAnalyzer().analyze(g)
        assert report.find("graph-model") is not None
        assert report.find("degree-structure") is not None
        assert report.find("nsf-levels") is not None

    def test_positioned_graph_gets_gabriel(self, medium_udg):
        report = StructureAnalyzer().analyze(medium_udg)
        assert report.find("gabriel-backbone") is not None

    def test_evolving_analysis(self):
        report = StructureAnalyzer().analyze(paper_fig2_evolving_graph())
        assert report.find("temporal-connectivity") is not None
        assert report.find("trimmed-evolving-graph") is not None

    def test_interval_classification(self):
        from repro.graphs.interval import interval_graph

        g = interval_graph({"a": (0, 2), "b": (1, 3), "c": (2.5, 5)})
        report = StructureAnalyzer().analyze(g)
        model = report.find("graph-model")
        assert model.evidence["chordal"] is True
        assert model.evidence["interval"] is True
