"""FrozenGraph CSR kernels vs the dict-of-sets references.

The fast path is only allowed to change *cost*, never *output*: every
kernel must be exactly equal — including float results, which the CSR
side computes with the same python-int divisions as the references —
on random Erdős–Rényi and preferential-attachment graphs sized above
``FROZEN_MIN_NODES`` (so the routed entry points actually take the CSR
path).  Plus the snapshot-caching contract: one snapshot per topology
generation, invalidated by structural mutation only.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import FROZEN_MIN_NODES, FrozenGraph
from repro.graphs.generators import barabasi_albert, erdos_renyi
from repro.graphs.graph import DiGraph, Graph
from repro.graphs.metrics import (
    average_clustering,
    average_clustering_reference,
    closeness_centrality,
    closeness_centrality_reference,
    clustering_coefficient_reference,
)
from repro.graphs.traversal import (
    bfs_distances,
    bfs_distances_reference,
    connected_components,
    connected_components_reference,
)
from repro.layering.nsf import (
    local_lowest_degree_nodes_reference,
    nested_subgraphs,
    nsf_levels,
    nsf_levels_reference,
    peel_to_fraction,
)


# ----------------------------------------------------------------------
# strategies: random graphs big enough to engage the CSR routing
# ----------------------------------------------------------------------

@st.composite
def random_graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n = draw(st.integers(min_value=FROZEN_MIN_NODES, max_value=72))
    rng = np.random.default_rng(seed)
    if draw(st.booleans()):
        p = draw(st.floats(min_value=0.02, max_value=0.15))
        return erdos_renyi(n, p, rng)
    m = draw(st.integers(min_value=1, max_value=4))
    return barabasi_albert(n, m, rng)


# ----------------------------------------------------------------------
# kernel equivalence
# ----------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_bfs_distances_matches_reference(graph):
    fg = graph.frozen()
    for source in list(graph.nodes())[:5]:
        assert fg.bfs_distances(source) == bfs_distances_reference(graph, source)
        # The routed public entry point takes the CSR path here.
        assert bfs_distances(graph, source) == bfs_distances_reference(
            graph, source
        )


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_components_and_degrees_match_reference(graph):
    fg = graph.frozen()
    assert fg.connected_components() == connected_components_reference(graph)
    assert connected_components(graph) == connected_components_reference(graph)
    for i, node in enumerate(fg.node_list):
        assert int(fg.degrees[i]) == graph.degree(node)
        assert fg.degree(node) == graph.degree(node)


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_clustering_matches_reference_exactly(graph):
    fg = graph.frozen()
    values = fg.clustering_array()
    for i, node in enumerate(fg.node_list):
        assert values[i] == clustering_coefficient_reference(graph, node)
    assert fg.average_clustering() == average_clustering_reference(graph)
    assert average_clustering(graph) == average_clustering_reference(graph)


@settings(max_examples=20, deadline=None)
@given(random_graphs())
def test_closeness_matches_reference_exactly(graph):
    fg = graph.frozen()
    assert fg.closeness_centrality() == closeness_centrality_reference(graph)
    assert closeness_centrality(graph) == closeness_centrality_reference(graph)


@settings(max_examples=20, deadline=None)
@given(random_graphs())
def test_all_pairs_sums_match_reference(graph):
    fg = graph.frozen()
    sums = fg.all_pairs_distance_sums()
    for i, node in enumerate(fg.node_list):
        assert int(sums[i]) == sum(
            bfs_distances_reference(graph, node).values()
        )


@settings(max_examples=25, deadline=None)
@given(random_graphs())
def test_nsf_peel_sequence_matches_reference(graph):
    fg = graph.frozen()
    assert fg.nsf_levels() == nsf_levels_reference(graph)
    assert nsf_levels(graph) == nsf_levels_reference(graph)
    # Round-by-round: the batched peel removes exactly the reference's
    # local lowest-degree set of each successive induced subgraph.
    current = graph
    for chosen in fg.peel_rounds():
        removed = {fg.node_list[i] for i in chosen}
        assert removed == local_lowest_degree_nodes_reference(current)
        current = current.subgraph(set(current.nodes()) - removed)


@settings(max_examples=15, deadline=None)
@given(random_graphs())
def test_nested_subgraphs_and_peel_fraction_match_reference(graph):
    # Reference family: repeated reference peel of Graph objects.
    def reference_family(g, min_nodes=2):
        family = [g]
        current = g
        while current.num_nodes >= min_nodes:
            survivors = set(current.nodes()) - local_lowest_degree_nodes_reference(
                current
            )
            if len(survivors) == current.num_nodes or len(survivors) < min_nodes:
                break
            current = current.subgraph(survivors)
            family.append(current)
        return family

    routed = nested_subgraphs(graph)
    expected = reference_family(graph)
    assert [set(g.nodes()) for g in routed] == [set(g.nodes()) for g in expected]
    assert [g.num_edges for g in routed] == [g.num_edges for g in expected]

    half = peel_to_fraction(graph, 0.5)
    target = max(1, int(graph.num_nodes * 0.5))
    current = graph
    while current.num_nodes > target:
        survivors = set(current.nodes()) - local_lowest_degree_nodes_reference(
            current
        )
        if len(survivors) == current.num_nodes or not survivors:
            break
        current = current.subgraph(survivors)
    assert set(half.nodes()) == set(current.nodes())


def test_directed_bfs_uses_out_edges():
    graph = DiGraph()
    for i in range(FROZEN_MIN_NODES):
        graph.add_edge(i, i + 1)
    fg = graph.frozen()
    assert fg.bfs_distances(0)[FROZEN_MIN_NODES] == FROZEN_MIN_NODES
    assert fg.bfs_distances(FROZEN_MIN_NODES) == {FROZEN_MIN_NODES: 0}
    assert bfs_distances(graph, 3) == bfs_distances_reference(graph, 3)


def test_isolated_nodes_and_disconnection():
    graph = Graph()
    for i in range(40):
        graph.add_node(i)
    for i in range(10):
        graph.add_edge(i, i + 1)
    fg = graph.frozen()
    assert not fg.is_connected()
    assert fg.closeness_centrality() == closeness_centrality_reference(graph)
    assert fg.connected_components() == connected_components_reference(graph)
    sums = fg.all_pairs_distance_sums()
    assert int(sums[fg.index_of(39)]) == 0


# ----------------------------------------------------------------------
# snapshot caching and invalidation
# ----------------------------------------------------------------------

def test_frozen_is_cached_until_topology_changes():
    graph = erdos_renyi(48, 0.1, np.random.default_rng(1))
    first = graph.frozen()
    assert isinstance(first, FrozenGraph)
    assert graph.frozen() is first  # unchanged topology: same snapshot
    # A genuinely new node + edge always invalidates.
    graph.add_node("fresh")
    graph.add_edge("fresh", 0)
    second = graph.frozen()
    assert second is not first
    assert second.generation != first.generation
    assert second.index_of("fresh") >= 0


def test_noop_mutations_do_not_invalidate():
    graph = erdos_renyi(48, 0.1, np.random.default_rng(2))
    graph.add_edge(0, 1)
    snapshot = graph.frozen()
    graph.add_edge(0, 1)          # edge already present
    graph.add_edge(1, 0)          # same undirected edge
    graph.add_node(0)             # node already present
    assert graph.frozen() is snapshot


def test_attribute_changes_do_not_invalidate():
    graph = erdos_renyi(48, 0.1, np.random.default_rng(3))
    graph.add_edge(0, 1)
    snapshot = graph.frozen()
    graph.set_node_attr(0, "color", "red")
    graph.set_edge_attr(0, 1, "weight", 2.5)
    assert graph.frozen() is snapshot


def test_removals_invalidate():
    graph = erdos_renyi(48, 0.15, np.random.default_rng(4))
    graph.add_edge(0, 1)
    snapshot = graph.frozen()
    graph.remove_edge(0, 1)
    after_edge = graph.frozen()
    assert after_edge is not snapshot
    graph.remove_node(2)
    after_node = graph.frozen()
    assert after_node is not after_edge
    assert not after_node.directed
    with pytest.raises(Exception):
        after_node.index_of(2)


def test_snapshot_reflects_state_at_freeze_time():
    graph = Graph()
    for i in range(FROZEN_MIN_NODES + 1):
        graph.add_edge(i, i + 1)
    old = graph.frozen()
    graph.add_edge(0, FROZEN_MIN_NODES + 1)  # shortcut edge
    new = graph.frozen()
    # The stale handle keeps its pre-mutation distances.
    assert old.bfs_distances(0)[FROZEN_MIN_NODES + 1] == FROZEN_MIN_NODES + 1
    assert new.bfs_distances(0)[FROZEN_MIN_NODES + 1] == 1
