"""Synthetic dataset stand-ins (DESIGN.md substitution table)."""

import numpy as np
import pytest

from repro.datasets.gnutella import gnutella_largest_scc, gnutella_like_snapshot
from repro.datasets.human_contacts import mobility_model_trace, rate_model_trace
from repro.graphs.metrics import degree_sequence, fit_power_law
from repro.graphs.traversal import is_connected
from repro.mobility.community import feature_distance
from repro.remapping.feature_space import FeatureSpace, contact_frequency_by_feature_distance


class TestGnutellaLike:
    def test_snapshot_size_and_direction(self, rng):
        g = gnutella_like_snapshot(500, rng)
        assert g.num_nodes == 500
        assert g.num_edges > 500  # out-degree 3 plus reciprocation

    def test_largest_scc_is_big_and_connected(self, rng):
        scc = gnutella_largest_scc(800, rng)
        assert scc.num_nodes > 0.5 * 800
        assert is_connected(scc)

    def test_power_law_exponent_near_gnutella(self, rng):
        """Calibration: exponent in the published Gnutella ballpark."""
        scc = gnutella_largest_scc(4000, rng)
        fit = fit_power_law(degree_sequence(scc), kmin=4)
        assert 1.9 < fit.alpha < 3.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            gnutella_like_snapshot(3, rng)
        with pytest.raises(ValueError):
            gnutella_like_snapshot(100, rng, back_edge_prob=2.0)


class TestHumanContacts:
    def test_rate_model_law_holds(self, rng):
        trace, profiles = rate_model_trace(
            30, (2, 2, 3), rng, rate0=0.5, decay=0.4, end_time=120.0
        )
        space = FeatureSpace(profiles, (2, 2, 3))
        eg = trace.to_evolving(slot=1.0)
        freq = contact_frequency_by_feature_distance(eg, space)
        distances = sorted(freq)
        assert freq[distances[0]] > freq[distances[-1]]

    def test_rate_model_validation(self, rng):
        with pytest.raises(ValueError):
            rate_model_trace(10, (2, 2), rng, decay=0.0)
        with pytest.raises(ValueError):
            rate_model_trace(10, (2, 2), rng, rate0=-1.0)

    def test_mobility_model_trace_produces_contacts(self, rng):
        trace, profiles = mobility_model_trace(
            24, (2, 2, 3), rng, steps=150, arena_side=20.0
        )
        assert trace.num_contacts > 0
        assert set(profiles) <= trace.nodes | set(profiles)

    def test_mobility_model_law_emerges(self, rng):
        trace, profiles = mobility_model_trace(
            36, (2, 2, 3), rng, steps=300, arena_side=24.0
        )
        counts = trace.pair_contact_counts()
        by_distance = {}
        nodes = list(profiles)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                d = feature_distance(profiles[u], profiles[v])
                by_distance.setdefault(d, []).append(
                    counts.get(frozenset((u, v)), 0)
                )
        means = {d: sum(v) / len(v) for d, v in by_distance.items()}
        assert means[0] > means[max(means)]
