"""DTN routing simulator and protocol suite."""

import math

import numpy as np
import pytest

from repro.datasets.human_contacts import rate_model_trace
from repro.dtn.routers import (
    DirectDelivery,
    EpidemicRouter,
    FeatureGreedyRouter,
    ForwardingSetRouter,
    ProphetRouter,
    SprayAndWait,
)
from repro.dtn.simulator import (
    Decision,
    DTNSimulation,
    MessageSpec,
    run_protocol_comparison,
)
from repro.remapping.feature_space import FeatureSpace
from repro.temporal.evolving import EvolvingGraph
from repro.trimming.forwarding_set import optimal_forwarding_sets


def chain_eg():
    """a-b at 1, b-c at 2, c-d at 3: a clean relay chain."""
    eg = EvolvingGraph(horizon=6, nodes=["a", "b", "c", "d"])
    eg.add_contact("a", "b", 1)
    eg.add_contact("b", "c", 2)
    eg.add_contact("c", "d", 3)
    return eg


def social_scenario(seed=8, n=30, end_time=120.0):
    rng = np.random.default_rng(seed)
    trace, profiles = rate_model_trace(
        n, (2, 2, 3), rng, rate0=0.35, decay=0.5, end_time=end_time
    )
    eg = trace.to_evolving(1.0)
    return eg, profiles, trace


class TestSimulatorMechanics:
    def test_direct_waits_for_destination(self):
        eg = chain_eg()
        sim = DTNSimulation(eg, DirectDelivery())
        sim.add_message(MessageSpec("m", "a", "b"))
        stats = sim.run()
        assert stats.delivered == 1
        assert stats.latencies == [1]

    def test_direct_cannot_relay(self):
        eg = chain_eg()
        sim = DTNSimulation(eg, DirectDelivery())
        sim.add_message(MessageSpec("m", "a", "d"))
        assert sim.run().delivered == 0

    def test_epidemic_relays_down_chain(self):
        eg = chain_eg()
        sim = DTNSimulation(eg, EpidemicRouter())
        sim.add_message(MessageSpec("m", "a", "d"))
        stats = sim.run()
        assert stats.delivered == 1
        assert stats.latencies == [3]
        assert stats.hops == [3]

    def test_ttl_expiry(self):
        eg = chain_eg()
        sim = DTNSimulation(eg, EpidemicRouter())
        sim.add_message(MessageSpec("m", "a", "d", created=0, ttl=2))
        assert sim.run().delivered == 0

    def test_message_created_later_ignores_earlier_contacts(self):
        eg = chain_eg()
        sim = DTNSimulation(eg, EpidemicRouter())
        sim.add_message(MessageSpec("m", "a", "b", created=2))
        # a-b contact was at time 1 < created: never delivered.
        assert sim.run().delivered == 0

    def test_duplicate_id_rejected(self):
        sim = DTNSimulation(chain_eg(), EpidemicRouter())
        sim.add_message(MessageSpec("m", "a", "b"))
        with pytest.raises(ValueError):
            sim.add_message(MessageSpec("m", "a", "c"))

    def test_unknown_endpoint_rejected(self):
        sim = DTNSimulation(chain_eg(), EpidemicRouter())
        with pytest.raises(ValueError):
            sim.add_message(MessageSpec("m", "a", "zzz"))

    def test_source_is_destination(self):
        sim = DTNSimulation(chain_eg(), EpidemicRouter())
        sim.add_message(MessageSpec("m", "a", "a"))
        stats = sim.run()
        assert stats.delivered == 1
        assert stats.latencies == [0]

    def test_buffer_eviction_fifo(self):
        # Buffer of 1 at relay b: second message evicts the first.
        eg = EvolvingGraph(horizon=8, nodes=["a", "b", "z1", "z2"])
        eg.add_contact("a", "b", 0)   # both messages try to board b
        eg.add_contact("b", "z1", 5)
        eg.add_contact("b", "z2", 6)
        sim = DTNSimulation(eg, EpidemicRouter(), buffer_size=1)
        sim.add_message(MessageSpec("first", "a", "z1"))
        sim.add_message(MessageSpec("second", "a", "z2"))
        stats = sim.run()
        # b could only retain one of them (a keeps originals; but b's
        # buffer held only the later arrival).
        assert stats.delivered <= 1

    def test_stats_percentile(self):
        eg = chain_eg()
        sim = DTNSimulation(eg, EpidemicRouter())
        sim.add_message(MessageSpec("m1", "a", "b"))
        sim.add_message(MessageSpec("m2", "a", "d"))
        stats = sim.run()
        assert stats.latency_percentile(0.0) <= stats.latency_percentile(0.99)

    def test_empty_stats(self):
        sim = DTNSimulation(chain_eg(), EpidemicRouter())
        stats = sim.run()
        assert stats.created == 0
        assert math.isinf(stats.mean_latency)


class TestSprayAndWait:
    def test_budget_limits_copies(self):
        eg, profiles, _ = social_scenario()
        for budget in (2, 4, 16):
            sim = DTNSimulation(eg, SprayAndWait(copies=budget))
            sim.add_message(MessageSpec("m", 0, 29))
            stats = sim.run()
            assert stats.copies[0] <= budget

    def test_more_copies_not_slower(self):
        eg, profiles, _ = social_scenario()
        latencies = {}
        for budget in (1, 16):
            sim = DTNSimulation(eg, SprayAndWait(copies=budget))
            for i in range(10):
                sim.add_message(MessageSpec(f"m{i}", i, 29))
            latencies[budget] = sim.run().mean_latency
        assert latencies[16] <= latencies[1]

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            SprayAndWait(copies=0)

    def test_single_copy_equals_direct(self):
        eg = chain_eg()
        spray = DTNSimulation(eg, SprayAndWait(copies=1))
        spray.add_message(MessageSpec("m", "a", "d"))
        assert spray.run().delivered == 0  # cannot spray, cannot relay


class TestProphet:
    def test_predictability_grows_with_encounters(self):
        router = ProphetRouter()
        assert router.predictability("a", "b", 0) == 0.0
        router.on_contact("a", "b", 1)
        first = router.predictability("a", "b", 1)
        router.on_contact("a", "b", 2)
        assert router.predictability("a", "b", 2) > first

    def test_predictability_ages(self):
        router = ProphetRouter(gamma=0.5)
        router.on_contact("a", "b", 0)
        fresh = router.predictability("a", "b", 0)
        stale = router.predictability("a", "b", 10)
        assert stale < fresh

    def test_transitivity(self):
        router = ProphetRouter()
        router.on_contact("b", "c", 0)
        router.on_contact("a", "b", 1)
        assert router.predictability("a", "c", 1) > 0.0

    def test_routes_toward_frequent_contacts(self):
        eg, profiles, _ = social_scenario()
        sim = DTNSimulation(eg, ProphetRouter())
        for i in range(8):
            sim.add_message(MessageSpec(f"m{i}", i, 29, created=30))
        stats = sim.run()
        assert stats.delivery_ratio > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ProphetRouter(p_encounter=0.0)


class TestPaperRouters:
    def test_forwarding_set_single_copy(self):
        eg, profiles, trace = social_scenario()
        rates = {
            pair: count / 120.0
            for pair, count in trace.pair_contact_counts().items()
        }
        policy = optimal_forwarding_sets(rates, 29)
        sim = DTNSimulation(eg, ForwardingSetRouter(policy))
        for i in range(10):
            sim.add_message(MessageSpec(f"m{i}", i, 29))
        stats = sim.run()
        assert all(copies == 1 for copies in stats.copies)
        assert stats.delivery_ratio >= 0.7

    def test_feature_greedy_single_copy_progress(self):
        eg, profiles, _ = social_scenario()
        space = FeatureSpace(profiles, (2, 2, 3))
        sim = DTNSimulation(eg, FeatureGreedyRouter(space))
        for i in range(10):
            sim.add_message(MessageSpec(f"m{i}", i, 29))
        stats = sim.run()
        assert all(copies == 1 for copies in stats.copies)
        # Hamming descent: at most `dimension` handovers + final hop.
        assert all(hops <= 4 for hops in stats.hops)

    def test_protocol_comparison_shape(self):
        """The canonical DTN ordering: epidemic fastest and most costly,
        direct cheapest and slowest."""
        eg, profiles, trace = social_scenario()
        space = FeatureSpace(profiles, (2, 2, 3))
        specs = [MessageSpec(f"m{i}", i, 29) for i in range(12)]
        results = run_protocol_comparison(
            eg,
            [DirectDelivery(), EpidemicRouter(), FeatureGreedyRouter(space)],
            specs,
        )
        assert results["epidemic"].mean_latency <= results["fspace-greedy"].mean_latency
        assert results["fspace-greedy"].mean_latency <= results["direct"].mean_latency
        assert results["epidemic"].mean_copies > results["fspace-greedy"].mean_copies


class TestDeliveryStatsDegenerateCases:
    """Empty-delivery and zero-creation runs must yield well-defined
    stats, never a ZeroDivisionError."""

    @staticmethod
    def _stats(**overrides):
        from repro.dtn.simulator import DeliveryStats

        defaults = dict(created=0, delivered=0, latencies=[], copies=[], hops=[])
        defaults.update(overrides)
        return DeliveryStats(**defaults)

    def test_zero_created_delivery_ratio(self):
        assert self._stats().delivery_ratio == 0.0

    def test_empty_means(self):
        stats = self._stats(created=3)
        assert math.isinf(stats.mean_latency)
        assert stats.mean_copies == 0.0
        assert stats.mean_hops == 0.0
        assert stats.delivery_ratio == 0.0

    def test_empty_latency_percentile_is_inf(self):
        assert math.isinf(self._stats().latency_percentile(0.5))

    def test_latency_percentile_validates_q(self):
        stats = self._stats(created=1, delivered=1, latencies=[2], copies=[1], hops=[1])
        with pytest.raises(ValueError):
            stats.latency_percentile(1.01)
        with pytest.raises(ValueError):
            stats.latency_percentile(-0.5)
        assert stats.latency_percentile(0.0) == 2.0
        assert stats.latency_percentile(1.0) == 2.0

    def test_no_messages_simulation_end_to_end(self):
        sim = DTNSimulation(chain_eg(), EpidemicRouter())
        stats = sim.run()
        assert stats.delivery_ratio == 0.0
        assert math.isinf(stats.latency_percentile(0.9))
        assert stats.mean_copies == 0.0
