"""Fault injection in the DTN simulator (repro.faults × repro.dtn).

Covers the DTN-specific fault surface: per-transfer drops degrade the
delivery ratio monotonically in the drop rate; crash/restart respects
the ``lose_state`` buffer semantics (amnesia wipes buffered copies,
persistence keeps them); injected per-contact delays interact with
message TTLs exactly like genuinely late encounters; and the seeded
ledger replays byte-identically.
"""

import numpy as np
import pytest

from repro.datasets.human_contacts import rate_model_trace
from repro.dtn.routers import EpidemicRouter
from repro.dtn.simulator import DTNSimulation, MessageSpec
from repro.faults import (
    CrashEvent,
    FaultPlan,
    LinkChurn,
    LinkChurnEvent,
    MessageFaults,
    NodeCrashFaults,
)
from repro.temporal.evolving import EvolvingGraph


def sparse_scenario(seed=8, n=16, end_time=20.0):
    rng = np.random.default_rng(seed)
    trace, _ = rate_model_trace(
        n, (2, 2, 3), rng, rate0=0.08, decay=0.6, end_time=end_time
    )
    return trace.to_evolving(1.0), n


def run_epidemic(eg, n, fault_plan, n_messages=12, ttl=10):
    sim = DTNSimulation(eg, EpidemicRouter(), fault_plan=fault_plan)
    for i in range(n_messages):
        sim.add_message(
            MessageSpec(f"m{i}", i % (n - 1), n - 1, created=0, ttl=ttl)
        )
    return sim, sim.run()


class TestDropMonotonicity:
    def test_delivery_ratio_falls_with_drop_rate(self):
        eg, n = sparse_scenario()
        ratios = []
        for drop in (0.0, 0.5, 1.0):
            plan = FaultPlan(1337, [MessageFaults(drop=drop)])
            _, stats = run_epidemic(eg, n, plan)
            ratios.append(stats.delivery_ratio)
        assert ratios[0] >= ratios[1] >= ratios[2]
        assert ratios[0] > 0.0  # the scenario is routable at all...
        assert ratios[2] == 0.0  # ...and total loss delivers nothing

    def test_contact_loss_degrades_like_transfer_loss(self):
        eg, n = sparse_scenario()
        _, clean = run_epidemic(eg, n, FaultPlan(4, [LinkChurn(down=0.0)]))
        _, lossy = run_epidemic(eg, n, FaultPlan(4, [LinkChurn(down=0.9)]))
        assert lossy.delivery_ratio <= clean.delivery_ratio


class TestCrashBufferSemantics:
    @staticmethod
    def _two_hop_relay():
        # 0 meets 1 early; 1 meets 2 late — 1 is the only relay.
        eg = EvolvingGraph(horizon=12, nodes=[0, 1, 2])
        eg.add_contact(0, 1, 1)
        eg.add_contact(1, 2, 8)
        return eg

    def _run(self, crash):
        eg = self._two_hop_relay()
        plan = FaultPlan(0, [NodeCrashFaults(schedule=(crash,))])
        sim = DTNSimulation(eg, EpidemicRouter(), fault_plan=plan)
        sim.add_message(MessageSpec("m", 0, 2, created=0))
        return sim, sim.run()

    def test_amnesiac_crash_loses_buffered_copy(self):
        sim, stats = self._run(
            CrashEvent(node=1, at=3, restart_at=6, lose_state=True)
        )
        assert stats.delivered == 0
        assert sim.faults.summary()["buffer_lost"] == 1

    def test_persistent_crash_keeps_buffered_copy(self):
        sim, stats = self._run(
            CrashEvent(node=1, at=3, restart_at=6, lose_state=False)
        )
        assert stats.delivered == 1
        assert "buffer_lost" not in sim.faults.summary()

    def test_contact_with_down_node_is_suppressed(self):
        # Crash spans the only 1-2 contact: delivery fails even with
        # persistence, and the suppressed encounter is on the ledger.
        sim, stats = self._run(
            CrashEvent(node=1, at=7, restart_at=10, lose_state=False)
        )
        assert stats.delivered == 0
        assert sim.faults.summary()["contact_crashed"] >= 1


class TestDelayTtlInteraction:
    @staticmethod
    def _single_contact(ttl):
        eg = EvolvingGraph(horizon=10, nodes=[0, 1])
        eg.add_contact(0, 1, 4)
        sim = DTNSimulation(
            eg,
            EpidemicRouter(),
            fault_plan=FaultPlan(
                2, [MessageFaults(delay=1.0, max_delay=3)]
            ),
        )
        sim.add_message(MessageSpec("m", 0, 1, created=0, ttl=ttl))
        return sim

    def test_injected_delay_pushes_contact_past_ttl(self):
        sim = self._single_contact(ttl=4)
        stats = sim.run()
        assert stats.delivered == 0
        assert sim.faults.summary()["contact_delay"] >= 1

    def test_generous_ttl_tolerates_injected_delay(self):
        sim = self._single_contact(ttl=None)
        stats = sim.run()
        assert stats.delivered == 1

    def test_scheduled_link_outage_blocks_the_contact(self):
        eg = EvolvingGraph(horizon=10, nodes=[0, 1])
        eg.add_contact(0, 1, 4)
        churn = LinkChurn(
            schedule=(
                LinkChurnEvent(at=2, action="down", u=0, v=1),
                LinkChurnEvent(at=8, action="up", u=0, v=1),
            )
        )
        sim = DTNSimulation(eg, EpidemicRouter(), fault_plan=FaultPlan(0, [churn]))
        sim.add_message(MessageSpec("m", 0, 1, created=0))
        stats = sim.run()
        assert stats.delivered == 0
        assert sim.faults.summary()["contact_drop"] == 1


class TestDTNReplay:
    def test_same_plan_replays_byte_identical_ledger(self):
        eg, n = sparse_scenario()
        plan = FaultPlan(99, [MessageFaults(drop=0.3, duplicate=0.1, delay=0.2)])
        first, _ = run_epidemic(eg, n, plan)
        second, _ = run_epidemic(eg, n, plan)
        assert len(first.faults.ledger) > 0
        assert first.faults.ledger.lines() == second.faults.ledger.lines()
        assert first.faults.ledger.digest() == second.faults.ledger.digest()

    def test_different_seed_different_ledger(self):
        eg, n = sparse_scenario()
        chaos = MessageFaults(drop=0.3, duplicate=0.1, delay=0.2)
        first, _ = run_epidemic(eg, n, FaultPlan(1, [chaos]))
        second, _ = run_epidemic(eg, n, FaultPlan(2, [chaos]))
        assert first.faults.ledger.digest() != second.faults.ledger.digest()
