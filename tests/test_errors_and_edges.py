"""Exception hierarchy and cross-module edge cases."""

import math

import numpy as np
import pytest

from repro.errors import (
    AlgorithmError,
    ConvergenceError,
    EdgeNotFoundError,
    GraphClassError,
    NodeNotFoundError,
    ReproError,
)
from repro.graphs.graph import DiGraph, Graph
from repro.graphs.generators import path_graph
from repro.temporal.evolving import EvolvingGraph


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for error_type in (
            NodeNotFoundError,
            EdgeNotFoundError,
            GraphClassError,
            AlgorithmError,
            ConvergenceError,
        ):
            assert issubclass(error_type, ReproError)

    def test_node_not_found_is_key_error(self):
        assert issubclass(NodeNotFoundError, KeyError)
        error = NodeNotFoundError("x")
        assert error.node == "x"
        assert "x" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = EdgeNotFoundError("a", "b")
        assert (error.u, error.v) == ("a", "b")

    def test_graph_class_error_is_value_error(self):
        assert issubclass(GraphClassError, ValueError)

    def test_convergence_error_carries_rounds(self):
        error = ConvergenceError("thing", 42)
        assert error.rounds == 42
        assert "42" in str(error)
        assert error.rounds_completed is None
        assert error.messages_sent is None

    def test_convergence_error_folds_context_into_message(self):
        error = ConvergenceError(
            "distributed execution", 10, rounds_completed=10, messages_sent=137
        )
        assert error.rounds_completed == 10
        assert error.messages_sent == 137
        assert "rounds completed: 10" in str(error)
        assert "messages sent so far: 137" in str(error)

    def test_engine_attaches_execution_context(self):
        from repro.runtime.engine import Network, NodeAlgorithm

        class NeverHalts(NodeAlgorithm):
            def init(self, ctx):
                ctx.broadcast("ping")

            def step(self, ctx):
                ctx.broadcast("ping")

        net = Network(path_graph(3), lambda n: NeverHalts())
        with pytest.raises(ConvergenceError) as excinfo:
            net.run(max_rounds=5)
        error = excinfo.value
        assert error.rounds == 5
        assert error.rounds_completed == 5
        assert error.messages_sent == net.stats.messages_sent
        assert error.messages_sent > 0
        assert "messages sent so far" in str(error)

    def test_catching_base_catches_all(self):
        g = Graph()
        with pytest.raises(ReproError):
            g.remove_node("ghost")
        with pytest.raises(ReproError):
            g.add_node("a")
            g.add_node("b")
            g.remove_edge("a", "b")


class TestGraphEdgeCases:
    def test_empty_graph_properties(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []
        assert g.copy().num_nodes == 0
        assert g.subgraph(set()).num_nodes == 0

    def test_single_node_graph(self):
        g = Graph()
        g.add_node(0)
        assert g.degree(0) == 0
        assert g.neighbors(0) == set()
        assert g.k_hop_neighbors(0, 5) == set()

    def test_hashable_node_types_mix(self):
        g = Graph()
        g.add_edge(1, "one")
        g.add_edge("one", (1, 0))
        g.add_edge((1, 0), frozenset({1}))
        assert g.num_edges == 3
        assert g.has_edge(frozenset({1}), (1, 0))

    def test_digraph_edges_directional_attrs(self):
        g = DiGraph()
        g.add_edge("a", "b", weight=1)
        g.add_edge("b", "a", weight=9)
        assert g.edge_attr("a", "b", "weight") == 1
        assert g.edge_attr("b", "a", "weight") == 9

    def test_subgraph_of_subgraph(self):
        g = path_graph(6)
        sub = g.subgraph({0, 1, 2, 3}).subgraph({1, 2})
        assert sub.has_edge(1, 2)
        assert sub.num_nodes == 2


class TestEvolvingGraphEdgeCases:
    def test_horizon_one(self):
        eg = EvolvingGraph(horizon=1)
        eg.add_contact("a", "b", 0)
        assert eg.labels("a", "b") == frozenset({0})
        with pytest.raises(ValueError):
            eg.add_contact("a", "b", 1)

    def test_duplicate_contact_idempotent(self):
        eg = EvolvingGraph(horizon=4)
        eg.add_contact("a", "b", 2)
        eg.add_contact("a", "b", 2)
        assert eg.num_contacts == 1

    def test_empty_eg_queries(self):
        eg = EvolvingGraph(horizon=3, nodes=["a"])
        assert eg.contacts_from("a") == []
        assert eg.all_contacts() == []
        from repro.temporal.journeys import earliest_arrival

        assert earliest_arrival(eg, "a") == {"a": 0}

    def test_snapshot_is_independent_copy(self):
        eg = EvolvingGraph(horizon=3)
        eg.add_contact("a", "b", 0)
        snap = eg.snapshot(0)
        snap.remove_edge("a", "b")
        assert eg.has_contact("a", "b", 0)

    def test_weight_update_overwrites(self):
        eg = EvolvingGraph(horizon=4)
        eg.add_contact("a", "b", 1, weight=2.0)
        eg.add_contact("a", "b", 1, weight=5.0)
        assert eg.weight("a", "b", 1) == 5.0


class TestNumericEdgeCases:
    def test_power_law_fit_needs_two_samples(self):
        from repro.graphs.metrics import fit_power_law

        with pytest.raises(ValueError):
            fit_power_law([5], kmin=1)
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], kmin=10)

    def test_exponential_fit_filters_nonpositive(self):
        from repro.temporal.contacts import fit_exponential

        fit = fit_exponential([1.0, 2.0, -5.0, 0.0, 3.0])
        assert fit.n == 3

    def test_hyperbolic_distance_identity(self):
        from repro.remapping.hyperbolic import hyperbolic_distance

        assert hyperbolic_distance((0.3, 2.0), (0.3, 2.0)) == 0.0

    def test_log_space_distance_huge_radii(self):
        # The Möbius machinery must survive distances far beyond
        # float-cosh range (cosh overflows past ~710).
        from repro.graphs.generators import path_graph
        from repro.remapping.hyperbolic import embed_tree

        chain = path_graph(60)
        embedding = embed_tree(chain, tau=30.0, certify=False)
        distance = embedding.distance(0, 59)
        assert distance == pytest.approx(59 * 30.0, rel=1e-6)
        assert not math.isinf(distance)

    def test_spanner_of_empty_graph(self):
        from repro.trimming.spanners import greedy_spanner

        g = Graph()
        assert greedy_spanner(g, 2.0).num_nodes == 0

    def test_mis_of_empty_graph(self):
        from repro.labeling.mis import compute_mis

        mis, rounds = compute_mis(Graph())
        assert mis == set()

    def test_marking_of_clique_union_node(self):
        from repro.labeling.cds import marking_process

        g = Graph()
        g.add_node("lonely")
        assert marking_process(g) == set()

    def test_analyzer_on_tiny_graphs(self):
        from repro.core.uncover import StructureAnalyzer

        g = Graph()
        g.add_edge(0, 1)
        report = StructureAnalyzer().analyze(g)
        assert report.find("graph-model") is not None

    def test_pagerank_single_node(self):
        from repro.labeling.pagerank import pagerank

        g = DiGraph()
        g.add_node("solo")
        scores, _ = pagerank(g)
        assert scores["solo"] == pytest.approx(1.0)

    def test_safety_levels_all_faulty_neighbors(self):
        from repro.labeling.safety import compute_safety_levels

        # Every neighbor of 000 faulty: its level must be 0's successor
        # logic => level 1 requires l_1 >= 1 which fails => level ...
        faults = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
        s = compute_safety_levels(3, faults)
        # Sorted neighbor levels (0,0,0): smallest k with l_k < k is 1.
        assert s.levels[(0, 0, 0)] == 1
