"""Time-evolving graph container (Sec. II-B, Fig. 2)."""

import pytest

from repro.errors import EdgeNotFoundError, NodeNotFoundError
from repro.graphs.graph import Graph
from repro.temporal.evolving import EvolvingGraph, paper_fig2_evolving_graph


class TestConstruction:
    def test_add_contact(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 2)
        assert eg.has_contact("a", "b", 2)
        assert eg.has_contact("b", "a", 2)
        assert not eg.has_contact("a", "b", 3)

    def test_labels(self):
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("a", "b", 1)
        eg.add_contact("a", "b", 7)
        assert eg.labels("a", "b") == frozenset({1, 7})

    def test_labels_missing_edge_raises(self):
        eg = EvolvingGraph(horizon=3, nodes=["a", "b"])
        with pytest.raises(EdgeNotFoundError):
            eg.labels("a", "b")

    def test_time_out_of_range(self):
        eg = EvolvingGraph(horizon=3)
        with pytest.raises(ValueError):
            eg.add_contact("a", "b", 3)
        with pytest.raises(ValueError):
            eg.add_contact("a", "b", -1)

    def test_self_contact_rejected(self):
        eg = EvolvingGraph(horizon=3)
        with pytest.raises(ValueError):
            eg.add_contact("a", "a", 0)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            EvolvingGraph(horizon=0)

    def test_periodic_contact(self):
        eg = EvolvingGraph(horizon=10)
        eg.add_periodic_contact("a", "b", phase=1, period=3)
        assert eg.labels("a", "b") == frozenset({1, 4, 7})

    def test_weights(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1, weight=2.5)
        assert eg.weight("a", "b", 1) == 2.5

    def test_weight_default(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1)
        assert eg.weight("a", "b", 1) == 1.0

    def test_counts(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1)
        eg.add_contact("a", "b", 2)
        eg.add_contact("b", "c", 0)
        assert eg.num_edges == 2
        assert eg.num_contacts == 3


class TestMutation:
    def test_remove_contact_keeps_edge(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1)
        eg.add_contact("a", "b", 3)
        eg.remove_contact("a", "b", 1)
        assert eg.labels("a", "b") == frozenset({3})

    def test_remove_last_contact_drops_edge(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1)
        eg.remove_contact("a", "b", 1)
        assert not eg.has_edge("a", "b")
        assert "b" not in eg.neighbors("a")

    def test_remove_missing_contact_raises(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1)
        with pytest.raises(EdgeNotFoundError):
            eg.remove_contact("a", "b", 2)

    def test_remove_node(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1)
        eg.add_contact("b", "c", 2)
        eg.remove_node("b")
        assert not eg.has_node("b")
        assert eg.num_edges == 0
        assert eg.has_node("a")

    def test_remove_missing_node_raises(self):
        eg = EvolvingGraph(horizon=3)
        with pytest.raises(NodeNotFoundError):
            eg.remove_node("ghost")


class TestViews:
    def test_snapshot(self):
        eg = EvolvingGraph(horizon=4)
        eg.add_contact("a", "b", 1)
        eg.add_contact("b", "c", 2)
        snap1 = eg.snapshot(1)
        assert snap1.has_edge("a", "b")
        assert not snap1.has_edge("b", "c")
        assert snap1.num_nodes == 3  # spanning subgraph keeps all nodes

    def test_footprint(self):
        eg = EvolvingGraph(horizon=4)
        eg.add_contact("a", "b", 1)
        eg.add_contact("b", "c", 2)
        fp = eg.footprint()
        assert fp.has_edge("a", "b") and fp.has_edge("b", "c")

    def test_neighbors_at(self):
        eg = EvolvingGraph(horizon=4)
        eg.add_contact("a", "b", 1)
        eg.add_contact("a", "c", 2)
        assert eg.neighbors_at("a", 1) == {"b"}
        assert eg.neighbors_at("a", 3) == set()

    def test_contacts_from_sorted(self):
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("a", "b", 5)
        eg.add_contact("a", "c", 2)
        eg.add_contact("a", "b", 8)
        contacts = eg.contacts_from("a")
        assert contacts == [(2, "c"), (5, "b"), (8, "b")]
        assert eg.contacts_from("a", not_before=3) == [(5, "b"), (8, "b")]

    def test_all_contacts_sorted(self):
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("x", "y", 7)
        eg.add_contact("a", "b", 2)
        times = [t for t, _, _ in eg.all_contacts()]
        assert times == sorted(times)

    def test_subgraph(self):
        eg = paper_fig2_evolving_graph()
        sub = eg.subgraph({"A", "B", "C"})
        assert sub.num_nodes == 3
        assert sub.labels("A", "B") == eg.labels("A", "B")
        assert not sub.has_node("D")

    def test_copy_independent(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1)
        clone = eg.copy()
        clone.add_contact("a", "b", 2)
        assert eg.labels("a", "b") == frozenset({1})


class TestConversions:
    def test_from_snapshots_roundtrip(self):
        eg = EvolvingGraph(horizon=3)
        eg.add_contact("a", "b", 0)
        eg.add_contact("b", "c", 2)
        rebuilt = EvolvingGraph.from_snapshots(list(eg.snapshots()))
        assert rebuilt.labels("a", "b") == eg.labels("a", "b")
        assert rebuilt.labels("b", "c") == eg.labels("b", "c")

    def test_from_contacts(self):
        eg = EvolvingGraph.from_contacts([("a", "b", 0), ("b", "c", 4)])
        assert eg.horizon == 5
        assert eg.has_contact("b", "c", 4)

    def test_from_contacts_empty_needs_horizon(self):
        with pytest.raises(ValueError):
            EvolvingGraph.from_contacts([])


class TestPaperFig2:
    def test_label_sets(self):
        eg = paper_fig2_evolving_graph()
        assert eg.labels("A", "D") == frozenset({1, 3})
        assert eg.labels("A", "B") == frozenset({1, 4})
        assert eg.labels("B", "C") == frozenset({2, 5})
        assert eg.labels("B", "D") == frozenset({0, 6})
        assert eg.labels("C", "D") == frozenset({6})

    def test_static_pair_every_unit(self):
        eg = paper_fig2_evolving_graph()
        assert eg.labels("E", "F") == frozenset(range(7))
