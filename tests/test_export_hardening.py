"""Exporter hardening: atomic-write failure injection and Prometheus
round-trips with labeled metrics and hostile label values."""

import os

import pytest

from repro.observability.export import (
    parse_prometheus,
    to_prometheus,
    write_atomic,
)
from repro.observability.metrics import MetricsRegistry


class TestWriteAtomicFailureInjection:
    def test_failed_replace_leaves_no_temp_file(self, tmp_path, monkeypatch):
        """If the final rename blows up, the temp file must be cleaned
        up and the destination must not exist."""
        target = tmp_path / "artifact.json"

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk on fire"):
            write_atomic(str(target), "payload")
        assert not target.exists()
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []

    def test_failed_replace_preserves_previous_content(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "artifact.json"
        write_atomic(str(target), "old content")

        monkeypatch.setattr(
            os, "replace", lambda src, dst: (_ for _ in ()).throw(OSError("nope"))
        )
        with pytest.raises(OSError):
            write_atomic(str(target), "new content")
        assert target.read_text() == "old content"
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []

    def test_cleanup_tolerates_replace_that_consumed_the_temp(
        self, tmp_path, monkeypatch
    ):
        """A replace that moved the temp file *and then* raised must
        not trigger a second error from the unlink fallback."""
        target = tmp_path / "artifact.json"
        real_replace = os.replace

        def replace_then_raise(src, dst):
            real_replace(src, dst)  # temp file is gone now
            raise OSError("interrupted after rename")

        monkeypatch.setattr(os, "replace", replace_then_raise)
        with pytest.raises(OSError, match="interrupted after rename"):
            write_atomic(str(target), "payload")
        # the write itself landed; no stray temp files either way
        assert target.read_text() == "payload"
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []

    def test_success_leaves_only_the_artifact(self, tmp_path):
        target = tmp_path / "artifact.json"
        assert write_atomic(str(target), "ok") == str(target)
        assert sorted(os.listdir(tmp_path)) == ["artifact.json"]


class TestPrometheusRoundTrip:
    def test_labeled_counters_round_trip(self):
        registry = MetricsRegistry("prom")
        registry.counter(
            "repro.dispatch.calls", {"kernel": "graphs.bfs", "path": "fast"}
        ).inc(7)
        registry.counter(
            "repro.dispatch.calls", {"kernel": "graphs.bfs", "path": "reference"}
        ).inc(2)
        samples = parse_prometheus(to_prometheus(registry))
        assert (
            samples['repro_dispatch_calls{kernel="graphs.bfs",path="fast"}'] == 7.0
        )
        assert (
            samples['repro_dispatch_calls{kernel="graphs.bfs",path="reference"}']
            == 2.0
        )

    def test_labeled_histogram_round_trip(self):
        registry = MetricsRegistry("prom")
        histogram = registry.histogram("repro.latency", {"router": "epidemic"})
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        samples = parse_prometheus(to_prometheus(registry))
        assert samples['repro_latency_count{router="epidemic"}'] == 3.0
        assert samples['repro_latency_sum{router="epidemic"}'] == 6.0
        assert samples['repro_latency{quantile="0.5",router="epidemic"}'] == 2.0

    @pytest.mark.parametrize(
        "hostile,escaped",
        [
            ('say "hi"', 'say \\"hi\\"'),
            ("back\\slash", "back\\\\slash"),
            ("line\nbreak", "line\\nbreak"),
            ('all\\of "it"\ntogether', 'all\\\\of \\"it\\"\\ntogether'),
        ],
    )
    def test_special_characters_in_label_values_are_escaped(
        self, hostile, escaped
    ):
        registry = MetricsRegistry("prom")
        registry.counter("repro.test.series", {"tag": hostile}).inc(5)
        text = to_prometheus(registry)
        line = f'repro_test_series{{tag="{escaped}"}} 5'
        assert line in text.splitlines()
        # escaping keeps every sample on one line, so the parser still
        # sees exactly one sample with the right value
        samples = parse_prometheus(text)
        assert list(samples.values()) == [5.0]

    def test_gauge_with_numeric_label_round_trips(self):
        registry = MetricsRegistry("prom")
        registry.gauge("repro.dtn.buffer_occupancy", {"node": 3}).set(11)
        samples = parse_prometheus(to_prometheus(registry))
        assert samples['repro_dtn_buffer_occupancy{node="3"}'] == 11.0
