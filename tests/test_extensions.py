"""Tests for the paper's extension/open-question features:

multilayer networks (Sec. I), probabilistic trimming (Sec. III-A),
asynchronous execution (Sec. IV-C view inconsistency), and hybrid
central-over-distributed routing control ([31], Sec. IV-C).
"""

import numpy as np
import pytest

from repro.errors import AlgorithmError, NodeNotFoundError
from repro.graphs.generators import grid_2d, path_graph, random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.multilayer import MultilayerNetwork, social_physical_coupling
from repro.labeling.sdn import CentralController, steer_routing
from repro.runtime.async_engine import AsyncNetwork
from repro.runtime.engine import Network, NodeAlgorithm
from repro.temporal.evolving import EvolvingGraph, paper_fig2_evolving_graph
from repro.trimming.probabilistic import (
    ProbabilisticEvolvingGraph,
    node_trimmable_p1,
    node_trimmable_p2,
    replacement_probability,
)
from repro.trimming.static_rules import id_priority, node_trimmable


class TestMultilayer:
    def test_layers_share_node_universe(self):
        net = MultilayerNetwork()
        net.add_edge("social", "a", "b")
        net.add_layer("physical")
        net.add_edge("physical", "b", "c")
        assert net.layer("social").has_node("c")
        assert net.layer("physical").has_node("a")
        assert net.num_nodes == 3

    def test_duplicate_layer_rejected(self):
        net = MultilayerNetwork()
        net.add_layer("x")
        with pytest.raises(ValueError):
            net.add_layer("x")

    def test_aggregate_counts_layers(self):
        net = MultilayerNetwork()
        net.add_edge("a-layer", 1, 2)
        net.add_edge("b-layer", 1, 2)
        net.add_edge("b-layer", 2, 3)
        union = net.aggregate()
        assert union.edge_attr(1, 2, "layers") == 2
        assert union.edge_attr(2, 3, "layers") == 1

    def test_overlap_metrics(self):
        net = MultilayerNetwork()
        net.add_edge("a", 1, 2)
        net.add_edge("a", 2, 3)
        net.add_edge("b", 1, 2)
        assert net.layer_overlap("a", "b") == pytest.approx(0.5)
        assert net.edge_conditional_probability("b", "a") == 1.0
        assert net.edge_conditional_probability("a", "b") == 0.5

    def test_degree_correlation_positive_on_copies(self):
        g = random_connected_graph(20, 0.2, np.random.default_rng(1))
        net = MultilayerNetwork()
        net.add_layer("a", g)
        net.add_layer("b", g)
        assert net.degree_correlation("a", "b") == pytest.approx(1.0)

    def test_degree_vector(self):
        net = MultilayerNetwork()
        net.add_edge("x", 1, 2)
        net.add_layer("y")
        assert net.degree_vector(1) == {"x": 1, "y": 0}
        with pytest.raises(NodeNotFoundError):
            net.degree_vector(99)

    def test_social_physical_coupling_influence(self, rng):
        """The Sec. III-C law shows up as cross-layer edge prediction."""
        from repro.datasets.human_contacts import rate_model_trace

        trace, profiles = rate_model_trace(
            30, (2, 2, 3), rng, rate0=0.5, decay=0.3, end_time=60.0
        )
        net = social_physical_coupling(
            profiles, trace.pair_contact_counts(), strong_threshold=3
        )
        # Physical edges are much likelier between social neighbors
        # than between arbitrary pairs.
        conditional = net.edge_conditional_probability("social", "physical")
        physical_density = (
            net.layer("physical").num_edges
            / (net.num_nodes * (net.num_nodes - 1) / 2)
        )
        assert conditional > physical_density


def two_hop_peg(p_in, p_out, p_repl):
    """w --0--> u --1--> v with a direct w-v replacement at time 0."""
    peg = ProbabilisticEvolvingGraph(horizon=3)
    peg.set_contact_probability("w", "u", 0, p_in)
    peg.set_contact_probability("u", "v", 1, p_out)
    if p_repl > 0:
        peg.set_contact_probability("w", "v", 1, p_repl)
    return peg


class TestProbabilisticTrimming:
    def test_degenerates_to_deterministic_rule(self):
        """All probabilities 1, gamma = 1  ==  the paper's rule."""
        eg = paper_fig2_evolving_graph()
        peg = ProbabilisticEvolvingGraph.from_evolving(eg, probability=1.0)
        priorities = id_priority(eg)
        for node in sorted(eg.nodes(), key=repr):
            if not eg.neighbors(node):
                continue
            deterministic = node_trimmable(eg, node, priorities)
            probabilistic = node_trimmable_p1(peg, node, gamma=1.0, priorities=priorities)
            assert deterministic == probabilistic, node

    def test_replacement_probability_exact_single_link(self):
        peg = two_hop_peg(1.0, 1.0, 0.7)
        assert replacement_probability(
            peg, "w", "v", 0, 1, {"u"}
        ) == pytest.approx(0.7)

    def test_trimmable_iff_replacement_strong_enough(self):
        strong = two_hop_peg(1.0, 1.0, 0.95)
        weak = two_hop_peg(1.0, 1.0, 0.5)
        assert node_trimmable_p1(strong, "u", gamma=0.9)
        assert not node_trimmable_p1(weak, "u", gamma=0.9)

    def test_gamma_scales_with_pattern_probability(self):
        # Pattern itself is unlikely (0.25): a 0.3 replacement suffices
        # at gamma = 0.9 because 0.3 >= 0.9 * 0.25.
        peg = two_hop_peg(0.5, 0.5, 0.3)
        assert node_trimmable_p1(peg, "u", gamma=0.9)

    def test_gamma_validation(self):
        peg = two_hop_peg(1, 1, 1)
        with pytest.raises(ValueError):
            node_trimmable_p1(peg, "u", gamma=1.5)

    def test_sampling_rule_agrees_with_expectation_rule(self, rng):
        peg = two_hop_peg(1.0, 1.0, 0.95)
        verdict = node_trimmable_p2(peg, "u", rng, samples=200)
        # Deterministic per-realisation: trimmable iff the w-v contact
        # materialises (prob 0.95).
        assert verdict.trimmable_fraction == pytest.approx(0.95, abs=0.05)

    def test_sample_respects_probabilities(self, rng):
        peg = ProbabilisticEvolvingGraph(horizon=2)
        peg.set_contact_probability("a", "b", 0, 0.3)
        hits = sum(
            peg.sample(rng).has_contact("a", "b", 0) for _ in range(500)
        )
        assert hits / 500 == pytest.approx(0.3, abs=0.06)

    def test_same_unit_chaining_probability(self):
        # w-x and x-v both at time 0: chain probability is p1 * p2.
        peg = ProbabilisticEvolvingGraph(horizon=1)
        peg.set_contact_probability("w", "x", 0, 0.5)
        peg.set_contact_probability("x", "v", 0, 0.5)
        assert replacement_probability(
            peg, "w", "v", 0, 0, set()
        ) == pytest.approx(0.25)

    def test_validation(self):
        peg = ProbabilisticEvolvingGraph(horizon=2)
        with pytest.raises(ValueError):
            peg.set_contact_probability("a", "a", 0, 0.5)
        with pytest.raises(ValueError):
            peg.set_contact_probability("a", "b", 5, 0.5)
        with pytest.raises(ValueError):
            peg.set_contact_probability("a", "b", 0, 1.5)


class Flood(NodeAlgorithm):
    def __init__(self, source):
        self.source = source

    def init(self, ctx):
        ctx.state["informed"] = ctx.node == self.source
        if ctx.state["informed"]:
            ctx.broadcast("token")

    def step(self, ctx):
        if ctx.inbox and not ctx.state["informed"]:
            ctx.state["informed"] = True
            ctx.broadcast("token")
        ctx.halt()


class TestAsyncEngine:
    def test_flood_survives_asynchrony(self, rng):
        g = grid_2d(4, 4)
        network = AsyncNetwork(g, lambda n: Flood((0, 0)), rng, max_delay=4)
        network.run()
        assert all(network.states("informed").values())

    def test_delay_one_behaves_like_synchronous(self, rng):
        g = path_graph(6)
        asynchronous = AsyncNetwork(g, lambda n: Flood(0), rng, max_delay=1)
        asynchronous.run()
        synchronous = Network(g, lambda n: Flood(0))
        synchronous.run()
        assert (
            asynchronous.states("informed") == synchronous.states("informed")
        )

    def test_larger_delays_cost_more_ticks(self):
        g = path_graph(12)
        slow_ticks = []
        fast_ticks = []
        for seed in range(5):
            fast = AsyncNetwork(
                g, lambda n: Flood(0), np.random.default_rng(seed), max_delay=1
            )
            fast.run()
            fast_ticks.append(fast.tick)
            slow = AsyncNetwork(
                g, lambda n: Flood(0), np.random.default_rng(seed), max_delay=5
            )
            slow.run()
            slow_ticks.append(slow.tick)
        assert sum(slow_ticks) > sum(fast_ticks)

    def test_bad_delay_rejected(self, rng):
        with pytest.raises(ValueError):
            AsyncNetwork(path_graph(3), lambda n: Flood(0), rng, max_delay=0)

    def test_marking_algorithm_tolerates_asynchrony(self, rng):
        """One-shot localized labels survive async delivery."""
        from repro.labeling.cds import MarkingAlgorithm, marking_process

        g = random_connected_graph(25, 0.15, rng)
        network = AsyncNetwork(g, lambda n: MarkingAlgorithm(), rng, max_delay=3)
        network.run()
        black = {
            node
            for node, color in network.states("color").items()
            if color == "black"
        }
        assert black == marking_process(g)


class TestHybridSDN:
    def test_steering_overrides_next_hop(self):
        # 4-cycle: 0-1-2-3-0, destination 0.  Node 2 is equidistant via
        # 1 and 3; force it through 3.
        g = Graph()
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            g.add_edge(u, v)
        network, weights = steer_routing(g, 0, {2: 3})
        assert network.state_of(2)["next_hop"] == 3

    def test_steering_off_shortest_path(self):
        # Grid: force (1,1) to route via (1,0) instead of its default.
        g = grid_2d(3, 3)
        network, _ = steer_routing(g, (0, 0), {(1, 1): (1, 0)})
        assert network.state_of((1, 1))["next_hop"] == (1, 0)

    def test_unsteerable_requirement_raises(self):
        # Path 0-1-2: node 1 cannot be steered to 2 (dead end away
        # from the destination 0).
        g = path_graph(3)
        with pytest.raises(AlgorithmError):
            steer_routing(g, 0, {1: 2})

    def test_non_incident_override_rejected(self):
        g = path_graph(4)
        controller = CentralController(g, 0)
        with pytest.raises(AlgorithmError):
            controller.synthesize({0: 3})

    def test_unaffected_nodes_still_route_correctly(self):
        g = grid_2d(4, 4)
        network, _ = steer_routing(g, (0, 0), {(2, 2): (1, 2)})
        # Every node still reaches the destination by following hops.
        for node in g.nodes():
            current = node
            for _ in range(50):
                if current == (0, 0):
                    break
                current = network.state_of(current)["next_hop"]
            assert current == (0, 0)

    def test_multiple_overrides(self):
        g = grid_2d(4, 4)
        overrides = {(3, 3): (2, 3), (1, 1): (0, 1)}
        network, _ = steer_routing(g, (0, 0), overrides)
        for node, hop in overrides.items():
            assert network.state_of(node)["next_hop"] == hop
