"""The fault-injection chaos layer (repro.faults) on the engines.

Three contracts, in order of importance:

* **Replay** — a :class:`FaultPlan` is seed + injectors; the same plan
  driven through the same workload twice produces *byte-identical*
  fault ledgers (``ledger.digest()`` equality), and a different seed
  produces a different sequence.
* **Convergence under faults** — link reversal and distributed safety
  labeling are monotone chaotic iterations, so under any seeded
  drop/duplicate/reorder plan with retries they still reach the exact
  fault-free fixpoint (heights *and* per-node reversal counts;
  levels identical to the centralized oracle).
* **Lifecycle faults** — scheduled crash/restart (with and without
  state loss) and link churn heal through retries, and a run that
  cannot converge surfaces its fault ledger in
  :class:`~repro.errors.ConvergenceError`.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.faults import (
    CrashEvent,
    FaultPlan,
    LinkChurn,
    LinkChurnEvent,
    MessageFaults,
    NodeCrashFaults,
    RetryPolicy,
)
from repro.graphs.generators import path_graph
from repro.labeling.safety import compute_safety_levels
from repro.labeling.safety_distributed import distributed_safety_levels
from repro.layering.link_reversal import paper_fig4_graph
from repro.layering.link_reversal_distributed import (
    LinkReversalAlgorithm,
    distributed_full_reversal,
)
from repro.runtime.async_engine import AsyncNetwork
from repro.runtime.engine import Network
from tests.test_runtime import Flood, Spinner

CHAOS = MessageFaults(drop=0.1, duplicate=0.05, reorder=0.2)
RETRY = RetryPolicy(max_retries=10)


def _reversal_network(fault_plan=None):
    graph, destination, heights = paper_fig4_graph()
    network = Network(
        graph,
        lambda node: LinkReversalAlgorithm(
            is_destination=node == destination, height=heights[node]
        ),
        fault_plan=fault_plan,
    )
    network.run(max_rounds=50_000)
    return network, graph


class TestInjectorValidation:
    def test_retry_backoff_is_capped_exponential(self):
        policy = RetryPolicy(max_retries=6, base_delay=1, max_delay=8)
        assert [policy.delay(k) for k in range(6)] == [1, 2, 4, 8, 8, 8]

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            MessageFaults(drop=1.5)
        with pytest.raises(ValueError):
            NodeCrashFaults(rate=-0.1)
        with pytest.raises(ValueError):
            LinkChurn(down=2.0)

    def test_crash_event_restart_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashEvent(node=0, at=5, restart_at=5)

    def test_churn_action_validated(self):
        with pytest.raises(ValueError):
            LinkChurnEvent(at=1, action="sideways", u=0, v=1)

    def test_plan_rejects_unknown_injectors(self):
        with pytest.raises(TypeError):
            FaultPlan(0, ["not-an-injector"])


class TestReplayContract:
    def test_same_plan_replays_byte_identical_ledger(self):
        plan = FaultPlan(42, [CHAOS], retry=RETRY)
        first, _ = _reversal_network(plan)
        second, _ = _reversal_network(plan)
        assert len(first.faults.ledger) > 0
        assert first.faults.ledger.lines() == second.faults.ledger.lines()
        assert first.faults.ledger.digest() == second.faults.ledger.digest()

    def test_different_seed_different_sequence(self):
        first, _ = _reversal_network(FaultPlan(1, [CHAOS], retry=RETRY))
        second, _ = _reversal_network(FaultPlan(2, [CHAOS], retry=RETRY))
        assert first.faults.ledger.digest() != second.faults.ledger.digest()

    def test_ledger_counts_match_metrics_counters(self):
        network, _ = _reversal_network(FaultPlan(42, [CHAOS], retry=RETRY))
        snapshot = network.metrics.snapshot()
        for kind, count in network.faults.summary().items():
            assert snapshot[f"repro.faults.{kind}"] == count

    def test_async_replay_is_deterministic(self):
        def run():
            network = AsyncNetwork(
                path_graph(6),
                lambda node: Flood(0),
                rng=np.random.default_rng(7),
                fault_plan=FaultPlan(42, [CHAOS], retry=RETRY),
            )
            network.run()
            return network

        first, second = run(), run()
        assert all(first.states("informed").values())
        assert first.faults.ledger.lines() == second.faults.ledger.lines()


class TestConvergenceUnderFaults:
    """Monotone protocols reach the fault-free fixpoint under chaos."""

    def test_link_reversal_reaches_fault_free_fixpoint(self):
        graph, destination, heights = paper_fig4_graph()
        _, clean_heights, clean_reversals, _ = distributed_full_reversal(
            graph, destination, heights
        )
        for seed in range(8):
            orientation, faulty_heights, faulty_reversals, _ = (
                distributed_full_reversal(
                    graph,
                    destination,
                    heights,
                    fault_plan=FaultPlan(seed, [CHAOS], retry=RETRY),
                )
            )
            # Full reversal is schedule-independent (abelian): chaos
            # changes the order of reversals, never the outcome.
            assert faulty_heights == clean_heights
            assert faulty_reversals == clean_reversals
            assert orientation.is_destination_oriented(destination)

    def test_safety_labeling_matches_centralized_oracle(self):
        from repro.labeling.safety import paper_fig9_faults

        dimension, faulty = paper_fig9_faults()
        oracle = compute_safety_levels(dimension, faulty)
        for seed in range(8):
            levels, _ = distributed_safety_levels(
                dimension,
                faulty,
                fault_plan=FaultPlan(seed, [CHAOS], retry=RETRY),
            )
            assert levels == oracle.levels

    def test_flood_survives_crash_with_state_loss(self):
        crash = NodeCrashFaults(
            schedule=(CrashEvent(node=3, at=1, restart_at=5, lose_state=True),)
        )
        network = Network(
            path_graph(5),
            lambda node: Flood(0),
            fault_plan=FaultPlan(11, [crash], retry=RETRY),
        )
        network.run()
        assert all(network.states("informed").values())
        summary = network.faults.summary()
        assert summary["crash"] == 1
        assert summary["restart"] == 1

    def test_flood_heals_across_link_churn(self):
        churn = LinkChurn(
            schedule=(
                LinkChurnEvent(at=1, action="down", u=1, v=2),
                LinkChurnEvent(at=4, action="up", u=1, v=2),
            )
        )
        network = Network(
            path_graph(4),
            lambda node: Flood(0),
            fault_plan=FaultPlan(5, [churn], retry=RETRY),
        )
        network.run()
        assert all(network.states("informed").values())
        summary = network.faults.summary()
        assert summary["link_down"] == 1
        assert summary["link_up"] == 1
        assert summary.get("link_drop", 0) >= 1  # the cut actually bit
        assert summary.get("retry", 0) >= 1  # ...and retries healed it

    def test_convergence_error_carries_fault_ledger(self):
        network = Network(
            path_graph(3),
            lambda node: Spinner(),
            fault_plan=FaultPlan(3, [MessageFaults(drop=0.3)], retry=RETRY),
        )
        with pytest.raises(ConvergenceError) as excinfo:
            network.run(max_rounds=10)
        assert excinfo.value.fault_events
        assert excinfo.value.fault_events.get("drop", 0) >= 1
        assert "fault events" in str(excinfo.value)

    def test_retry_exhaustion_is_recorded(self):
        # drop everything, allow one retry: the token can never cross.
        plan = FaultPlan(
            9,
            [MessageFaults(drop=1.0)],
            retry=RetryPolicy(max_retries=1),
        )
        network = Network(path_graph(2), lambda node: Flood(0), fault_plan=plan)
        network.run()
        assert network.states("informed")[1] is False
        assert network.faults.summary()["retry_exhausted"] >= 1
