"""Frozen temporal contact index vs the pure-Python references.

The contract of :mod:`repro.temporal.frozen` (and of the DTN bitset
fast path) is *exact* output equivalence: every routed entry point must
return the same value — foremost-tree parent hops, journey hops,
delivery statistics — as its ``*_reference`` ground truth.  These tests
enforce that on randomized EvolvingGraphs plus the structural edge
cases (no contacts, one contact, disconnected nodes, many contacts in
one time unit, mutation invalidation).
"""

import numpy as np
import pytest

from repro.dtn.routers import DirectDelivery, EpidemicRouter
from repro.dtn.simulator import DTNSimulation, MessageSpec
from repro.observability import tracing
from repro.temporal import connectivity as conn
from repro.temporal import journeys as jour
from repro.temporal import weighted_journeys as wjour
from repro.temporal.evolving import EvolvingGraph
from repro.temporal.frozen import FROZEN_MIN_CONTACTS, FrozenContacts


def random_evolving(seed, n=None, horizon=None, contacts=None, weighted=True):
    """A random weighted EvolvingGraph above the frozen threshold."""
    rng = np.random.default_rng(seed)
    n = n if n is not None else int(rng.integers(5, 25))
    horizon = horizon if horizon is not None else int(rng.integers(3, 40))
    contacts = contacts if contacts is not None else int(rng.integers(80, 300))
    eg = EvolvingGraph(horizon=horizon, nodes=range(n))
    for _ in range(contacts):
        u, v = rng.choice(n, size=2, replace=False)
        weight = float(rng.uniform(0.05, 1.0)) if weighted else None
        eg.add_contact(int(u), int(v), int(rng.integers(0, horizon)), weight)
    return eg


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_journey_kernels_match_reference(seed):
    eg = random_evolving(seed)
    assert eg.num_contacts >= FROZEN_MIN_CONTACTS
    rng = np.random.default_rng(seed + 100)
    for _ in range(4):
        source = int(rng.integers(0, eg.num_nodes))
        start = int(rng.integers(0, eg.horizon))
        assert jour.foremost_tree(eg, source, start) == \
            jour.foremost_tree_reference(eg, source, start)
        assert jour.earliest_arrival(eg, source, start) == \
            jour.earliest_arrival_reference(eg, source, start)
        assert jour.latest_departure(eg, source, start) == \
            jour.latest_departure_reference(eg, source, start)
    # Default-deadline and negative-deadline reverse scans.
    assert jour.latest_departure(eg, 0) == jour.latest_departure_reference(eg, 0)
    assert jour.latest_departure(eg, 0, deadline=-3) == \
        jour.latest_departure_reference(eg, 0, deadline=-3)


@pytest.mark.parametrize("seed", [5, 6, 7])
def test_connectivity_kernels_match_reference(seed):
    eg = random_evolving(seed)
    assert conn.dynamic_diameter(eg) == conn.dynamic_diameter_reference(eg)
    eccentricities = conn.temporal_eccentricities(eg)
    assert set(eccentricities) == set(eg.nodes())
    for node in eg.nodes():
        assert eccentricities[node] == conn.flooding_time_reference(eg, node)
    for start in (0, eg.horizon // 2, eg.horizon - 1):
        assert conn.is_time_i_connected(eg, start) == \
            conn.is_time_i_connected_reference(eg, start)


@pytest.mark.parametrize("seed", [8, 9, 10])
def test_weighted_journeys_match_reference(seed):
    eg = random_evolving(seed)
    rng = np.random.default_rng(seed + 200)
    for _ in range(5):
        s, t = rng.choice(eg.num_nodes, size=2, replace=False)
        s, t = int(s), int(t)
        assert wjour.min_delay_journey(eg, s, t) == \
            wjour.min_delay_journey_reference(eg, s, t)
        assert wjour.most_reliable_journey(eg, s, t) == \
            wjour.most_reliable_journey_reference(eg, s, t)
        assert wjour.max_bandwidth_journey(eg, s, t) == \
            wjour.max_bandwidth_journey_reference(eg, s, t)


# ----------------------------------------------------------------------
# structural edge cases (FrozenContacts built directly, any size)
# ----------------------------------------------------------------------
def test_frozen_on_contactless_graph():
    eg = EvolvingGraph(horizon=4, nodes=["a", "b", "c"])
    fc = eg.frozen()
    assert fc.num_contacts == 0
    assert fc.earliest_arrival("a") == {"a": 0}
    assert fc.foremost_tree("a") == {"a": None}
    assert fc.latest_departure("b", 4) == {"b": 4}
    latest, reached = fc.flooding_stats()
    assert reached.tolist() == [1, 1, 1]


def test_frozen_single_contact():
    eg = EvolvingGraph(horizon=5, nodes=["a", "b", "c"])
    eg.add_contact("a", "b", 2)
    fc = eg.frozen()
    assert fc.earliest_arrival("a") == jour.earliest_arrival_reference(eg, "a")
    assert fc.foremost_tree("a") == jour.foremost_tree_reference(eg, "a")
    assert fc.foremost_tree("c") == {"c": None}
    assert fc.latest_departure("b", 5) == \
        jour.latest_departure_reference(eg, "b", 5)


def test_frozen_disconnected_nodes_stay_unreached():
    eg = random_evolving(11, n=12)
    eg.add_node("isolated")
    fc = eg.frozen()
    assert "isolated" not in fc.earliest_arrival(0)
    assert conn.dynamic_diameter(eg) is None
    assert conn.dynamic_diameter_reference(eg) is None
    assert conn.temporal_eccentricities(eg)["isolated"] is None


def test_frozen_duplicate_contact_times_chain_within_unit():
    # Every contact in one time unit: journeys must chain transitively
    # inside the unit (instantaneous transmission, non-decreasing labels).
    eg = EvolvingGraph(horizon=3, nodes=range(50))
    for i in range(49):
        eg.add_contact(i, i + 1, 1)
    for i in range(0, 48, 2):
        eg.add_contact(i, i + 2, 1)
    assert eg.num_contacts >= FROZEN_MIN_CONTACTS
    assert jour.foremost_tree(eg, 0) == jour.foremost_tree_reference(eg, 0)
    arrival = jour.earliest_arrival(eg, 0)
    assert arrival == jour.earliest_arrival_reference(eg, 0)
    assert all(arrival[node] == 1 for node in range(1, 50))


def test_frozen_cache_invalidation_on_mutation():
    eg = random_evolving(12)
    first = eg.frozen()
    assert eg.frozen() is first  # cached while unchanged
    before_contacts = eg.all_contacts()
    assert eg.all_contacts() == before_contacts

    free = next(
        t for t in range(eg.horizon) if not eg.has_contact(0, 1, t)
    )
    eg.add_contact(0, 1, free, 0.5)
    second = eg.frozen()
    assert second is not first
    assert second.num_contacts == len(eg.all_contacts())
    assert jour.foremost_tree(eg, 0) == jour.foremost_tree_reference(eg, 0)

    eg.remove_contact(0, 1, free)
    assert eg.frozen() is not second
    assert eg.all_contacts() == before_contacts
    assert jour.earliest_arrival(eg, 0) == \
        jour.earliest_arrival_reference(eg, 0)


def test_contacts_from_cache_tracks_mutations():
    eg = random_evolving(13)
    before = eg.contacts_from(0)
    assert eg.contacts_from(0) == before
    free = next(
        t for t in range(eg.horizon) if not eg.has_contact(0, 1, t)
    )
    eg.add_contact(0, 1, free)
    after = eg.contacts_from(0)
    assert (free, 1) in after
    assert len(after) == len(before) + 1
    # not_before bisects the cached list instead of re-scanning.
    cutoff = eg.horizon // 2
    assert eg.contacts_from(0, not_before=cutoff) == \
        [pair for pair in after if pair[0] >= cutoff]


def test_small_graphs_do_not_freeze():
    eg = EvolvingGraph(horizon=4, nodes=["a", "b", "c"])
    eg.add_contact("a", "b", 1)
    eg.add_contact("b", "c", 2)
    assert eg.num_contacts < FROZEN_MIN_CONTACTS
    jour.foremost_tree(eg, "a")
    conn.dynamic_diameter(eg)
    assert eg._frozen is None  # routed entry points stayed on the reference


# ----------------------------------------------------------------------
# DTN bitset fast path
# ----------------------------------------------------------------------
def _random_specs(eg, seed, count=10):
    rng = np.random.default_rng(seed)
    n = eg.num_nodes
    specs = []
    for i in range(count):
        s, d = rng.choice(n, size=2, replace=False)
        created = int(rng.integers(0, eg.horizon))
        ttl = None if rng.random() < 0.3 else int(rng.integers(1, eg.horizon))
        specs.append(
            MessageSpec(f"m{i}", int(s), int(d), created=created, ttl=ttl)
        )
    specs.append(MessageSpec("self", 0, 0, created=0, ttl=3))
    return specs


@pytest.mark.parametrize("seed", [21, 22, 23])
@pytest.mark.parametrize("router_cls", [EpidemicRouter, DirectDelivery])
def test_dtn_fast_path_matches_general_loop(seed, router_cls):
    eg = random_evolving(seed, weighted=False)
    specs = _random_specs(eg, seed + 300)
    sims = {}
    for fast in (True, False):
        sim = DTNSimulation(eg, router_cls(), fast_path=fast)
        for spec in specs:
            sim.add_message(
                MessageSpec(
                    spec.identifier, spec.source, spec.destination,
                    spec.created, spec.ttl,
                )
            )  # fresh specs: MessageState must not leak between runs
        sims[fast] = (sim, sim.run())
    fast_sim, fast_stats = sims[True]
    slow_sim, slow_stats = sims[False]
    assert fast_stats == slow_stats
    for identifier, fast_msg in fast_sim.messages.items():
        slow_msg = slow_sim.messages[identifier]
        assert fast_msg.holders == slow_msg.holders
        assert fast_msg.delivered_at == slow_msg.delivered_at
        assert fast_msg.copies_made == slow_msg.copies_made
        assert fast_msg.hops == slow_msg.hops
    for node in slow_sim._buffers:
        assert sorted(fast_sim._buffers[node]) == sorted(slow_sim._buffers[node])
    for name in ("contacts", "replications", "handovers", "delivered"):
        assert fast_sim.metrics.counter(f"repro.dtn.{name}").value == \
            slow_sim.metrics.counter(f"repro.dtn.{name}").value


def test_dtn_fast_path_eligibility_gate():
    eg = random_evolving(24, weighted=False)

    assert DTNSimulation(eg, EpidemicRouter())._fast_path_eligible()
    assert DTNSimulation(eg, DirectDelivery())._fast_path_eligible()
    # Bounded buffers, tracing, and policy-changing subclasses fall back.
    assert not DTNSimulation(
        eg, EpidemicRouter(), buffer_size=4
    )._fast_path_eligible()
    assert not DTNSimulation(
        eg, EpidemicRouter(), tracer=tracing.Tracer(enabled=True)
    )._fast_path_eligible()

    class CautiousEpidemic(EpidemicRouter):
        def decide(self, message, holder, peer, time):
            from repro.dtn.simulator import Decision

            return Decision.CARRY

    assert not DTNSimulation(eg, CautiousEpidemic())._fast_path_eligible()

    sim = DTNSimulation(eg, EpidemicRouter(), buffer_size=4, fast_path=True)
    with pytest.raises(ValueError):
        sim.run()


def test_dtn_fast_path_auto_threshold():
    small = EvolvingGraph(horizon=4, nodes=["a", "b"])
    small.add_contact("a", "b", 1)
    assert not DTNSimulation(small, EpidemicRouter())._use_fast_path()
    big = random_evolving(25, weighted=False)
    assert DTNSimulation(big, EpidemicRouter())._use_fast_path()
    assert not DTNSimulation(big, EpidemicRouter(), fast_path=False)._use_fast_path()


# ----------------------------------------------------------------------
# discretisation bulk path
# ----------------------------------------------------------------------
def test_bulk_discretisation_matches_reference_loop():
    import math

    from repro.temporal.contacts import ContactTrace

    rng = np.random.default_rng(31)
    trace = ContactTrace()
    for _ in range(120):
        u, v = rng.choice(15, size=2, replace=False)
        start = float(rng.uniform(0, 30))
        trace.add_contact(int(u), int(v), start, start + float(rng.uniform(0.1, 4)))
    assert trace.num_contacts >= FROZEN_MIN_CONTACTS  # takes the bulk path
    bulk = trace.to_evolving(slot=1.0)

    # Replay the sub-threshold reference loop by hand on the same records.
    loop = EvolvingGraph(horizon=bulk.horizon, nodes=trace.nodes)
    for record in trace.records:
        first = int(math.floor(record.start / 1.0))
        last = int(math.ceil(record.end / 1.0)) - 1
        for unit in range(max(0, first), min(bulk.horizon - 1, last) + 1):
            loop.add_contact(record.u, record.v, unit)
    assert loop.all_contacts() == bulk.all_contacts()
    assert set(loop.nodes()) == set(bulk.nodes())
