"""MIS-gateway CDS (footnote 2) and incremental reachability (Sec. IV-C)."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.graphs.generators import (
    complete_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import connected_components
from repro.graphs.unit_disk import random_unit_disk_graph
from repro.labeling.cds import is_connected_dominating_set
from repro.labeling.gateway import cds_size_comparison, mis_based_cds
from repro.labeling.mis import is_independent_set
from repro.temporal.evolving import EvolvingGraph, paper_fig2_evolving_graph
from repro.temporal.incremental import (
    IncrementalReachability,
    incremental_from_contacts,
)
from repro.temporal.journeys import earliest_arrival


class TestMISBasedCDS:
    def test_valid_cds_on_random_graphs(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            g = random_connected_graph(40, 0.08, rng)
            cds, dominators, gateways = mis_based_cds(g)
            assert is_connected_dominating_set(g, cds)
            assert cds == dominators | gateways

    def test_dominators_are_independent(self, rng):
        g = random_connected_graph(30, 0.12, rng)
        _, dominators, _ = mis_based_cds(g)
        assert is_independent_set(g, dominators)

    def test_valid_on_udgs(self):
        for seed in range(4):
            rng = np.random.default_rng(seed + 100)
            g = random_unit_disk_graph(100, 9, 9, 1.7, rng)
            g = g.subgraph(connected_components(g)[0])
            cds, dominators, gateways = mis_based_cds(g)
            assert is_connected_dominating_set(g, cds)
            # UDG: the construction is a constant-factor scheme.
            assert len(cds) <= 4 * len(dominators)

    def test_path_graph(self):
        g = path_graph(7)
        cds, dominators, gateways = mis_based_cds(g)
        assert is_connected_dominating_set(g, cds)

    def test_star_needs_no_gateways(self):
        g = star_graph(6)
        cds, dominators, gateways = mis_based_cds(g)
        assert is_connected_dominating_set(g, cds)

    def test_complete_graph_single_node(self):
        g = complete_graph(5)
        cds, dominators, gateways = mis_based_cds(g)
        assert len(dominators) == 1
        assert gateways == set()

    def test_singleton(self):
        g = Graph()
        g.add_node("only")
        cds, dominators, gateways = mis_based_cds(g)
        assert cds == {"only"}

    def test_disconnected_rejected(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        with pytest.raises(AlgorithmError):
            mis_based_cds(g)

    def test_size_comparison_fields(self, rng):
        g = random_connected_graph(35, 0.1, rng)
        sizes = cds_size_comparison(g)
        assert sizes["mis_cds"] == sizes["mis_dominators"] + sizes["mis_gateways"]
        assert sizes["wu_dai"] <= sizes["marking"]


class TestIncrementalReachability:
    def test_agrees_with_batch_on_random_streams(self):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            eg = EvolvingGraph(horizon=15, nodes=range(12))
            for u in range(12):
                for v in range(u + 1, 12):
                    if rng.random() < 0.25:
                        eg.add_contact(u, v, int(rng.integers(15)))
            stream = [(u, v, t) for t, u, v in eg.all_contacts()]
            engine = incremental_from_contacts(0, stream)
            assert engine.arrival_times() == earliest_arrival(eg, 0)

    def test_agrees_with_nonzero_start(self, rng):
        eg = paper_fig2_evolving_graph()
        stream = [(u, v, t) for t, u, v in eg.all_contacts()]
        engine = incremental_from_contacts("A", stream, start=4)
        assert engine.arrival_times() == earliest_arrival(eg, "A", start=4)

    def test_same_unit_chaining(self):
        engine = IncrementalReachability("a")
        engine.add_contact("b", "c", 1)  # c not yet informed
        improved = engine.add_contact("a", "b", 1)
        assert improved
        # The buffered (b, c) contact at unit 1 must now fire too.
        assert engine.arrival_time("c") == 1

    def test_out_of_order_rejected(self):
        engine = IncrementalReachability(0)
        engine.add_contact(0, 1, 5)
        with pytest.raises(ValueError):
            engine.add_contact(1, 2, 3)

    def test_self_contact_rejected(self):
        engine = IncrementalReachability(0)
        with pytest.raises(ValueError):
            engine.add_contact(1, 1, 0)

    def test_journey_reconstruction_valid(self, rng):
        eg = EvolvingGraph(horizon=10, nodes=range(8))
        for u in range(8):
            for v in range(u + 1, 8):
                if rng.random() < 0.4:
                    eg.add_contact(u, v, int(rng.integers(10)))
        stream = [(u, v, t) for t, u, v in eg.all_contacts()]
        engine = incremental_from_contacts(0, stream)
        for target in engine.reachable_set():
            hops = engine.journey_to(target)
            assert hops is not None
            current, previous_time = 0, 0
            for a, b, t in hops:
                assert a == current
                assert t >= previous_time
                assert eg.has_contact(a, b, t)
                current, previous_time = b, t
            assert current == target

    def test_unreachable_returns_none(self):
        engine = IncrementalReachability("src")
        engine.add_contact("x", "y", 0)
        assert engine.arrival_time("y") is None
        assert engine.journey_to("y") is None

    def test_improvement_counter(self):
        engine = IncrementalReachability(0)
        assert engine.add_contact(0, 1, 0) is True
        assert engine.add_contact(0, 1, 1) is False  # already reached earlier
        assert engine.stats["contacts_processed"] == 2
        assert engine.stats["improvements"] == 1

    def test_contacts_before_start_ignored(self):
        engine = IncrementalReachability(0, start=5)
        assert engine.add_contact(0, 1, 2) is False
        assert engine.arrival_time(1) is None
        assert engine.add_contact(0, 1, 5) is True


# ----------------------------------------------------------------------
# serving gateway (repro.serving) — coalescing, staleness, chaos
# ----------------------------------------------------------------------

import asyncio

from repro.faults.injectors import MessageFaults
from repro.faults.plan import FaultPlan
from repro.graphs.traversal import bfs_distances
from repro.observability.metrics import MetricsRegistry, set_registry
from repro.observability.telemetry import serving_counts
from repro.serving import GraphService, ServingGateway


@pytest.fixture
def registry():
    """Swap in an empty global metrics registry for the test."""
    fresh = MetricsRegistry("test-serving")
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def serving_graph(seed=0, n=30, extra=0.08):
    rng = np.random.default_rng(seed)
    return random_connected_graph(n, extra, rng)


class TestServingGatewayBasics:
    def test_coalesces_same_source_queries(self, registry):
        graph = serving_graph()
        reference = bfs_distances(graph, 0)
        service = GraphService(serving_graph(), landmark_count=2)

        async def main():
            async with ServingGateway(service, max_batch=16) as gateway:
                return await asyncio.gather(
                    *[gateway.distance(0, target) for target in range(1, 13)]
                )

        answers = asyncio.run(main())
        assert answers == [reference.get(t) for t in range(1, 13)]
        counts = serving_counts(registry)
        assert counts["queries"] == {"distance": 12}
        # Twelve point queries sharing one source ride far fewer sweeps.
        assert 0 < counts["sweeps"] < 12
        assert counts["coalesce_ratio"] > 1.0
        assert counts["batches"] >= 1

    def test_mutations_never_yield_stale_answers(self):
        """A query enqueued after a mutation must observe it — the
        synchronous write path guarantees the batch executes against a
        state at least as new as every preceding mutation."""
        graph = Graph([(i, i + 1) for i in range(9)])  # path 0..9
        service = GraphService(graph, landmark_count=1)

        async def main():
            results = []
            async with ServingGateway(service, max_batch=4) as gateway:
                results.append(await gateway.distance(0, 9))  # 9 hops
                gateway.insert_edge(0, 9)  # shortcut
                results.append(await gateway.distance(0, 9))  # 1 hop
                gateway.delete_edge(0, 9)
                results.append(await gateway.distance(0, 9))  # 9 again
            return results

        assert asyncio.run(main()) == [9, 1, 9]

    def test_index_queries_through_gateway(self):
        graph = serving_graph(seed=3)
        service = GraphService(serving_graph(seed=3), landmark_count=3)

        async def main():
            async with ServingGateway(service) as gateway:
                gateway.insert_edge("fresh", 0)
                level = await gateway.nsf_level("fresh")
                label = await gateway.gateway_label("fresh")
            return level, label

        level, label = asyncio.run(main())
        graph.add_edge("fresh", 0)
        from repro.labeling.landmarks import (
            distance_gateway_labels_reference,
        )
        from repro.layering.nsf import nsf_levels_reference

        assert level == nsf_levels_reference(graph)["fresh"]
        assert label == distance_gateway_labels_reference(
            graph, service.landmarks
        )["fresh"]

    def test_stop_answers_everything_in_flight(self):
        service = GraphService(serving_graph(seed=1), landmark_count=2)

        async def main():
            gateway = ServingGateway(service, max_batch=64, max_delay=5.0)
            gateway.start()
            tasks = [
                asyncio.ensure_future(gateway.distance(0, t))
                for t in range(1, 8)
            ]
            await asyncio.sleep(0)  # let the queue fill, not the deadline
            await gateway.stop()
            return await asyncio.gather(*tasks)

        answers = asyncio.run(main())
        assert all(a is not None for a in answers)

    def test_unknown_node_error_is_delivered(self):
        service = GraphService(serving_graph(seed=2), landmark_count=2)

        async def main():
            async with ServingGateway(service) as gateway:
                with pytest.raises(Exception) as caught:
                    await gateway.distance(0, "no-such-node")
            return caught

        caught = asyncio.run(main())
        assert "no-such-node" in str(caught.value)


class TestServingGatewayChaos:
    """The gateway under repro.faults: delayed and reordered
    completions and mid-batch crashes must never lose a query nor
    answer one from a stale pre-patch snapshot."""

    def run_chaos(self, plan, registry, queries=24, seed=4):
        graph = serving_graph(seed=seed)
        reference = bfs_distances(graph, 0)
        graph2 = serving_graph(seed=seed)
        service = GraphService(graph2, landmark_count=2)

        async def main():
            async with ServingGateway(
                service, max_batch=6, max_delay=0.002, faults=plan
            ) as gateway:
                return await asyncio.gather(
                    *[
                        gateway.distance(0, target % service.patched.n)
                        for target in range(1, queries + 1)
                    ]
                )

        answers = asyncio.run(main())
        expected = [
            reference.get(t % len(list(graph.nodes())))
            for t in range(1, queries + 1)
        ]
        return answers, expected

    def test_mid_batch_crash_retries_and_answers_all(self, registry):
        plan = FaultPlan(11, injectors=(MessageFaults(drop=0.3),))
        answers, expected = self.run_chaos(plan, registry)
        assert answers == expected  # every query answered, correctly
        counts = serving_counts(registry)
        assert counts["retries"] > 0  # crashes actually happened

    def test_reordered_completions_answer_all(self, registry):
        plan = FaultPlan(12, injectors=(MessageFaults(reorder=0.8),))
        answers, expected = self.run_chaos(plan, registry)
        assert answers == expected

    def test_delayed_completions_answer_all(self, registry):
        plan = FaultPlan(
            13, injectors=(MessageFaults(delay=0.5, max_delay=3),)
        )
        answers, expected = self.run_chaos(plan, registry)
        assert answers == expected

    def test_full_chaos_with_interleaved_mutations(self, registry):
        """Crash + reorder + delay while the topology churns: answers
        must track the then-current state, never a stale snapshot."""
        plan = FaultPlan(
            17,
            injectors=(
                MessageFaults(drop=0.2, delay=0.3, max_delay=2, reorder=0.5),
            ),
        )
        graph = Graph([(i, i + 1) for i in range(9)])
        service = GraphService(graph, landmark_count=1)

        async def main():
            results = []
            async with ServingGateway(
                service, max_batch=4, max_delay=0.002, faults=plan
            ) as gateway:
                for round_index in range(6):
                    gateway.insert_edge(0, 9)
                    results.append(await gateway.distance(0, 9))
                    gateway.delete_edge(0, 9)
                    results.append(await gateway.distance(0, 9))
            return results

        results = asyncio.run(main())
        assert results == [1, 9] * 6
        assert serving_counts(registry)["retries"] > 0


class TestServingGatewayResilience:
    """Failures inside the dispatcher itself must never strand a
    caller, and a mid-batch mutation must never be answered from the
    pre-mutation sweep cache."""

    def test_dispatcher_crash_fails_pending_queries(self, monkeypatch):
        """An exception escaping a flush (here: the batch telemetry
        hook) kills the dispatcher; every in-flight and queued future
        must fail instead of hanging, later submissions must fail
        fast, and stop() must re-raise instead of blocking."""
        service = GraphService(serving_graph(seed=5), landmark_count=2)

        def boom(*args, **kwargs):
            raise RuntimeError("telemetry backend exploded")

        monkeypatch.setattr(
            "repro.serving.gateway.record_serving_batch", boom
        )

        async def main():
            gateway = ServingGateway(service, max_batch=4, max_delay=0.001)
            gateway.start()
            tasks = [
                asyncio.ensure_future(gateway.distance(0, target))
                for target in range(1, 6)
            ]
            answers = await asyncio.gather(*tasks, return_exceptions=True)
            with pytest.raises(RuntimeError):
                await gateway.distance(0, 1)  # fail fast, no hang
            with pytest.raises(RuntimeError, match="exploded"):
                await gateway.stop()
            return answers

        answers = asyncio.run(main())
        assert answers and all(
            isinstance(a, RuntimeError) for a in answers
        )

    def test_mid_batch_mutation_invalidates_sweep_cache(self):
        """A same-source distance answered after a mid-batch mutation
        must recompute the sweep: a current index into the stale
        pre-mutation array reads a wrong level, or past the end for a
        node added mid-batch (regression: IndexError)."""
        from repro.serving.gateway import _Request

        service = GraphService(serving_graph(seed=6), landmark_count=2)
        gateway = ServingGateway(service)
        levels = {}
        first = gateway._answer(
            _Request(1, "distance", (0, 1), future=None), levels
        )
        assert first is not None
        # A concurrent task mutates the service while the dispatcher
        # is parked on a delay fate: the cached sweep predates "late".
        service.insert_edge("late", 0)
        second = gateway._answer(
            _Request(2, "distance", (0, "late"), future=None), levels
        )
        assert second == 1


class TestBatchedWritesUnderChaos:
    """Fire-and-forget ``apply_batch`` bursts under drop/reorder/delay:
    read-your-writes must hold — a query submitted after a burst sees
    every one of its mutations — and every unawaited write future must
    still resolve with its outcome, exactly once."""

    CHAOS_SEEDS = [21, 22, 23, 24, 25, 26]

    @pytest.mark.parametrize("fault_seed", CHAOS_SEEDS)
    def test_read_your_writes_with_unawaited_futures(
        self, registry, fault_seed
    ):
        plan = FaultPlan(
            fault_seed,
            injectors=(
                MessageFaults(drop=0.25, delay=0.3, max_delay=2, reorder=0.5),
            ),
        )
        rng = np.random.default_rng(fault_seed)
        mirror = serving_graph(seed=7)
        service = GraphService(serving_graph(seed=7), landmark_count=2)
        n = service.patched.n

        async def main():
            observed = []
            writes = []
            async with ServingGateway(
                service, max_batch=4, max_delay=0.002, faults=plan
            ) as gateway:
                for _round in range(8):
                    inserts, deletes = [], []
                    for _ in range(3):
                        u, v = rng.choice(n, size=2, replace=False)
                        u, v = int(u), int(v)
                        if mirror.has_edge(u, v):
                            mirror.remove_edge(u, v)
                            deletes.append((u, v))
                        else:
                            mirror.add_edge(u, v)
                            inserts.append((u, v))
                    # Unawaited: the query below must still see them.
                    writes.append(gateway.apply_batch(inserts, deletes))
                    source = int(rng.integers(n))
                    target = int(rng.integers(n))
                    expected = bfs_distances(mirror, source).get(target)
                    observed.append(
                        (await gateway.distance(source, target), expected)
                    )
                outcomes = await asyncio.gather(*writes)
            return observed, outcomes

        observed, outcomes = asyncio.run(main())
        for got, expected in observed:
            assert got == expected
        # Every fire-and-forget write resolved with its batch outcome,
        # applied exactly once (3 ops per round, all state-changing).
        assert [o["ops"] for o in outcomes] == [3] * 8
        assert [o["changed"] for o in outcomes] == [3] * 8
        assert service.has_edge is not None  # service survived chaos

    def test_per_request_error_isolation(self):
        """A bad delete fails only its own apply_batch request; other
        requests coalesced into the same flush still land."""
        from repro.errors import EdgeNotFoundError

        service = GraphService(Graph([(i, i + 1) for i in range(9)]),
                               landmark_count=1)

        async def main():
            async with ServingGateway(service, max_batch=8) as gateway:
                good = gateway.apply_batch([(0, 9)], [])
                bad = gateway.apply_batch([], [(0, 7)])  # absent edge
                distance = await gateway.distance(0, 9)
                good_result = await good
                with pytest.raises(EdgeNotFoundError):
                    await bad
            return distance, good_result

        distance, good_result = asyncio.run(main())
        assert distance == 1  # the good batch landed
        assert good_result == {"ops": 1, "changed": 1}


class TestAdaptiveDeadline:
    def test_flush_delay_policy(self, registry):
        """Unknown arrival rate falls back to the static deadline; a
        fast EWMA waits only the predicted fill time; a slow one
        flushes immediately (coalescing would not pay for the wait)."""
        service = GraphService(serving_graph(), landmark_count=1)
        gateway = ServingGateway(service, max_batch=8, max_delay=0.005)
        assert gateway._flush_delay(4) == 0.005
        gateway._gap_ewma = 0.0001
        assert gateway._flush_delay(4) == pytest.approx(0.0004)
        assert gateway._flush_delay(8) == 0.0  # batch already full
        gateway._gap_ewma = 0.01  # slower than the deadline allows
        assert gateway._flush_delay(4) == 0.0
        deadlines = serving_counts(registry)
        assert deadlines is not None

    def test_arrival_ewma_converges(self):
        """Submissions at a steady cadence drive the EWMA toward the
        true gap, and the first gap seeds it exactly."""
        service = GraphService(serving_graph(), landmark_count=1)

        async def main():
            gateway = ServingGateway(service, max_batch=64, max_delay=5.0)
            gateway.start()
            gateway.insert_edge("a0", 0)
            first = gateway._gap_ewma
            for i in range(1, 12):
                await asyncio.sleep(0.001)
                gateway.insert_edge(f"a{i}", 0)
            ewma = gateway._gap_ewma
            await gateway.stop()
            return first, ewma

        first, ewma = asyncio.run(main())
        assert first is None  # one arrival has no gap yet
        assert ewma is not None and 0 < ewma < 0.1


class TestWriterFairness:
    """Per-writer round-robin draining of the mutation lanes."""

    def test_lone_writer_acknowledged_in_first_flush(self, registry):
        """A hot writer flooding its lane cannot delay a lone writer's
        single mutation beyond one flush: round-robin admits the lone
        lane into the very first batch, so its acknowledgment lands
        within the first ``max_batch`` completions."""
        service = GraphService(serving_graph(), landmark_count=1)
        max_batch = 4

        async def main():
            completions = []
            async with ServingGateway(
                service, max_batch=max_batch, max_delay=0.0
            ) as gateway:
                hot = [
                    gateway.insert_edge(f"h{i}", 0, writer="hot")
                    for i in range(10 * max_batch)
                ]
                lone = gateway.insert_edge("lone", 0, writer="lone")
                for i, future in enumerate(hot):
                    future.add_done_callback(
                        lambda _, i=i: completions.append(("hot", i))
                    )
                lone.add_done_callback(lambda _: completions.append(("lone",)))
                assert await lone is True
                await asyncio.gather(*hot)
            return completions

        completions = asyncio.run(main())
        # Acknowledged inside the first flush's batch (FIFO draining
        # would park it behind all 40 hot mutations, ~10 flushes out).
        assert completions.index(("lone",)) < max_batch

    def test_round_robin_interleaves_waiting_writers(self, registry):
        """With several backlogged lanes, each flush takes one request
        per lane per turn — acknowledgments interleave writers instead
        of draining one lane to exhaustion."""
        service = GraphService(serving_graph(), landmark_count=1)

        async def main():
            completions = []
            async with ServingGateway(
                service, max_batch=6, max_delay=0.0
            ) as gateway:
                futures = []
                for i in range(4):
                    for writer in ("a", "b"):
                        future = gateway.insert_edge(
                            f"{writer}{i}", 0, writer=writer
                        )
                        future.add_done_callback(
                            lambda _, w=writer, i=i: completions.append((w, i))
                        )
                        futures.append(future)
                await asyncio.gather(*futures)
            return completions

        completions = asyncio.run(main())
        # First flush holds three turns of (a, b) — strict alternation.
        assert completions[:6] == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)
        ]

    def test_writers_histogram_counts_distinct_lanes(self, registry):
        """Every write barrier observes how many distinct writers it
        drained into ``repro.serving.batch.writers``."""
        from repro.observability.telemetry import SERVING_WRITERS_METRIC

        service = GraphService(serving_graph(), landmark_count=1)

        async def main():
            async with ServingGateway(
                service, max_batch=16, max_delay=0.0
            ) as gateway:
                futures = [
                    gateway.insert_edge(f"n{i}", 0, writer=f"w{i % 3}")
                    for i in range(9)
                ]
                await asyncio.gather(*futures)

        asyncio.run(main())
        values = registry.histogram(SERVING_WRITERS_METRIC).values
        assert values, "write barrier never recorded its writer count"
        assert max(values) == 3.0

    def test_untagged_mutations_share_default_lane(self, registry):
        """The writer tag is optional: untagged writes keep working and
        land on one shared default lane."""
        service = GraphService(serving_graph(), landmark_count=1)

        async def main():
            async with ServingGateway(service, max_batch=8) as gateway:
                first = gateway.insert_edge("p", 0)
                second = gateway.insert_edge("q", 0, writer="tagged")
                return await asyncio.gather(first, second)

        assert asyncio.run(main()) == [True, True]
