"""MIS-gateway CDS (footnote 2) and incremental reachability (Sec. IV-C)."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.graphs.generators import (
    complete_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import connected_components
from repro.graphs.unit_disk import random_unit_disk_graph
from repro.labeling.cds import is_connected_dominating_set
from repro.labeling.gateway import cds_size_comparison, mis_based_cds
from repro.labeling.mis import is_independent_set
from repro.temporal.evolving import EvolvingGraph, paper_fig2_evolving_graph
from repro.temporal.incremental import (
    IncrementalReachability,
    incremental_from_contacts,
)
from repro.temporal.journeys import earliest_arrival


class TestMISBasedCDS:
    def test_valid_cds_on_random_graphs(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            g = random_connected_graph(40, 0.08, rng)
            cds, dominators, gateways = mis_based_cds(g)
            assert is_connected_dominating_set(g, cds)
            assert cds == dominators | gateways

    def test_dominators_are_independent(self, rng):
        g = random_connected_graph(30, 0.12, rng)
        _, dominators, _ = mis_based_cds(g)
        assert is_independent_set(g, dominators)

    def test_valid_on_udgs(self):
        for seed in range(4):
            rng = np.random.default_rng(seed + 100)
            g = random_unit_disk_graph(100, 9, 9, 1.7, rng)
            g = g.subgraph(connected_components(g)[0])
            cds, dominators, gateways = mis_based_cds(g)
            assert is_connected_dominating_set(g, cds)
            # UDG: the construction is a constant-factor scheme.
            assert len(cds) <= 4 * len(dominators)

    def test_path_graph(self):
        g = path_graph(7)
        cds, dominators, gateways = mis_based_cds(g)
        assert is_connected_dominating_set(g, cds)

    def test_star_needs_no_gateways(self):
        g = star_graph(6)
        cds, dominators, gateways = mis_based_cds(g)
        assert is_connected_dominating_set(g, cds)

    def test_complete_graph_single_node(self):
        g = complete_graph(5)
        cds, dominators, gateways = mis_based_cds(g)
        assert len(dominators) == 1
        assert gateways == set()

    def test_singleton(self):
        g = Graph()
        g.add_node("only")
        cds, dominators, gateways = mis_based_cds(g)
        assert cds == {"only"}

    def test_disconnected_rejected(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        with pytest.raises(AlgorithmError):
            mis_based_cds(g)

    def test_size_comparison_fields(self, rng):
        g = random_connected_graph(35, 0.1, rng)
        sizes = cds_size_comparison(g)
        assert sizes["mis_cds"] == sizes["mis_dominators"] + sizes["mis_gateways"]
        assert sizes["wu_dai"] <= sizes["marking"]


class TestIncrementalReachability:
    def test_agrees_with_batch_on_random_streams(self):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            eg = EvolvingGraph(horizon=15, nodes=range(12))
            for u in range(12):
                for v in range(u + 1, 12):
                    if rng.random() < 0.25:
                        eg.add_contact(u, v, int(rng.integers(15)))
            stream = [(u, v, t) for t, u, v in eg.all_contacts()]
            engine = incremental_from_contacts(0, stream)
            assert engine.arrival_times() == earliest_arrival(eg, 0)

    def test_agrees_with_nonzero_start(self, rng):
        eg = paper_fig2_evolving_graph()
        stream = [(u, v, t) for t, u, v in eg.all_contacts()]
        engine = incremental_from_contacts("A", stream, start=4)
        assert engine.arrival_times() == earliest_arrival(eg, "A", start=4)

    def test_same_unit_chaining(self):
        engine = IncrementalReachability("a")
        engine.add_contact("b", "c", 1)  # c not yet informed
        improved = engine.add_contact("a", "b", 1)
        assert improved
        # The buffered (b, c) contact at unit 1 must now fire too.
        assert engine.arrival_time("c") == 1

    def test_out_of_order_rejected(self):
        engine = IncrementalReachability(0)
        engine.add_contact(0, 1, 5)
        with pytest.raises(ValueError):
            engine.add_contact(1, 2, 3)

    def test_self_contact_rejected(self):
        engine = IncrementalReachability(0)
        with pytest.raises(ValueError):
            engine.add_contact(1, 1, 0)

    def test_journey_reconstruction_valid(self, rng):
        eg = EvolvingGraph(horizon=10, nodes=range(8))
        for u in range(8):
            for v in range(u + 1, 8):
                if rng.random() < 0.4:
                    eg.add_contact(u, v, int(rng.integers(10)))
        stream = [(u, v, t) for t, u, v in eg.all_contacts()]
        engine = incremental_from_contacts(0, stream)
        for target in engine.reachable_set():
            hops = engine.journey_to(target)
            assert hops is not None
            current, previous_time = 0, 0
            for a, b, t in hops:
                assert a == current
                assert t >= previous_time
                assert eg.has_contact(a, b, t)
                current, previous_time = b, t
            assert current == target

    def test_unreachable_returns_none(self):
        engine = IncrementalReachability("src")
        engine.add_contact("x", "y", 0)
        assert engine.arrival_time("y") is None
        assert engine.journey_to("y") is None

    def test_improvement_counter(self):
        engine = IncrementalReachability(0)
        assert engine.add_contact(0, 1, 0) is True
        assert engine.add_contact(0, 1, 1) is False  # already reached earlier
        assert engine.stats["contacts_processed"] == 2
        assert engine.stats["improvements"] == 1

    def test_contacts_before_start_ignored(self):
        engine = IncrementalReachability(0, start=5)
        assert engine.add_contact(0, 1, 2) is False
        assert engine.arrival_time(1) is None
        assert engine.add_contact(0, 1, 5) is True
