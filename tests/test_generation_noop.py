"""No-op mutations must not bump mutation generations.

The frozen-snapshot caches (``Graph._frozen`` / ``EvolvingGraph``'s
``FrozenContacts``) are keyed by the owner's ``_generation``; a
mutation call that changes nothing must therefore leave the generation
alone, or every duplicate insert silently costs a full O(n + m)
refreeze on the next query.  These tests pin the invariant the way a
caller observes it: by counting ``repro.cache.frozen`` events — a
no-op between two ``frozen()`` calls must produce a *hit*, never a
*refreeze*.

Regression coverage for the ``EvolvingGraph.add_contact`` /
``_bulk_add_contacts`` fix (both bumped unconditionally); the
``Graph`` / ``DiGraph`` paths were already guarded and are pinned here
so they stay that way.
"""

import pytest

from repro.graphs.graph import DiGraph, Graph
from repro.observability.metrics import MetricsRegistry, set_registry
from repro.observability.telemetry import cache_counts
from repro.temporal.evolving import EvolvingGraph


@pytest.fixture
def registry():
    """Swap in an empty global metrics registry for the test."""
    fresh = MetricsRegistry("test-generation-noop")
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def refreezes(registry, owner):
    return cache_counts(registry).get(owner, {}).get("refreeze", 0)


class TestGraphNoops:
    def test_duplicate_add_edge_is_a_cache_hit(self, registry):
        graph = Graph([(0, 1), (1, 2), (2, 3)])
        graph.frozen()  # miss
        graph.add_edge(0, 1)  # duplicate: must not bump
        graph.add_edge(1, 0)  # reversed duplicate: same edge
        graph.frozen()  # must be a hit
        assert cache_counts(registry)["Graph"] == {"miss": 1, "hit": 1}

    def test_existing_add_node_is_a_cache_hit(self, registry):
        graph = Graph([(0, 1)])
        graph.frozen()
        graph.add_node(0)
        graph.frozen()
        assert refreezes(registry, "Graph") == 0

    def test_real_mutation_still_refreezes(self, registry):
        graph = Graph([(0, 1), (1, 2)])
        graph.frozen()
        graph.add_edge(0, 2)
        graph.frozen()
        assert refreezes(registry, "Graph") == 1

    def test_digraph_duplicate_add_edge_is_a_cache_hit(self, registry):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.frozen()
        graph.add_edge("a", "b")
        graph.frozen()
        assert cache_counts(registry)["DiGraph"] == {"miss": 1, "hit": 1}


class TestEvolvingGraphNoops:
    def eg(self):
        eg = EvolvingGraph(horizon=10, nodes=range(4))
        eg.add_contact(0, 1, 2)
        eg.add_contact(1, 2, 3, weight=2.5)
        return eg

    def test_duplicate_contact_is_a_cache_hit(self, registry):
        eg = self.eg()
        eg.frozen()
        eg.add_contact(0, 1, 2)  # same contact, no weight
        eg.add_contact(1, 0, 2)  # reversed: same edge key
        eg.add_contact(1, 2, 3, weight=2.5)  # same weight
        eg.frozen()
        assert cache_counts(registry)["EvolvingGraph"] == {
            "miss": 1,
            "hit": 1,
        }

    def test_new_time_label_still_refreezes(self, registry):
        eg = self.eg()
        eg.frozen()
        eg.add_contact(0, 1, 5)
        eg.frozen()
        assert refreezes(registry, "EvolvingGraph") == 1

    def test_changed_weight_still_refreezes(self, registry):
        """FrozenContacts captures weights, so a weight *change* on an
        existing contact must invalidate the snapshot."""
        eg = self.eg()
        eg.frozen()
        eg.add_contact(1, 2, 3, weight=9.0)
        eg.frozen()
        assert refreezes(registry, "EvolvingGraph") == 1

    def test_first_weight_on_unweighted_contact_refreezes(self, registry):
        eg = self.eg()
        eg.frozen()
        eg.add_contact(0, 1, 2, weight=1.5)
        eg.frozen()
        assert refreezes(registry, "EvolvingGraph") == 1

    def test_bulk_all_duplicates_is_a_cache_hit(self, registry):
        eg = self.eg()
        eg.frozen()
        eg._bulk_add_contacts([(0, 1, 2), (1, 2, 3), (0, 1, 2)])
        eg.frozen()
        assert cache_counts(registry)["EvolvingGraph"] == {
            "miss": 1,
            "hit": 1,
        }

    def test_bulk_with_one_new_contact_refreezes_once(self, registry):
        eg = self.eg()
        generation = eg._generation
        eg.frozen()
        eg._bulk_add_contacts([(0, 1, 2), (2, 3, 4), (1, 2, 3)])
        eg.frozen()
        assert refreezes(registry, "EvolvingGraph") == 1
        # One bump for the whole batch, not one per novel item.
        assert eg._generation == generation + 1

    def test_duplicate_contact_generation_stable(self):
        eg = self.eg()
        generation = eg._generation
        eg.add_contact(0, 1, 2)
        assert eg._generation == generation
