"""Random-graph generators and structural metrics."""

import numpy as np
import pytest

from repro.graphs.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    grid_2d,
    kleinberg_grid,
    manhattan,
    path_graph,
    random_connected_graph,
    random_tree,
    star_graph,
    watts_strogatz,
)
from repro.graphs.graph import DiGraph, Graph
from repro.graphs.metrics import (
    average_clustering,
    average_degree,
    betweenness_centrality,
    closeness_centrality,
    clustering_coefficient,
    degree_centrality,
    degree_histogram,
    degree_sequence,
    eigenvector_centrality,
    fit_power_law,
    fit_power_law_auto_kmin,
    is_scale_free,
)
from repro.graphs.traversal import is_connected


class TestGenerators:
    def test_erdos_renyi_bounds(self, rng):
        g = erdos_renyi(50, 0.1, rng)
        assert g.num_nodes == 50
        assert 0 < g.num_edges < 50 * 49 / 2

    def test_erdos_renyi_extremes(self, rng):
        assert erdos_renyi(10, 0.0, rng).num_edges == 0
        assert erdos_renyi(10, 1.0, rng).num_edges == 45

    def test_erdos_renyi_bad_p(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5, rng)

    def test_barabasi_albert_edge_count(self, rng):
        g = barabasi_albert(100, 3, rng)
        assert g.num_nodes == 100
        # seed star (m edges) + m per newcomer
        assert g.num_edges == 3 + 3 * (100 - 4)

    def test_barabasi_albert_connected(self, rng):
        assert is_connected(barabasi_albert(200, 2, rng))

    def test_barabasi_albert_validation(self, rng):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3, rng)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0, rng)

    def test_watts_strogatz_ring_degree(self, rng):
        g = watts_strogatz(20, 4, 0.0, rng)
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_watts_strogatz_rewiring_keeps_count(self, rng):
        g = watts_strogatz(30, 4, 0.5, rng)
        assert g.num_edges == 60

    def test_watts_strogatz_validation(self, rng):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1, rng)  # odd k

    def test_grid_structure(self):
        g = grid_2d(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4
        assert g.degree((0, 0)) == 2
        assert g.degree((1, 1)) == 4

    def test_kleinberg_grid_has_long_range(self, rng):
        # One long-range draw per node; draws landing on an existing
        # lattice neighbor are absorbed (Kleinberg's model allows
        # duplicates), so only a fraction materialise on a small grid.
        g = kleinberg_grid(6, 2.0, rng)
        long_range = [e for e in g.edges() if g.edge_attr(*e, "long_range")]
        assert len(long_range) >= 10

    def test_manhattan(self):
        assert manhattan((0, 0), (2, 3)) == 5

    def test_path_star_complete(self):
        assert path_graph(5).num_edges == 4
        assert star_graph(6).num_edges == 6
        assert complete_graph(5).num_edges == 10

    def test_random_tree_is_tree(self, rng):
        t = random_tree(40, rng)
        assert t.num_edges == 39
        assert is_connected(t)

    def test_random_connected_graph_connected(self, rng):
        g = random_connected_graph(60, 0.05, rng)
        assert is_connected(g)


class TestMetrics:
    def test_degree_sequence_sorted(self):
        g = star_graph(4)
        assert degree_sequence(g) == [4, 1, 1, 1, 1]

    def test_degree_histogram(self):
        g = star_graph(3)
        assert degree_histogram(g) == {3: 1, 1: 3}

    def test_average_degree(self):
        g = complete_graph(4)
        assert average_degree(g) == 3.0

    def test_power_law_fit_recovers_exponent(self, rng):
        # Sample from a discrete power law alpha = 2.5 via inverse CDF.
        # The (kmin - 0.5)-shift MLE is accurate for kmin >= 3 (Clauset
        # et al.); at kmin = 1 it is known to be biased, so fit the tail.
        alpha = 2.5
        u = rng.random(40000)
        samples = np.floor((1 - u) ** (-1 / (alpha - 1))).astype(int)
        samples = samples[samples >= 1]
        fit = fit_power_law(samples.tolist(), kmin=3)
        assert abs(fit.alpha - alpha) < 0.2

    def test_power_law_fit_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_power_law([3], kmin=1)

    def test_auto_kmin_runs(self, rng):
        g = barabasi_albert(500, 3, rng)
        fit = fit_power_law_auto_kmin(degree_sequence(g))
        assert 1.5 < fit.alpha < 4.5

    def test_ba_is_scale_free(self, rng):
        assert is_scale_free(barabasi_albert(800, 3, rng), kmin=3)

    def test_grid_not_scale_free(self):
        assert not is_scale_free(grid_2d(10, 10))

    def test_degree_centrality(self):
        g = star_graph(4)
        c = degree_centrality(g)
        assert c[0] == 1.0
        assert c[1] == pytest.approx(0.25)

    def test_closeness_center_of_star_max(self):
        g = star_graph(5)
        c = closeness_centrality(g)
        assert c[0] == max(c.values())

    def test_betweenness_path_midpoint(self):
        g = path_graph(3)
        b = betweenness_centrality(g, normalized=True)
        assert b[1] == pytest.approx(1.0)
        assert b[0] == pytest.approx(0.0)

    def test_betweenness_matches_known_star(self):
        g = star_graph(4)
        b = betweenness_centrality(g, normalized=True)
        assert b[0] == pytest.approx(1.0)

    def test_eigenvector_symmetry(self):
        g = complete_graph(4)
        e = eigenvector_centrality(g)
        values = list(e.values())
        assert max(values) - min(values) < 1e-6

    def test_clustering_triangle(self):
        g = complete_graph(3)
        assert clustering_coefficient(g, 0) == 1.0

    def test_clustering_star_zero(self):
        g = star_graph(5)
        assert clustering_coefficient(g, 0) == 0.0
        assert average_clustering(g) == 0.0

    def test_directed_degree_sequence(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert degree_sequence(g) == [2, 1, 1]
