"""Unit tests for the adjacency-set graph containers."""

import pytest

from repro.errors import EdgeNotFoundError, NodeNotFoundError
from repro.graphs.graph import DiGraph, Graph


class TestGraphNodes:
    def test_add_node(self):
        g = Graph()
        g.add_node("a")
        assert g.has_node("a")
        assert g.num_nodes == 1

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_add_node_merges_attrs(self):
        g = Graph()
        g.add_node("a", color="red")
        g.add_node("a", size=3)
        assert g.node_attr("a", "color") == "red"
        assert g.node_attr("a", "size") == 3

    def test_node_attr_default(self):
        g = Graph()
        g.add_node("a")
        assert g.node_attr("a", "missing", 42) == 42

    def test_node_attr_missing_node_raises(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.node_attr("ghost", "x")

    def test_remove_node_drops_incident_edges(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.remove_node("b")
        assert not g.has_node("b")
        assert g.num_edges == 0
        assert g.has_node("a") and g.has_node("c")

    def test_remove_missing_node_raises(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node("ghost")

    def test_contains_and_iter(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        assert 1 in g
        assert sorted(g) == [1, 2]
        assert len(g) == 2


class TestGraphEdges:
    def test_add_edge_adds_endpoints(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.has_node("a") and g.has_node("b")
        assert g.has_edge("a", "b") and g.has_edge("b", "a")

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_edge_attrs_symmetric(self):
        g = Graph()
        g.add_edge("a", "b", weight=2.5)
        assert g.edge_attr("a", "b", "weight") == 2.5
        assert g.edge_attr("b", "a", "weight") == 2.5

    def test_set_edge_attr(self):
        g = Graph()
        g.add_edge("a", "b")
        g.set_edge_attr("b", "a", "weight", 7)
        assert g.edge_attr("a", "b", "weight") == 7

    def test_remove_edge(self):
        g = Graph()
        g.add_edge("a", "b")
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.has_node("a")

    def test_remove_missing_edge_raises(self):
        g = Graph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge("a", "b")

    def test_edges_iterates_once_per_edge(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert len(list(g.edges())) == 2
        assert g.num_edges == 2

    def test_parallel_edge_merges(self):
        g = Graph()
        g.add_edge("a", "b", weight=1)
        g.add_edge("b", "a", weight=2)
        assert g.num_edges == 1
        assert g.edge_attr("a", "b", "weight") == 2


class TestGraphNeighborhoods:
    def test_neighbors_returns_copy(self):
        g = Graph()
        g.add_edge("a", "b")
        neighbors = g.neighbors("a")
        neighbors.add("z")
        assert g.neighbors("a") == {"b"}

    def test_closed_neighbors(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.closed_neighbors("a") == {"a", "b"}

    def test_degree(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        assert g.degree("a") == 2
        assert g.degree("c") == 1

    def test_k_hop_neighbors(self):
        g = Graph()
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            g.add_edge(u, v)
        assert g.k_hop_neighbors(0, 1) == {1}
        assert g.k_hop_neighbors(0, 2) == {1, 2}
        assert g.k_hop_neighbors(0, 10) == {1, 2, 3, 4}

    def test_k_hop_excludes_self(self):
        g = Graph()
        g.add_edge("a", "b")
        assert "a" not in g.k_hop_neighbors("a", 3)


class TestGraphWholeOps:
    def test_copy_is_independent(self):
        g = Graph()
        g.add_edge("a", "b", weight=1)
        clone = g.copy()
        clone.add_edge("b", "c")
        assert not g.has_node("c")
        assert clone.edge_attr("a", "b", "weight") == 1

    def test_subgraph_induced(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        sub = g.subgraph({1, 2})
        assert sub.num_nodes == 2
        assert sub.has_edge(1, 2)
        assert not sub.has_node(3)

    def test_subgraph_missing_node_raises(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(NodeNotFoundError):
            g.subgraph({1, 99})

    def test_to_directed_doubles_edges(self):
        g = Graph()
        g.add_edge("a", "b")
        dg = g.to_directed()
        assert dg.has_edge("a", "b") and dg.has_edge("b", "a")
        assert dg.num_edges == 2


class TestDiGraph:
    def test_directed_edges_one_way(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_successors_predecessors(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("c", "b")
        assert g.successors("a") == {"b"}
        assert g.predecessors("b") == {"a", "c"}
        assert g.out_degree("a") == 1
        assert g.in_degree("b") == 2

    def test_self_loop_rejected(self):
        g = DiGraph()
        with pytest.raises(ValueError):
            g.add_edge("x", "x")

    def test_remove_node_cleans_both_directions(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.remove_node("b")
        assert g.num_edges == 0
        assert g.successors("a") == set()
        assert g.predecessors("c") == set()

    def test_reverse(self):
        g = DiGraph()
        g.add_edge("a", "b", weight=5)
        rev = g.reverse()
        assert rev.has_edge("b", "a")
        assert not rev.has_edge("a", "b")
        assert rev.edge_attr("b", "a", "weight") == 5

    def test_to_undirected_merges_opposing(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        ug = g.to_undirected()
        assert ug.num_edges == 1

    def test_subgraph(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        sub = g.subgraph({1, 2})
        assert sub.has_edge(1, 2)
        assert sub.num_nodes == 2

    def test_copy_independent(self):
        g = DiGraph()
        g.add_edge(1, 2)
        clone = g.copy()
        clone.remove_edge(1, 2)
        assert g.has_edge(1, 2)
