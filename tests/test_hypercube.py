"""Binary and generalized hypercubes (Figs. 6, 9 substrates)."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graphs.hypercube import (
    GeneralizedHypercube,
    address_from_int,
    address_to_int,
    binary_hypercube,
    differing_dimensions,
    flip_bit,
    format_address,
    hamming_distance,
    parse_address,
    paths_are_node_disjoint,
)
from repro.graphs.traversal import diameter, is_connected


class TestBinaryHypercube:
    def test_size(self):
        q4 = binary_hypercube(4)
        assert q4.num_nodes == 16
        assert q4.num_edges == 32  # n * 2^(n-1)

    def test_regular_degree(self):
        q3 = binary_hypercube(3)
        assert all(q3.degree(v) == 3 for v in q3.nodes())

    def test_diameter_equals_dimension(self):
        assert diameter(binary_hypercube(4)) == 4

    def test_connected(self):
        assert is_connected(binary_hypercube(5))

    def test_flip_bit(self):
        assert flip_bit((0, 0, 0), 1) == (0, 1, 0)

    def test_flip_bit_out_of_range(self):
        with pytest.raises(IndexError):
            flip_bit((0, 1), 5)

    def test_hamming(self):
        assert hamming_distance((0, 1, 1), (1, 1, 0)) == 2

    def test_hamming_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance((0,), (0, 1))

    def test_differing_dimensions(self):
        assert differing_dimensions((1, 1, 0, 1), (0, 0, 0, 1)) == [0, 1]

    def test_address_roundtrip(self):
        for value in range(16):
            assert address_to_int(address_from_int(value, 4)) == value

    def test_parse_format(self):
        assert parse_address("1101") == (1, 1, 0, 1)
        assert format_address((1, 1, 0, 1)) == "1101"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_address("10a1")


class TestGeneralizedHypercube:
    def test_paper_fig6_universe(self):
        # gender (2) x occupation (2) x nationality (3) = 12 communities.
        gh = GeneralizedHypercube((2, 2, 3))
        assert gh.num_nodes == 12
        assert gh.degree((0, 0, 0)) == 1 + 1 + 2

    def test_neighbors_differ_in_one_feature(self):
        gh = GeneralizedHypercube((2, 2, 3))
        for neighbor in gh.neighbors((0, 1, 2)):
            assert hamming_distance((0, 1, 2), neighbor) == 1

    def test_distance_is_hamming(self):
        gh = GeneralizedHypercube((2, 3, 4))
        assert gh.distance((0, 0, 0), (1, 2, 3)) == 3

    def test_shortest_path_length(self):
        gh = GeneralizedHypercube((2, 2, 3))
        path = gh.shortest_path((0, 0, 0), (1, 1, 2))
        assert len(path) - 1 == 3
        assert path[0] == (0, 0, 0) and path[-1] == (1, 1, 2)

    def test_shortest_path_steps_are_edges(self):
        gh = GeneralizedHypercube((3, 3))
        path = gh.shortest_path((0, 0), (2, 2))
        for a, b in zip(path, path[1:]):
            assert hamming_distance(a, b) == 1

    def test_disjoint_paths_count_and_disjointness(self):
        gh = GeneralizedHypercube((2, 2, 3))
        paths = gh.disjoint_paths((0, 0, 0), (1, 1, 2))
        assert len(paths) == 3
        assert paths_are_node_disjoint(paths)
        for path in paths:
            assert path[0] == (0, 0, 0) and path[-1] == (1, 1, 2)

    def test_disjoint_paths_same_node(self):
        gh = GeneralizedHypercube((2, 2))
        assert gh.disjoint_paths((0, 0), (0, 0)) == [[(0, 0)]]

    def test_to_graph_matches_neighbors(self):
        gh = GeneralizedHypercube((2, 3))
        g = gh.to_graph()
        assert g.num_nodes == 6
        for node in gh.nodes():
            assert g.neighbors(node) == set(gh.neighbors(node))

    def test_binary_case_matches_hypercube(self):
        gh = GeneralizedHypercube((2, 2, 2))
        g = gh.to_graph()
        q3 = binary_hypercube(3)
        assert g.num_edges == q3.num_edges

    def test_contains(self):
        gh = GeneralizedHypercube((2, 3))
        assert gh.contains((1, 2))
        assert not gh.contains((1, 3))
        assert not gh.contains((1,))

    def test_invalid_profile_raises(self):
        gh = GeneralizedHypercube((2, 2))
        with pytest.raises(NodeNotFoundError):
            gh.neighbors((0, 5))

    def test_radix_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            GeneralizedHypercube((2, 1))

    def test_paths_not_disjoint_detected(self):
        shared = [(0, 0), (1, 0), (9, 9)]
        other = [(0, 0), (1, 0), (8, 8)]
        assert not paths_are_node_disjoint([shared, other])
