"""Differential mutate/query harness for the incremental serving plane.

Drives randomized interleaved insert/delete/query traces through a
:class:`~repro.serving.state.GraphService` while maintaining an
independent mirror dict graph, and asserts *bit-exactness* against the
full-rebuild references at every step:

* the merged CSR snapshot vs a fresh ``FrozenGraph`` of the mirror
  (node order, ``indptr``, ``indices``);
* the incrementally repaired NSF levels vs ``nsf_levels_reference``;
* the repaired landmark labels vs ``distance_gateway_labels_reference``;
* the round-replay-repaired MIS vs ``compute_mis`` (bit-exact), the
  rule-replay-repaired CDS vs ``wu_dai_cds`` (bit-exact, both the
  marked and the trimmed set), and the warm-started PageRank vs the
  cold-start ``pagerank_scores`` kernel (within fixed-point
  tolerance);
* the patch-aware BFS vs the same BFS on the merged snapshot.

Traces run both per-edge (``insert_edge`` / ``delete_edge``) and in
batch form (``apply_batch``), so the vectorized write path is held to
the same ground truth as the scalar one.

Runs across multiple seeds and patch thresholds — including
``threshold=0``, which rebases (merge + clear) on every snapshot, and a
huge threshold that never rebases — so the merge, rebase, and overlay
paths are all exercised against the same ground truth.  The drive also
asserts the steady-state economics: zero ``repro.cache.frozen`` events
(nothing ever goes through the dict-graph refreeze path).
"""

import random

import numpy as np
import pytest

from repro.errors import EdgeNotFoundError
from repro.graphs.csr import FrozenGraph
from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.labeling.landmarks import (
    distance_gateway_labels_reference,
    select_landmarks,
)
from repro.labeling.cds import wu_dai_cds
from repro.labeling.mis import compute_mis
from repro.layering.nsf import nsf_levels_reference
from repro.observability.metrics import MetricsRegistry, set_registry
from repro.observability.telemetry import cache_counts, serving_counts
from repro.serving import GraphService

SEEDS = [0, 1, 2, 3, 4]
THRESHOLDS = [0, 4, 1_000_000]


@pytest.fixture
def registry():
    """Swap in an empty global metrics registry for the test."""
    fresh = MetricsRegistry("test-differential")
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def seed_edges(seed, n=40, extra=0.04):
    rng = np.random.default_rng(seed)
    return [tuple(e) for e in random_connected_graph(n, extra, rng).edges()]


def build_graph(edges):
    graph = Graph()
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def assert_state_bit_exact(service, mirror, landmarks, context):
    """The structural invariants, asserted after every step.

    CSR arrays, NSF levels, landmark labels, the MIS, and the CDS
    (marked and trimmed sets) are bit-exact against the full-rebuild
    references; the warm-started PageRank is equal within fixed-point
    tolerance of the cold-start kernel.
    """
    reference = FrozenGraph(mirror)
    snapshot = service.snapshot()
    assert snapshot.node_list == reference.node_list, context
    assert np.array_equal(snapshot.indptr, reference.indptr), context
    assert np.array_equal(snapshot.indices, reference.indices), context
    assert service.nsf_levels_map() == nsf_levels_reference(mirror), context
    assert service.gateway_labels_map() == distance_gateway_labels_reference(
        mirror, landmarks
    ), context
    ref_scores, _ = reference.pagerank_scores()
    assert np.allclose(
        service.pagerank_vector(), ref_scores, atol=1e-8
    ), context
    assert service.mis_set() == compute_mis(mirror)[0], context
    marked_ref, cds_ref = wu_dai_cds(mirror)
    assert service.cds_marked_set() == marked_ref, context
    assert service.cds_set() == cds_ref, context


def drive_trace(service, mirror, rng, steps, new_node_prob=0.06):
    """Apply one randomized mutation per step; yield after each.

    The op mix covers real inserts, duplicate inserts (must be no-ops),
    deletes of base edges, deletes of pending inserts (must cancel),
    and inserts touching brand-new nodes (index growth).
    """
    fresh = 0
    for step in range(steps):
        nodes = list(mirror.nodes())
        roll = rng.random()
        if roll < new_node_prob:
            fresh += 1
            u, v = f"extra{fresh}", rng.choice(nodes)
            assert service.insert_edge(u, v) is True
            mirror.add_edge(u, v)
        elif roll < 0.45:
            u, v = rng.sample(nodes, 2)
            changed = service.insert_edge(u, v)
            assert changed == (not mirror.has_edge(u, v))
            mirror.add_edge(u, v)
        elif roll < 0.85:
            edges = list(mirror.edges())
            if not edges:
                continue
            u, v = rng.choice(edges)
            service.delete_edge(u, v)
            mirror.remove_edge(u, v)
        else:
            # Insert-then-delete in one step: the delete must cancel
            # the pending insert, leaving the edge set unchanged.
            # Sometimes the insert touches a brand-new node, so the
            # cancel drains pending to zero while the node table has
            # grown — deletes keep nodes (like Graph.remove_edge), so
            # the node survives as an isolated row in both worlds.
            if roll < 0.95:
                u, v = rng.sample(nodes, 2)
                if mirror.has_edge(u, v):
                    continue
            else:
                fresh += 1
                u, v = f"extra{fresh}", rng.choice(nodes)
            assert service.insert_edge(u, v) is True
            service.delete_edge(u, v)
            assert not service.has_edge(u, v)
            mirror.add_edge(u, v)
            mirror.remove_edge(u, v)
        yield step


class TestDifferentialTrace:
    @pytest.mark.parametrize("threshold", THRESHOLDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_exact_at_every_step(self, seed, threshold):
        edges = seed_edges(seed)
        mirror = build_graph(edges)
        landmarks = select_landmarks(mirror, 3)
        service = GraphService(
            build_graph(edges), landmarks=landmarks, threshold=threshold
        )
        rng = random.Random(seed * 101 + threshold)
        assert_state_bit_exact(service, mirror, landmarks, "initial")
        for step in drive_trace(service, mirror, rng, steps=45):
            assert_state_bit_exact(
                service, mirror, landmarks, (seed, threshold, step)
            )

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_patched_bfs_matches_merged_bfs(self, seed):
        edges = seed_edges(seed)
        mirror = build_graph(edges)
        service = GraphService(
            build_graph(edges), landmark_count=2, threshold=1_000_000
        )
        rng = random.Random(seed)
        for step in drive_trace(service, mirror, rng, steps=30):
            source = rng.choice(service.node_list)
            via_patches = service.distances_from(source)
            merged = service.snapshot()
            via_merge = merged.bfs_levels(merged.index_of(source))
            assert np.array_equal(via_patches, via_merge), (seed, step)

    def test_point_queries_match_bulk_views(self):
        edges = seed_edges(7)
        mirror = build_graph(edges)
        landmarks = select_landmarks(mirror, 3)
        service = GraphService(
            build_graph(edges), landmarks=landmarks, threshold=8
        )
        rng = random.Random(7)
        for _ in drive_trace(service, mirror, rng, steps=20):
            pass
        levels = service.nsf_levels_map()
        labels = service.gateway_labels_map()
        for node in rng.sample(service.node_list, 10):
            assert service.nsf_level(node) == levels[node]
            assert service.gateway_label(node) == labels.get(node)
        ref = bfs_distances(mirror, landmarks[0])
        for node in rng.sample(service.node_list, 10):
            assert service.distance(landmarks[0], node) == ref.get(node)


def drive_batch_trace(service, mirror, rng, steps, batch=6):
    """Apply one randomized ``apply_batch`` per step; yield after each.

    Each batch groups up to ``batch`` operations: inserts of absent
    pairs (occasionally to a brand-new node) and deletes of present
    edges, plus an occasional insert+delete of the same pair inside one
    batch (net-nil, but the endpoints intern).  Batches are built
    against a simulated presence set so every operation is valid at its
    turn under the inserts-then-deletes batch semantics.
    """
    fresh = 0
    for step in range(steps):
        nodes = list(mirror.nodes())
        present = {frozenset(e) for e in mirror.edges()}
        inserts, deletes = [], []
        staged = set()
        for _ in range(rng.randrange(1, batch + 1)):
            roll = rng.random()
            if roll < 0.08:
                fresh += 1
                u, v = f"batch{fresh}", rng.choice(nodes)
                inserts.append((u, v))
                staged.add(frozenset((u, v)))
            elif roll < 0.5:
                u, v = rng.sample(nodes, 2)
                key = frozenset((u, v))
                if key in staged or key in present:
                    continue
                inserts.append((u, v))
                staged.add(key)
            elif roll < 0.9:
                candidates = [
                    e for e in mirror.edges()
                    if frozenset(e) not in staged
                ]
                if not candidates:
                    continue
                u, v = rng.choice(candidates)
                deletes.append((u, v))
                staged.add(frozenset((u, v)))
            else:
                u, v = rng.sample(nodes, 2)
                key = frozenset((u, v))
                if key in staged or key in present:
                    continue
                inserts.append((u, v))
                deletes.append((u, v))
                staged.add(key)
        result = service.apply_batch(inserts, deletes)
        assert len(result.insert_outcomes) == len(inserts)
        assert len(result.delete_outcomes) == len(deletes)
        for u, v in inserts:
            mirror.add_edge(u, v)
        for u, v in deletes:
            mirror.remove_edge(u, v)
        yield step


class TestBatchDifferentialTrace:
    @pytest.mark.parametrize("threshold", THRESHOLDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_trace_bit_exact_at_every_step(self, seed, threshold):
        """The vectorized write path against the same ground truth."""
        edges = seed_edges(seed)
        mirror = build_graph(edges)
        landmarks = select_landmarks(mirror, 3)
        service = GraphService(
            build_graph(edges), landmarks=landmarks, threshold=threshold
        )
        rng = random.Random(seed * 977 + threshold)
        assert_state_bit_exact(service, mirror, landmarks, "initial")
        for step in drive_batch_trace(service, mirror, rng, steps=20):
            assert_state_bit_exact(
                service, mirror, landmarks, (seed, threshold, step)
            )


class TestFreshNodeCancel:
    @pytest.mark.parametrize("threshold", THRESHOLDS)
    def test_cancelled_insert_keeps_interned_node(self, threshold):
        """Insert to a brand-new node, then delete the same edge: the
        cancel drains ``pending`` to zero but the node stays interned
        (deletes keep nodes), so ``snapshot()`` must NOT short-circuit
        to the stale base — the snapshot carries the new node as an
        isolated row and every index query stays in bounds.

        Regression: ``snapshot()`` used to return ``self.base``
        whenever ``pending == 0``, omitting the node and making later
        ``nsf_level`` / ``gateway_label`` repairs index past the end
        of the returned snapshot."""
        edges = [("a", "b"), ("b", "c")]
        mirror = build_graph(edges)
        service = GraphService(
            build_graph(edges), landmarks=["a"], threshold=threshold
        )
        assert service.insert_edge("x", "a") is True
        service.delete_edge("x", "a")
        mirror.add_edge("x", "a")
        mirror.remove_edge("x", "a")
        assert service.patched.pending == 0
        assert service.snapshot().n == 4
        assert_state_bit_exact(service, mirror, ["a"], "fresh-node cancel")
        assert service.nsf_level("x") == nsf_levels_reference(mirror)["x"]
        assert service.gateway_label("x") is None  # isolated: unreachable
        assert service.distance("a", "x") is None


class TestThresholdSemantics:
    def test_threshold_zero_rebases_every_snapshot(self):
        service = GraphService(build_graph(seed_edges(2)), threshold=0)
        rng = random.Random(2)
        mirror = build_graph(seed_edges(2))
        for _ in drive_trace(service, mirror, rng, steps=15):
            service.snapshot()
            assert service.patched.pending == 0

    def test_huge_threshold_never_rebases(self, registry):
        service = GraphService(
            build_graph(seed_edges(3)), threshold=1_000_000
        )
        base = service.patched.base
        mirror = build_graph(seed_edges(3))
        rng = random.Random(3)
        for _ in drive_trace(service, mirror, rng, steps=15):
            service.snapshot()
        assert service.patched.base is base
        assert serving_counts(registry)["patch"].get("rebase", 0) == 0


class TestSteadyStateEconomics:
    def test_drive_never_refreezes(self, registry):
        """The acceptance invariant: a full mutate/query drive records
        zero ``repro.cache.frozen`` events — snapshots come from the
        patch-merge path, never the dict-graph refreeze path."""
        edges = seed_edges(5)
        mirror = build_graph(edges)
        landmarks = select_landmarks(mirror, 3)
        service = GraphService(
            build_graph(edges), landmarks=landmarks, threshold=16
        )
        rng = random.Random(5)
        for _ in drive_trace(service, mirror, rng, steps=30):
            node = rng.choice(service.node_list)
            service.nsf_level(node)
            service.gateway_label(node)
            service.distance(node, rng.choice(service.node_list))
        assert cache_counts(registry) == {}
        counts = serving_counts(registry)
        assert counts["patch"].get("merge", 0) > 0
        assert counts["repairs"].get("nsf", {}).get("replay", 0) > 0
        assert counts["repairs"].get("labels", {}).get("relax", 0) > 0


class TestValidationParity:
    def test_self_loop_message_matches_graph(self):
        service = GraphService(build_graph([("a", "b"), ("b", "c")]))
        graph = Graph([("a", "b")])
        with pytest.raises(ValueError) as from_service:
            service.insert_edge("a", "a")
        with pytest.raises(ValueError) as from_graph:
            graph.add_edge("a", "a")
        assert str(from_service.value) == str(from_graph.value)

    def test_duplicate_insert_is_version_noop(self):
        service = GraphService(build_graph([("a", "b"), ("b", "c")]))
        before = service.version
        assert service.insert_edge("a", "b") is False
        assert service.version == before

    def test_absent_delete_raises(self):
        service = GraphService(build_graph([("a", "b"), ("b", "c")]))
        with pytest.raises(EdgeNotFoundError):
            service.delete_edge("a", "c")
        with pytest.raises(EdgeNotFoundError):
            service.delete_edge("a", "missing")
        service.delete_edge("a", "b")
        with pytest.raises(EdgeNotFoundError):
            service.delete_edge("a", "b")
