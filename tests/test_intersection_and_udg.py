"""Intersection graphs and unit disk graphs (Sec. II-A)."""

import math

import pytest

from repro.graphs.intersection import (
    common_elements,
    intersection_graph,
    intersection_graph_by_predicate,
)
from repro.graphs.traversal import is_connected
from repro.graphs.unit_disk import (
    euclidean,
    is_unit_disk_realization,
    positions_of,
    random_unit_disk_graph,
    star_k16,
    unit_disk_graph,
)


class TestIntersectionGraphs:
    def test_basic_intersection(self):
        g = intersection_graph({"a": {1, 2}, "b": {2, 3}, "c": {4}})
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "c")
        assert not g.has_edge("b", "c")

    def test_empty_family_isolated_vertex(self):
        g = intersection_graph({"a": set(), "b": {1}})
        assert g.has_node("a")
        assert g.degree("a") == 0

    def test_by_predicate_matches_enumeration(self):
        families = {"a": {1, 2}, "b": {2}, "c": {3}, "d": {1, 3}}
        g1 = intersection_graph(families)
        g2 = intersection_graph_by_predicate(
            families, lambda u, v: bool(set(families[u]) & set(families[v]))
        )
        assert set(g1.edges()) == set(g2.edges())

    def test_common_elements_witness(self):
        families = {"a": {1, 2}, "b": {2, 3}}
        assert common_elements(families, "a", "b") == {2}

    def test_clique_from_shared_element(self):
        g = intersection_graph({i: {0} for i in range(5)})
        assert g.num_edges == 10


class TestUnitDiskGraphs:
    def test_within_radius_edge(self):
        g = unit_disk_graph({"a": (0, 0), "b": (0.9, 0)}, radius=1.0)
        assert g.has_edge("a", "b")

    def test_beyond_radius_no_edge(self):
        g = unit_disk_graph({"a": (0, 0), "b": (1.1, 0)}, radius=1.0)
        assert not g.has_edge("a", "b")

    def test_exactly_at_radius_edge(self):
        g = unit_disk_graph({"a": (0, 0), "b": (1.0, 0)}, radius=1.0)
        assert g.has_edge("a", "b")

    def test_matches_bruteforce(self, rng):
        positions = {
            i: (float(x), float(y))
            for i, (x, y) in enumerate(zip(rng.uniform(0, 5, 40), rng.uniform(0, 5, 40)))
        }
        g = unit_disk_graph(positions, radius=1.3)
        for u in positions:
            for v in positions:
                if u < v:
                    expected = euclidean(positions[u], positions[v]) <= 1.3
                    assert g.has_edge(u, v) == expected

    def test_positions_stored(self):
        g = unit_disk_graph({"a": (1.0, 2.0)}, radius=1.0)
        assert positions_of(g)["a"] == (1.0, 2.0)

    def test_bad_radius_rejected(self):
        with pytest.raises(ValueError):
            unit_disk_graph({}, radius=0.0)

    def test_realization_check_positive(self):
        positions = {"a": (0, 0), "b": (0.5, 0), "c": (3, 3)}
        g = unit_disk_graph(positions, radius=1.0)
        assert is_unit_disk_realization(g, positions, radius=1.0)

    def test_realization_check_negative(self):
        positions = {"a": (0, 0), "b": (0.5, 0)}
        g = unit_disk_graph(positions, radius=1.0)
        g.remove_edge("a", "b")
        assert not is_unit_disk_realization(g, positions, radius=1.0)

    def test_star_k16_is_not_udg(self):
        """The paper's witness: K_{1,6} admits no unit-disk realization.

        Pigeonhole certificate: any six points within unit distance of a
        common centre contain a pair at angle < 60 degrees, which is
        itself within unit distance — an edge the star lacks.
        """
        star = star_k16()
        assert star.degree("center") == 6
        # Verify the pigeonhole argument numerically on any candidate
        # realization attempt: place leaves optimally (evenly spaced on
        # the unit circle) — the best case still forces a leaf pair edge.
        best_positions = {"center": (0.0, 0.0)}
        for k in range(6):
            angle = 2 * math.pi * k / 6
            best_positions[f"leaf{k + 1}"] = (math.cos(angle), math.sin(angle))
        assert not is_unit_disk_realization(star, best_positions, radius=1.0)

    def test_random_udg_density_grows_with_radius(self, rng):
        sparse = random_unit_disk_graph(100, 10, 10, 0.8, rng)
        rng2 = __import__("numpy").random.default_rng(12345)
        dense = random_unit_disk_graph(100, 10, 10, 2.5, rng2)
        assert dense.num_edges > sparse.num_edges

    def test_dense_udg_connected(self, rng):
        g = random_unit_disk_graph(150, 8, 8, 2.5, rng)
        assert is_connected(g)
