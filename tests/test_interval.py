"""Interval graphs, chordality, recognition (Sec. II-A, Fig. 1)."""

import pytest

from repro.errors import GraphClassError
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.interval import (
    cycle_graph,
    find_chordless_cycle,
    interval_graph,
    interval_representation,
    intervals_overlap,
    is_chordal,
    is_interval_graph,
    is_perfect_elimination_ordering,
    lex_bfs,
    maximal_cliques_chordal,
    multiple_interval_graph,
    nodes_online_at,
    perfect_elimination_ordering,
)


class TestIntervalGraphConstruction:
    def test_overlapping_intervals_connected(self):
        g = interval_graph({"A": (0, 2), "B": (1, 3)})
        assert g.has_edge("A", "B")

    def test_disjoint_intervals_disconnected(self):
        g = interval_graph({"A": (0, 1), "B": (2, 3)})
        assert not g.has_edge("A", "B")

    def test_touching_closed_intervals_connected(self):
        g = interval_graph({"A": (0, 1), "B": (1, 2)})
        assert g.has_edge("A", "B")

    def test_paper_fig1_style_triple_overlap(self):
        # Three users online simultaneously: pairwise edges appear.
        g = interval_graph({"A": (0, 4), "C": (2, 6), "D": (3, 5)})
        assert g.has_edge("A", "C")
        assert g.has_edge("A", "D")
        assert g.has_edge("C", "D")

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            interval_graph({"A": (3, 1)})

    def test_intervals_stored_as_attr(self):
        g = interval_graph({"A": (0.0, 2.0)})
        assert g.node_attr("A", "intervals") == [(0.0, 2.0)]

    def test_multiple_intervals_per_user(self):
        # A user online twice connects with sessions in both windows.
        g = multiple_interval_graph(
            {"u": [(0, 1), (10, 11)], "v": [(0.5, 2)], "w": [(10.5, 12)]}
        )
        assert g.has_edge("u", "v")
        assert g.has_edge("u", "w")
        assert not g.has_edge("v", "w")

    def test_empty_interval_list_isolated(self):
        g = multiple_interval_graph({"u": [], "v": [(0, 1)]})
        assert g.has_node("u")
        assert g.degree("u") == 0

    def test_nodes_online_at(self):
        intervals = {"a": [(0, 2)], "b": [(1, 3)], "c": [(5, 6)]}
        assert nodes_online_at(intervals, 1.5) == {"a", "b"}

    def test_overlap_predicate(self):
        assert intervals_overlap((0, 2), (2, 3))
        assert not intervals_overlap((0, 1), (1.5, 2))

    def test_interval_graph_always_interval(self, rng):
        intervals = {
            i: (float(a), float(a) + float(b))
            for i, (a, b) in enumerate(
                zip(rng.uniform(0, 10, 12), rng.uniform(0.1, 3, 12))
            )
        }
        g = interval_graph(intervals)
        assert is_chordal(g)
        assert is_interval_graph(g)


class TestChordality:
    def test_cycle4_not_chordal(self):
        assert not is_chordal(cycle_graph(4))

    def test_cycle5_not_chordal(self):
        assert not is_chordal(cycle_graph(5))

    def test_triangle_chordal(self):
        assert is_chordal(cycle_graph(3))

    def test_tree_chordal(self):
        assert is_chordal(path_graph(7))
        assert is_chordal(star_graph(5))

    def test_complete_chordal(self):
        assert is_chordal(complete_graph(6))

    def test_chorded_cycle_chordal(self):
        g = cycle_graph(4)
        g.add_edge(0, 2)
        assert is_chordal(g)

    def test_lex_bfs_is_permutation(self):
        g = complete_graph(5)
        order = lex_bfs(g)
        assert sorted(order) == sorted(g.nodes())

    def test_peo_check_positive(self):
        g = path_graph(4)
        peo = perfect_elimination_ordering(g)
        assert peo is not None
        assert is_perfect_elimination_ordering(g, peo)

    def test_peo_none_for_cycle(self):
        assert perfect_elimination_ordering(cycle_graph(5)) is None

    def test_peo_check_wrong_permutation_raises(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            is_perfect_elimination_ordering(g, [0, 1])

    def test_find_chordless_cycle_on_c5(self):
        cycle = find_chordless_cycle(cycle_graph(5))
        assert cycle is not None
        assert len(cycle) == 5

    def test_find_chordless_cycle_none_on_tree(self):
        assert find_chordless_cycle(path_graph(6)) is None


class TestRecognition:
    def test_cycle_not_interval(self):
        # "Time is linear, not circular": C_n (n >= 4) is never interval.
        for n in (4, 5, 6):
            assert not is_interval_graph(cycle_graph(n))

    def test_path_is_interval(self):
        assert is_interval_graph(path_graph(6))

    def test_star_is_interval(self):
        assert is_interval_graph(star_graph(6))

    def test_chordal_but_not_interval(self):
        # The "3-sun"-like witness: a claw subdivided via triangles is
        # chordal yet has an asteroidal triple, so it is not interval.
        g = Graph()
        # central triangle
        g.add_edge("x", "y")
        g.add_edge("y", "z")
        g.add_edge("x", "z")
        # pendant on each corner
        g.add_edge("x", "a")
        g.add_edge("y", "b")
        g.add_edge("z", "c")
        assert is_chordal(g)
        assert not is_interval_graph(g)

    def test_maximal_cliques_of_path(self):
        cliques = maximal_cliques_chordal(path_graph(4))
        assert sorted(sorted(c) for c in cliques) == [[0, 1], [1, 2], [2, 3]]

    def test_maximal_cliques_requires_chordal(self):
        with pytest.raises(GraphClassError):
            maximal_cliques_chordal(cycle_graph(5))

    def test_representation_roundtrip(self):
        g = interval_graph({"A": (0, 2), "B": (1, 3), "C": (2.5, 4)})
        rep = interval_representation(g)
        assert rep is not None
        rebuilt = interval_graph(rep)
        for u in g.nodes():
            for v in g.nodes():
                if u != v:
                    assert g.has_edge(u, v) == rebuilt.has_edge(u, v)

    def test_representation_none_for_cycle(self):
        assert interval_representation(cycle_graph(5)) is None

    def test_cycle_too_small_rejected(self):
        with pytest.raises(ValueError):
            cycle_graph(2)
