"""Interval hypergraphs and co-online structure (Sec. II-A, Fig. 1)."""

import pytest

from repro.graphs.interval import multiple_interval_graph
from repro.graphs.interval_hypergraph import (
    edge_density_profile,
    interval_hypergraph,
)


class TestHyperedges:
    def test_triple_overlap_yields_3_hyperedge(self):
        # Fig. 1: A, C, D simultaneously online -> hyperedge {A, C, D}.
        h = interval_hypergraph({"A": [(0, 4)], "C": [(2, 6)], "D": [(3, 5)]})
        members = {frozenset(e.members) for e in h.hyperedges}
        assert frozenset({"A", "C", "D"}) in members

    def test_pairwise_only(self):
        h = interval_hypergraph({"a": [(0, 2)], "b": [(1, 3)], "c": [(5, 6)]})
        assert h.max_cardinality() == 2
        assert len(h.hyperedges) == 1

    def test_no_overlap_no_hyperedges(self):
        h = interval_hypergraph({"a": [(0, 1)], "b": [(2, 3)]})
        assert h.hyperedges == []

    def test_cardinality_distribution(self):
        h = interval_hypergraph(
            {"a": [(0, 10)], "b": [(1, 9)], "c": [(2, 8)], "d": [(20, 21)], "e": [(20.5, 22)]}
        )
        dist = h.cardinality_distribution()
        assert dist.get(3, 0) >= 1  # {a,b,c}
        assert dist.get(2, 0) >= 1  # {d,e}

    def test_subset_windows_dropped(self):
        # The 2-member window {a,b} is inside the 3-member group's span
        # and must not appear as a separate maximal hyperedge.
        h = interval_hypergraph({"a": [(0, 10)], "b": [(1, 9)], "c": [(2, 8)]})
        members = {frozenset(e.members) for e in h.hyperedges}
        assert frozenset({"a", "b"}) not in members
        assert frozenset({"a", "b", "c"}) in members

    def test_edges_containing(self):
        h = interval_hypergraph({"a": [(0, 3)], "b": [(1, 4)], "c": [(10, 11)]})
        assert len(h.edges_containing("a")) == 1
        assert h.edges_containing("c") == []

    def test_two_section_matches_interval_graph(self):
        intervals = {
            "a": [(0, 3)],
            "b": [(1, 4)],
            "c": [(2, 5)],
            "d": [(10, 12)],
            "e": [(11, 13)],
        }
        hyper = interval_hypergraph(intervals)
        section = hyper.two_section()
        pairwise = multiple_interval_graph(intervals)
        for u in intervals:
            for v in intervals:
                if u < v and pairwise.has_edge(u, v):
                    # every pairwise edge appears in some hyperedge
                    assert section.has_edge(u, v)

    def test_multi_session_user(self):
        h = interval_hypergraph({"u": [(0, 1), (5, 6)], "v": [(0.5, 5.5)]})
        assert all(e.members == frozenset({"u", "v"}) for e in h.hyperedges)
        assert len(h.hyperedges) >= 1


class TestEdgeDensity:
    def test_density_peaks_with_coonline_group(self):
        intervals = {"a": [(0, 2)], "b": [(0, 2)], "c": [(0, 2)], "d": [(5, 6)]}
        profile = edge_density_profile(intervals, [1.0, 5.5, 10.0])
        # At t=1, three of four users online: 3 pairs of 6.
        assert profile[1.0] == pytest.approx(0.5)
        assert profile[5.5] == pytest.approx(0.0)
        assert profile[10.0] == pytest.approx(0.0)

    def test_density_empty_universe(self):
        assert edge_density_profile({}, [0.0]) == {0.0: 0.0}
