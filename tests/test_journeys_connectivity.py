"""Journeys and temporal connectivity (Sec. II-B, Fig. 2)."""

import pytest

from repro.errors import NodeNotFoundError
from repro.temporal.connectivity import (
    connection_start_times,
    dynamic_diameter,
    ever_snapshot_connected,
    flooding_time,
    is_connected_at,
    is_time_i_connected,
    reachable_set,
)
from repro.temporal.evolving import EvolvingGraph, paper_fig2_evolving_graph
from repro.temporal.journeys import (
    Journey,
    earliest_arrival,
    earliest_completion_journey,
    fastest_journey,
    foremost_tree,
    is_valid_journey,
    latest_departure,
    minimum_hop_journey,
    temporal_distance,
)


def chain_eg():
    """a --1-- b --3-- c --2-- d: c->d contact is *before* b->c."""
    eg = EvolvingGraph(horizon=5)
    eg.add_contact("a", "b", 1)
    eg.add_contact("b", "c", 3)
    eg.add_contact("c", "d", 2)
    return eg


class TestEarliestArrival:
    def test_respects_label_order(self):
        eg = chain_eg()
        arrival = earliest_arrival(eg, "a")
        assert arrival["b"] == 1
        assert arrival["c"] == 3
        assert "d" not in arrival  # c->d happened before c was informed

    def test_start_filters_contacts(self):
        eg = chain_eg()
        arrival = earliest_arrival(eg, "a", start=2)
        assert "b" not in arrival

    def test_contact_at_start_usable(self):
        # "first edge label is larger than or equal to i"
        eg = chain_eg()
        arrival = earliest_arrival(eg, "a", start=1)
        assert arrival["b"] == 1

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            earliest_arrival(chain_eg(), "zzz")


class TestJourneyObjects:
    def test_journey_properties(self):
        j = Journey(source="a", hops=(("a", "b", 1), ("b", "c", 4)))
        assert j.target == "c"
        assert j.hop_count == 2
        assert j.departure == 1
        assert j.completion == 4
        assert j.span == 3
        assert j.nodes() == ["a", "b", "c"]

    def test_empty_journey(self):
        j = Journey(source="a", hops=())
        assert j.target == "a"
        assert j.departure is None
        assert j.span == 0

    def test_validity_checks(self):
        eg = chain_eg()
        good = Journey("a", (("a", "b", 1), ("b", "c", 3)))
        assert is_valid_journey(eg, good)
        decreasing = Journey("a", (("a", "b", 1), ("b", "c", 0)))
        assert not is_valid_journey(eg, decreasing)
        phantom = Journey("a", (("a", "c", 1),))
        assert not is_valid_journey(eg, phantom)
        broken_chain = Journey("a", (("b", "c", 3),))
        assert not is_valid_journey(eg, broken_chain)

    def test_validity_start_constraint(self):
        eg = chain_eg()
        j = Journey("a", (("a", "b", 1),))
        assert not is_valid_journey(eg, j, start=2)


class TestOptimalJourneys:
    def test_earliest_completion_fig2(self):
        eg = paper_fig2_evolving_graph()
        j = earliest_completion_journey(eg, "A", "C", start=4)
        assert j.hops == (("A", "B", 4), ("B", "C", 5))
        assert j.completion == 5

    def test_earliest_completion_unreachable(self):
        eg = paper_fig2_evolving_graph()
        assert earliest_completion_journey(eg, "A", "E") is None

    def test_min_hop_vs_earliest(self):
        # Earliest completion may use more hops than necessary.
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("s", "m", 0)
        eg.add_contact("m", "t", 1)   # 2 hops, completes at 1
        eg.add_contact("s", "t", 5)   # 1 hop, completes at 5
        early = earliest_completion_journey(eg, "s", "t")
        short = minimum_hop_journey(eg, "s", "t")
        assert early.completion == 1 and early.hop_count == 2
        assert short.hop_count == 1 and short.completion == 5

    def test_min_hop_time_feasibility(self):
        eg = chain_eg()
        j = minimum_hop_journey(eg, "a", "c")
        assert is_valid_journey(eg, j)
        assert minimum_hop_journey(eg, "a", "d") is None

    def test_min_hop_same_node(self):
        eg = chain_eg()
        assert minimum_hop_journey(eg, "a", "a").hop_count == 0

    def test_fastest_minimises_span(self):
        # Starting later gives a tighter span than starting earliest.
        eg = EvolvingGraph(horizon=12)
        eg.add_contact("s", "m", 0)
        eg.add_contact("m", "t", 9)   # span 9 via early departure
        eg.add_contact("s", "x", 7)
        eg.add_contact("x", "t", 8)   # span 1 via late departure
        j = fastest_journey(eg, "s", "t")
        assert j.span == 1
        assert j.departure == 7

    def test_fastest_validity(self):
        eg = paper_fig2_evolving_graph()
        j = fastest_journey(eg, "A", "C")
        assert is_valid_journey(eg, j)

    def test_foremost_tree_parents(self):
        eg = chain_eg()
        parent = foremost_tree(eg, "a")
        assert parent["a"] is None
        assert parent["b"] == ("a", "b", 1)

    def test_latest_departure_dual(self):
        eg = chain_eg()
        departure = latest_departure(eg, "c")
        # a must leave by its time-1 contact to reach c.
        assert departure["a"] == 1
        assert departure["b"] == 3

    def test_temporal_distance(self):
        eg = chain_eg()
        assert temporal_distance(eg, "a", "c") == 3
        assert temporal_distance(eg, "a", "d") is None
        assert temporal_distance(eg, "a", "a") == 0


class TestConnectivity:
    def test_fig2_connection_start_times(self):
        """The paper: A is connected to C at starting times 0..4."""
        eg = paper_fig2_evolving_graph()
        assert connection_start_times(eg, "A", "C") == [0, 1, 2, 3, 4]

    def test_fig2_asymmetry(self):
        eg = paper_fig2_evolving_graph()
        # C -> A must go C --6?--: C's only contacts are (B,5),(B,2),(D,6).
        times_ca = connection_start_times(eg, "C", "A")
        assert times_ca != connection_start_times(eg, "A", "C")

    def test_fig2_never_snapshot_connected(self):
        """A and C are not connected at any particular time unit."""
        eg = paper_fig2_evolving_graph()
        assert not ever_snapshot_connected(eg, "A", "C")
        assert ever_snapshot_connected(eg, "A", "B")

    def test_is_connected_at(self):
        eg = paper_fig2_evolving_graph()
        assert is_connected_at(eg, "A", "C", 4)
        assert not is_connected_at(eg, "A", "C", 5)

    def test_reachable_set(self):
        eg = paper_fig2_evolving_graph()
        assert reachable_set(eg, "A", 0) == {"A", "B", "C", "D"}

    def test_time_i_connected(self):
        eg = EvolvingGraph(horizon=4)
        eg.add_contact("a", "b", 0)
        eg.add_contact("b", "c", 1)
        eg.add_contact("a", "c", 2)
        eg.add_contact("a", "b", 3)
        assert is_time_i_connected(eg, 0)
        # From start 3 only the a-b contact remains: c is cut off.
        assert not is_time_i_connected(eg, 3)

    def test_same_time_unit_chaining(self):
        # Labels are non-decreasing, so two contacts in the same unit
        # chain (instantaneous transmission).
        eg = EvolvingGraph(horizon=2)
        eg.add_contact("a", "b", 1)
        eg.add_contact("b", "c", 1)
        assert is_connected_at(eg, "a", "c", 1)
        from repro.temporal.journeys import earliest_arrival

        assert earliest_arrival(eg, "a", start=1)["c"] == 1

    def test_flooding_time(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1)
        eg.add_contact("b", "c", 2)
        assert flooding_time(eg, "a") == 2
        assert flooding_time(eg, "c") is None  # c's contacts are in the past

    def test_dynamic_diameter(self):
        # a-b and b-c meet in the same units: the flood crosses both in
        # one unit (instantaneous transmission, non-decreasing labels).
        eg = EvolvingGraph(horizon=6)
        for t in range(5):
            eg.add_contact("a", "b", t)
            eg.add_contact("b", "c", t)
        assert dynamic_diameter(eg) == 0
        # Staggered contacts (a-b at even units, b-c at odd) force waits:
        # the worst flood is c -> b (unit 1) -> a (unit 2).
        staggered = EvolvingGraph(horizon=6)
        for t in (0, 2, 4):
            staggered.add_contact("a", "b", t)
        for t in (1, 3, 5):
            staggered.add_contact("b", "c", t)
        assert dynamic_diameter(staggered) == 2

    def test_dynamic_diameter_none_when_disconnected(self):
        eg = paper_fig2_evolving_graph()
        assert dynamic_diameter(eg) is None
