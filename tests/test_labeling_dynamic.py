"""Dynamic labels: Bellman-Ford, PageRank/HITS, Kleinberg routing
(Sec. IV-B, Sec. I)."""

import math

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.graphs.generators import (
    complete_graph,
    grid_2d,
    kleinberg_grid,
    path_graph,
    random_connected_graph,
)
from repro.graphs.graph import DiGraph
from repro.graphs.traversal import bfs_distances
from repro.labeling.bellman_ford import (
    build_routing_network,
    converge,
    distances,
    fail_link_and_reconverge,
)
from repro.labeling.kleinberg_routing import exponent_sweep, greedy_grid_route
from repro.labeling.pagerank import hits, pagerank


class TestBellmanFord:
    def test_distances_match_bfs(self, rng):
        g = random_connected_graph(30, 0.1, rng)
        network = build_routing_network(g, 0)
        converge(network)
        truth = bfs_distances(g, 0)
        computed = distances(network)
        for node, d in truth.items():
            assert computed[node] == d

    def test_convergence_rounds_bounded_by_eccentricity(self):
        g = path_graph(10)
        network = build_routing_network(g, 0)
        rounds = converge(network)
        assert rounds <= 12

    def test_next_hops_point_toward_destination(self, rng):
        g = random_connected_graph(25, 0.15, rng)
        network = build_routing_network(g, 0)
        converge(network)
        truth = bfs_distances(g, 0)
        for node in g.nodes():
            if node == 0:
                continue
            hop = network.state_of(node)["next_hop"]
            assert truth[hop] == truth[node] - 1

    def test_reconvergence_after_failure(self):
        g = grid_2d(4, 4)
        network = build_routing_network(g, (0, 0))
        converge(network)
        rounds = fail_link_and_reconverge(network, (0, 0), (0, 1))
        assert rounds >= 1
        assert distances(network)[(0, 1)] == 3.0

    def test_unreachable_stays_infinite(self):
        from repro.graphs.graph import Graph

        g = Graph()
        g.add_edge("a", "b")
        g.add_node("island")
        network = build_routing_network(g, "a")
        converge(network)
        assert math.isinf(distances(network)["island"])


class TestPageRank:
    def test_scores_sum_to_one(self, rng):
        g = DiGraph()
        for u, v in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]:
            g.add_edge(u, v)
        scores, iterations = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0)
        assert iterations > 1

    def test_authority_hub_on_known_shape(self):
        # Two hubs pointing at one popular page.
        g = DiGraph()
        g.add_edge("hub1", "popular")
        g.add_edge("hub2", "popular")
        g.add_edge("popular", "hub1")
        scores, _ = pagerank(g)
        assert scores["popular"] == max(scores.values())

    def test_dangling_nodes_handled(self):
        g = DiGraph()
        g.add_edge("a", "sink")
        g.add_node("b")
        scores, _ = pagerank(g)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_damping_validation(self):
        g = DiGraph()
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            pagerank(g, damping=1.5)

    def test_empty_graph(self):
        scores, iterations = pagerank(DiGraph())
        assert scores == {} and iterations == 0

    def test_hits_hub_authority_split(self):
        g = DiGraph()
        for hub in ("h1", "h2"):
            for authority in ("a1", "a2", "a3"):
                g.add_edge(hub, authority)
        hub_scores, authority_scores, _ = hits(g)
        assert hub_scores["h1"] > hub_scores["a1"]
        assert authority_scores["a1"] > authority_scores["h1"]

    def test_hits_converges(self, rng):
        g = DiGraph()
        for _ in range(60):
            u, v = int(rng.integers(15)), int(rng.integers(15))
            if u != v:
                g.add_edge(u, v)
        hub, auth, iterations = hits(g)
        assert iterations < 10_000


class TestKleinbergRouting:
    def test_greedy_always_delivers_on_grid(self, rng):
        g = kleinberg_grid(10, 2.0, rng)
        for _ in range(20):
            s = (int(rng.integers(10)), int(rng.integers(10)))
            t = (int(rng.integers(10)), int(rng.integers(10)))
            route = greedy_grid_route(g, s, t)
            assert route.delivered

    def test_hops_bounded_by_manhattan(self, rng):
        # Greedy strictly reduces Manhattan distance every hop.
        g = kleinberg_grid(12, 2.0, rng)
        s, t = (0, 0), (11, 11)
        route = greedy_grid_route(g, s, t)
        assert route.hops <= 22

    def test_long_range_links_speed_up_routing(self, rng):
        lattice_only = kleinberg_grid(16, 2.0, rng, long_range_links=0)
        small_world = kleinberg_grid(16, 2.0, rng, long_range_links=2)
        pairs = [((0, 0), (15, 15)), ((0, 15), (15, 0)), ((3, 2), (14, 13))]
        lattice_hops = sum(greedy_grid_route(lattice_only, s, t).hops for s, t in pairs)
        sw_hops = sum(greedy_grid_route(small_world, s, t).hops for s, t in pairs)
        assert sw_hops <= lattice_hops

    def test_exponent_sweep_shape(self, rng):
        """The inverse-square side of the optimum: r = 2 beats every
        larger exponent, and its advantage *grows* with the grid (the
        r < 2 side of Kleinberg's curve only separates at grid sizes far
        beyond laptop scale — see the Text-4 benchmark notes)."""
        small = {p.r: p.mean_hops for p in exponent_sweep(10, [2.0, 3.0, 4.0], 150, rng)}
        large = {p.r: p.mean_hops for p in exponent_sweep(30, [2.0, 3.0, 4.0], 150, rng)}
        assert large[2.0] < large[3.0] < large[4.0] * 1.05
        # Growth rate: r=2 scales polylog, r=4 near-linearly.
        assert large[2.0] / small[2.0] < large[4.0] / small[4.0]

    def test_sweep_point_fields(self, rng):
        points = exponent_sweep(8, [1.0], trials=10, rng=rng)
        assert points[0].r == 1.0
        assert points[0].trials == 10
