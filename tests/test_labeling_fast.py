"""Frozen labeling & batched-routing kernels vs the pure references.

The contract of the PR-5 fast paths (PageRank/HITS power iteration,
multi-source distance/gateway labels, greedy MIS/DS/marking rounds, and
the four batched greedy-routing evaluators) is exact — or, for the
eigenvector scores, tolerance-bounded — equivalence with their
``*_reference`` ground truths.  These tests enforce that on randomized
graphs at sizes straddling :data:`~repro.graphs.csr.FROZEN_MIN_NODES`,
plus structural edge cases: disconnected graphs, unreachable routing
targets, source == target pairs, and empty pair batches.

``_optimal_for_pairs`` (the shared stretch denominator) gets its own
independent check against a per-pair Python BFS: both the fast and the
reference evaluators call it, so their mutual equality could never
catch a bug inside it.
"""

import math

import numpy as np
import pytest

from repro.graphs.csr import FROZEN_MIN_NODES
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.datasets.gnutella import gnutella_largest_scc, gnutella_like_snapshot
from repro.labeling.cds import marking_process, marking_process_reference
from repro.labeling.ds import (
    neighbor_designated_ds,
    neighbor_designated_ds_reference,
)
from repro.labeling.landmarks import (
    distance_gateway_labels,
    distance_gateway_labels_reference,
    select_landmarks,
    weighted_distance_gateway_labels,
    weighted_distance_gateway_labels_reference,
)
from repro.labeling.mis import (
    compute_mis,
    compute_mis_reference,
    is_maximal_independent_set,
)
from repro.labeling.pagerank import hits, hits_reference, pagerank, pagerank_reference
from repro.remapping import grid_with_holes
from repro.remapping.batch_routing import (
    _optimal_for_pairs,
    evaluate_fspace_routing,
    evaluate_fspace_routing_reference,
    evaluate_geo_routing,
    evaluate_geo_routing_reference,
    evaluate_hyperbolic_routing,
    evaluate_hyperbolic_routing_reference,
    evaluate_kleinberg_routing,
    evaluate_kleinberg_routing_reference,
)
from repro.remapping.feature_space import FeatureSpace
from repro.remapping.hyperbolic import embed_tree
from repro.graphs.generators import kleinberg_grid

#: One size below the freeze threshold (reference fallback) and several
#: above it (frozen kernels), so both routing arms are exercised.
STRADDLE_SIZES = (FROZEN_MIN_NODES - 8, FROZEN_MIN_NODES + 8, 120)


def _random_graph(n, seed):
    return erdos_renyi(n, min(0.9, 6.0 / max(n - 1, 1)), np.random.default_rng(seed))


def _random_pairs(nodes, count, rng):
    return [
        (nodes[int(rng.integers(len(nodes)))], nodes[int(rng.integers(len(nodes)))])
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# score and label kernels
# ----------------------------------------------------------------------
def _scores_close(fast, ref, tol=1e-9):
    fast_scores, fast_iters = fast
    ref_scores, ref_iters = ref
    assert set(fast_scores) == set(ref_scores)
    assert abs(fast_iters - ref_iters) <= 1
    for node, value in ref_scores.items():
        assert math.isclose(fast_scores[node], value, rel_tol=tol, abs_tol=tol)


@pytest.mark.parametrize("n", STRADDLE_SIZES)
@pytest.mark.parametrize("seed", [1, 2])
def test_pagerank_matches_reference(n, seed):
    graph = gnutella_like_snapshot(n, np.random.default_rng(seed))
    _scores_close(pagerank(graph), pagerank_reference(graph))


@pytest.mark.parametrize("n", STRADDLE_SIZES)
@pytest.mark.parametrize("seed", [3, 4])
def test_hits_matches_reference(n, seed):
    graph = gnutella_like_snapshot(n, np.random.default_rng(seed))
    fast_hub, fast_auth, fast_iters = hits(graph)
    ref_hub, ref_auth, ref_iters = hits_reference(graph)
    _scores_close((fast_hub, fast_iters), (ref_hub, ref_iters))
    _scores_close((fast_auth, fast_iters), (ref_auth, ref_iters))


@pytest.mark.parametrize("n", STRADDLE_SIZES)
@pytest.mark.parametrize("seed", [5, 6])
def test_distance_labels_match_reference(n, seed):
    graph = _random_graph(n, seed)
    landmarks = select_landmarks(graph, max(2, n // 12))
    assert distance_gateway_labels(graph, landmarks) == \
        distance_gateway_labels_reference(graph, landmarks)


@pytest.mark.parametrize("n", STRADDLE_SIZES)
@pytest.mark.parametrize("seed", [7, 8])
def test_weighted_labels_match_reference(n, seed):
    rng = np.random.default_rng(seed)
    graph = gnutella_largest_scc(n, rng)
    for u, v in graph.edges():
        graph.set_edge_attr(u, v, "weight", float(rng.uniform(0.05, 1.0)))
    landmarks = select_landmarks(graph, 4)
    assert weighted_distance_gateway_labels(graph, landmarks) == \
        weighted_distance_gateway_labels_reference(graph, landmarks)


@pytest.mark.parametrize("n", STRADDLE_SIZES)
@pytest.mark.parametrize("seed", [9, 10])
def test_mis_and_ds_and_marking_match_reference(n, seed):
    graph = _random_graph(n, seed)
    fast_set, fast_rounds = compute_mis(graph)
    ref_set, ref_rounds = compute_mis_reference(graph)
    assert fast_set == ref_set
    assert fast_rounds == ref_rounds
    assert is_maximal_independent_set(graph, fast_set)
    assert neighbor_designated_ds(graph) == neighbor_designated_ds_reference(graph)
    assert marking_process(graph) == marking_process_reference(graph)


def test_labels_on_disconnected_graph():
    graph = _random_graph(60, 42)
    for i in range(12):  # isolated island: a path the landmarks miss
        graph.add_node(("island", i))
    for i in range(11):
        graph.add_edge(("island", i), ("island", i + 1))
    landmarks = [lm for lm in select_landmarks(graph, 5)
                 if not (isinstance(lm, tuple) and lm[0] == "island")]
    fast = distance_gateway_labels(graph, landmarks)
    assert fast == distance_gateway_labels_reference(graph, landmarks)
    assert ("island", 0) not in fast  # unreachable nodes stay unlabeled
    assert marking_process(graph) == marking_process_reference(graph)
    assert compute_mis(graph)[0] == compute_mis_reference(graph)[0]


def test_marking_dense_regime_uses_bitset_and_matches():
    # A clique-of-cliques is dense enough to clear the n^2 <= 512 m gate.
    graph = complete_graph(48)
    graph.remove_edge(0, 1)  # ensure some node is genuinely marked
    assert graph.num_nodes ** 2 <= 512 * graph.num_edges
    assert marking_process(graph) == marking_process_reference(graph)


@pytest.mark.parametrize("make", [lambda: path_graph(64), lambda: star_graph(63)])
def test_degenerate_shapes_match_reference(make):
    graph = make()
    landmarks = select_landmarks(graph, 3)
    assert distance_gateway_labels(graph, landmarks) == \
        distance_gateway_labels_reference(graph, landmarks)
    assert compute_mis(graph) == compute_mis_reference(graph)
    assert neighbor_designated_ds(graph) == neighbor_designated_ds_reference(graph)
    assert marking_process(graph) == marking_process_reference(graph)


# ----------------------------------------------------------------------
# batched routing evaluators
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", [5, 9, 14])
def test_geo_and_hyperbolic_batches_match_reference(side):
    graph = grid_with_holes(
        side, 1.6, (((0.3 * side, 0.35 * side), 0.16 * side),),
        rng=np.random.default_rng(side),
    )
    rng = np.random.default_rng(side + 50)
    nodes = sorted(graph.nodes(), key=repr)
    pairs = _random_pairs(nodes, 80, rng)
    pairs += [(nodes[0], nodes[0])]  # source == target: zero-hop delivery
    fast = evaluate_geo_routing(graph, pairs)
    ref = evaluate_geo_routing_reference(graph, pairs)
    assert fast.rows() == ref.rows()
    assert fast.rows()[-1][2:] == (True, 0, 0)
    embedding = embed_tree(graph, certify=False)
    fast = evaluate_hyperbolic_routing(graph, embedding, pairs)
    ref = evaluate_hyperbolic_routing_reference(graph, embedding, pairs)
    assert fast.rows() == ref.rows()


@pytest.mark.parametrize("side", [5, 8, 12])
def test_kleinberg_batch_matches_reference(side):
    graph = kleinberg_grid(side, 2.0, np.random.default_rng(side))
    rng = np.random.default_rng(side + 60)
    nodes = sorted(graph.nodes())
    pairs = _random_pairs(nodes, 60, rng)
    fast = evaluate_kleinberg_routing(graph, pairs)
    ref = evaluate_kleinberg_routing_reference(graph, pairs)
    assert fast.rows() == ref.rows()


@pytest.mark.parametrize("members", [20, 90, 300])
def test_fspace_batch_matches_reference(members):
    rng = np.random.default_rng(members)
    profiles = {
        f"m{i}": tuple(int(x) for x in rng.integers(0, 3, size=6))
        for i in range(members)
    }
    space = FeatureSpace(profiles, (3,) * 6)
    occupied = sorted(space.strong_link_graph().nodes())
    pairs = _random_pairs(occupied, 50, rng)
    fast = evaluate_fspace_routing(space, pairs)
    ref = evaluate_fspace_routing_reference(space, pairs)
    assert fast.rows() == ref.rows()


def test_routing_empty_pairs():
    graph = grid_with_holes(6, 1.6, (), rng=np.random.default_rng(0))
    result = evaluate_geo_routing(graph, [])
    assert result.rows() == []
    assert result.success_rate == 1.0
    assert math.isnan(result.mean_hops)
    assert math.isnan(result.mean_stretch)


def test_routing_unreachable_targets():
    # Two unit-disk clusters far apart: pairs across the gap can never
    # deliver, and their optimal hop count must report -1.
    rng = np.random.default_rng(17)
    graph = Graph()
    for i in range(40):
        graph.add_node(("a", i), pos=(rng.uniform(0, 4), rng.uniform(0, 4)))
    for i in range(40):
        graph.add_node(("b", i), pos=(rng.uniform(50, 54), rng.uniform(0, 4)))
    nodes = sorted(graph.nodes(), key=repr)
    positions = {v: graph.node_attr(v, "pos") for v in nodes}
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            ux, uy = positions[u]
            vx, vy = positions[v]
            if math.hypot(ux - vx, uy - vy) <= 1.9:
                graph.add_edge(u, v)
    pairs = [(("a", 0), ("b", 0)), (("b", 3), ("a", 7)), (("a", 1), ("a", 2))]
    fast = evaluate_geo_routing(graph, pairs, positions=positions)
    ref = evaluate_geo_routing_reference(graph, pairs, positions=positions)
    assert fast.rows() == ref.rows()
    assert not fast.delivered[0] and not fast.delivered[1]
    assert fast.optimal_hops[0] == -1 and fast.optimal_hops[1] == -1


# ----------------------------------------------------------------------
# the shared stretch denominator
# ----------------------------------------------------------------------
def _bfs_hops(adjacency, source, target):
    """Plain dict-based BFS hop count; -1 if unreachable."""
    if source == target:
        return 0
    seen = {source: 0}
    frontier = [source]
    while frontier:
        nxt = []
        for node in frontier:
            for other in adjacency[node]:
                if other not in seen:
                    seen[other] = seen[node] + 1
                    if other == target:
                        return seen[other]
                    nxt.append(other)
        frontier = nxt
    return -1


@pytest.mark.parametrize("seed", [21, 22, 23])
@pytest.mark.parametrize("directed", [False, True])
def test_optimal_for_pairs_matches_python_bfs(seed, directed):
    rng = np.random.default_rng(seed)
    if directed:
        graph = gnutella_like_snapshot(90, rng)
        adjacency = {v: sorted(graph.successors(v)) for v in graph.nodes()}
    else:
        graph = erdos_renyi(90, 0.04, rng)
        adjacency = {v: sorted(graph.neighbors(v)) for v in graph.nodes()}
    fg = graph.frozen()
    nodes = fg.node_list
    n_pairs = 70
    sources = rng.integers(0, fg.n, size=n_pairs).astype(np.int64)
    targets = rng.integers(0, fg.n, size=n_pairs).astype(np.int64)
    sources[0] = targets[0]  # pin a source == target pair
    optimal = _optimal_for_pairs(fg, sources, targets)
    for p in range(n_pairs):
        expected = _bfs_hops(adjacency, nodes[int(sources[p])], nodes[int(targets[p])])
        assert optimal[p] == expected, f"pair {p}"


def test_optimal_for_pairs_many_distinct_targets():
    # More than 63 distinct targets forces multiple bitset chunks.
    graph = random_connected_graph(150, 0.03, np.random.default_rng(31))
    fg = graph.frozen()
    adjacency = {v: sorted(graph.neighbors(v)) for v in graph.nodes()}
    rng = np.random.default_rng(32)
    targets = rng.permutation(fg.n)[:130].astype(np.int64)
    sources = rng.integers(0, fg.n, size=130).astype(np.int64)
    optimal = _optimal_for_pairs(fg, sources, targets)
    nodes = fg.node_list
    for p in range(130):
        expected = _bfs_hops(adjacency, nodes[int(sources[p])], nodes[int(targets[p])])
        assert optimal[p] == expected


def test_optimal_for_pairs_empty():
    graph = path_graph(40)
    fg = graph.frozen()
    empty = np.array([], dtype=np.int64)
    assert _optimal_for_pairs(fg, empty, empty).shape == (0,)
