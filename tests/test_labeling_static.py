"""Static labels: CDS marking, MIS, neighbor-designated DS, NSF levels
(Sec. IV-A, Fig. 8)."""

import numpy as np
import pytest

from repro.graphs.generators import (
    complete_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.unit_disk import random_unit_disk_graph
from repro.graphs.traversal import connected_components
from repro.labeling.cds import (
    distributed_marking,
    is_connected_dominating_set,
    is_dominating_set,
    marking_process,
    paper_fig8_graph,
    rule_k_trimming,
    wu_dai_cds,
)
from repro.labeling.ds import (
    distributed_neighbor_designated_ds,
    neighbor_designated_ds,
)
from repro.labeling.mis import (
    DynamicMIS,
    compute_mis,
    distributed_mis,
    independent_neighbors_bound,
    is_independent_set,
    is_maximal_independent_set,
    random_priorities,
)
from repro.labeling.nsf_labels import distributed_nsf_levels
from repro.layering.nsf import nsf_levels, paper_fig7_graph


def giant_udg(rng, n=80, side=8.0, radius=1.6):
    graph = random_unit_disk_graph(n, side, side, radius, rng)
    return graph.subgraph(connected_components(graph)[0])


class TestMarking:
    def test_fig8_marking(self):
        g = paper_fig8_graph()
        assert marking_process(g) == {"B", "C", "D"}

    def test_clique_nothing_marked(self):
        assert marking_process(complete_graph(5)) == set()

    def test_path_interior_marked(self):
        g = path_graph(5)
        assert marking_process(g) == {1, 2, 3}

    def test_marking_yields_cds_on_connected_graph(self, rng):
        for seed in range(3):
            local = np.random.default_rng(seed)
            g = giant_udg(local)
            black = marking_process(g)
            if black:  # a clique-like giant may mark nothing
                assert is_connected_dominating_set(g, black)

    def test_distributed_matches_centralized(self, rng):
        g = giant_udg(rng, n=50)
        black, rounds = distributed_marking(g)
        assert black == marking_process(g)
        assert rounds <= 3  # localized: constant rounds

    def test_rule_k_keeps_cds(self, rng):
        for seed in range(4):
            local = np.random.default_rng(seed)
            g = giant_udg(local)
            marked, trimmed = wu_dai_cds(g)
            assert trimmed <= marked
            if marked:
                assert is_connected_dominating_set(g, trimmed)

    def test_fig8_trim_shrinks_backbone(self):
        g = paper_fig8_graph()
        marked, trimmed = wu_dai_cds(g)
        assert trimmed == {"B", "D"}
        assert is_connected_dominating_set(g, trimmed)

    def test_dominating_set_predicates(self):
        g = star_graph(4)
        assert is_dominating_set(g, {0})
        assert not is_dominating_set(g, {1})
        assert is_connected_dominating_set(g, {0})
        assert not is_connected_dominating_set(g, {1, 2})


class TestMIS:
    def test_fig8_mis_valid(self):
        g = paper_fig8_graph()
        mis, rounds = compute_mis(g)
        assert is_maximal_independent_set(g, mis)

    def test_mis_on_random_graphs(self, rng):
        for seed in range(5):
            local = np.random.default_rng(seed)
            g = random_connected_graph(40, 0.1, local)
            mis, rounds = compute_mis(g, random_priorities(g, local))
            assert is_maximal_independent_set(g, mis)

    def test_rounds_logarithmic_with_random_priorities(self, rng):
        g = random_connected_graph(300, 0.02, rng)
        _, rounds = compute_mis(g, random_priorities(g, rng))
        assert rounds <= 4 * int(np.log2(300))

    def test_distributed_matches_centralized(self, rng):
        g = random_connected_graph(30, 0.12, rng)
        priorities = random_priorities(g, rng)
        central, _ = compute_mis(g, priorities)
        distributed, _ = distributed_mis(g, priorities)
        assert central == distributed

    def test_independence_predicates(self):
        g = path_graph(4)
        assert is_independent_set(g, {0, 2})
        assert not is_independent_set(g, {0, 1})
        assert is_maximal_independent_set(g, {0, 2})  # 3 has neighbor 2
        assert not is_maximal_independent_set(g, {0})

    def test_udg_five_independent_neighbors_bound(self, rng):
        """The paper's footnote: no UDG node has 6 mutually independent
        neighbors."""
        for seed in range(5):
            local = np.random.default_rng(seed)
            g = giant_udg(local, n=60, side=6.0, radius=2.0)
            for node in g.nodes():
                assert independent_neighbors_bound(g, node) <= 5

    def test_star_k16_breaks_bound(self):
        """K_{1,6} (not a UDG) exceeds the UDG bound — the converse check."""
        from repro.graphs.unit_disk import star_k16

        star = star_k16()
        assert independent_neighbors_bound(star, "center") == 6


class TestDynamicMIS:
    def test_invariant_after_many_updates(self, rng):
        g = random_connected_graph(60, 0.05, rng)
        dynamic = DynamicMIS(g, rng)
        assert dynamic.check_invariant()
        nodes = sorted(g.nodes())
        for i in range(25):
            dynamic.add_node(
                f"n{i}", [nodes[int(rng.integers(len(nodes)))] for _ in range(3)]
            )
            assert dynamic.check_invariant()
        for i in range(0, 20, 2):
            dynamic.remove_node(f"n{i}")
            assert dynamic.check_invariant()

    def test_update_costs_small_on_average(self, rng):
        """[30]: expected O(1) adjustments per update with random
        priorities."""
        g = random_connected_graph(150, 0.03, rng)
        dynamic = DynamicMIS(g, rng)
        costs = []
        nodes = sorted(g.nodes())
        for i in range(60):
            cost = dynamic.add_node(
                f"x{i}", [nodes[int(rng.integers(len(nodes)))] for _ in range(4)]
            )
            costs.append(cost)
        assert sum(costs) / len(costs) <= 3.0

    def test_duplicate_add_rejected(self, rng):
        g = path_graph(3)
        dynamic = DynamicMIS(g, rng)
        with pytest.raises(ValueError):
            dynamic.add_node(0, [1])

    def test_remove_non_member_costs_zero(self, rng):
        g = path_graph(5)
        dynamic = DynamicMIS(g, rng)
        non_member = next(
            node for node in g.nodes() if node not in dynamic.mis()
        )
        assert dynamic.remove_node(non_member) == 0
        assert dynamic.check_invariant()


class TestNeighborDesignatedDS:
    def test_always_dominating(self, rng):
        for seed in range(5):
            local = np.random.default_rng(seed)
            g = random_connected_graph(40, 0.08, local)
            ds, selected_by = neighbor_designated_ds(g)
            assert is_dominating_set(g, ds)
            assert set(selected_by) == set(g.nodes())

    def test_one_round_termination(self, rng):
        g = random_connected_graph(40, 0.08, rng)
        _, rounds = distributed_neighbor_designated_ds(g)
        assert rounds <= 3  # designate + notify

    def test_distributed_matches_centralized(self, rng):
        g = random_connected_graph(30, 0.1, rng)
        central, _ = neighbor_designated_ds(g)
        distributed, _ = distributed_neighbor_designated_ds(g)
        assert central == distributed

    def test_ds_not_necessarily_connected_or_independent(self):
        """The paper: the designated DS is 'not a CDS or an IS' in general."""
        g = path_graph(6)  # priorities favour node 0, 1, ...
        ds, _ = neighbor_designated_ds(g)
        assert is_dominating_set(g, ds)
        from repro.labeling.mis import is_independent_set

        # On a path with ID priorities the winners cluster: verify the
        # *possibility* of non-CDS/non-IS rather than a specific set.
        assert not (
            is_connected_dominating_set(g, ds) and is_independent_set(g, ds)
        )


class TestDistributedNSFLabels:
    def test_matches_centralized_on_fig7(self):
        g = paper_fig7_graph()
        distributed, rounds = distributed_nsf_levels(g)
        assert distributed == nsf_levels(g)

    def test_matches_centralized_random(self, rng):
        for seed in range(4):
            local = np.random.default_rng(seed)
            g = random_connected_graph(25, 0.12, local)
            distributed, _ = distributed_nsf_levels(g)
            assert distributed == nsf_levels(g)

    def test_round_count_tracks_levels(self, rng):
        g = paper_fig7_graph()
        levels = nsf_levels(g)
        _, rounds = distributed_nsf_levels(g)
        assert rounds >= max(levels.values())
