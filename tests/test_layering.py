"""Structural layering: NSF, pub/sub, link reversal, max-flow (Sec. III-B)."""

import numpy as np
import pytest

from repro.errors import GraphClassError
from repro.graphs.generators import (
    barabasi_albert,
    complete_graph,
    grid_2d,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.graph import DiGraph, Graph
from repro.layering.link_reversal import (
    Orientation,
    binary_label_reversal,
    break_link,
    full_link_reversal,
    initial_heights,
    orientation_from_heights,
    paper_fig4_graph,
    partial_link_reversal,
)
from repro.layering.maxflow import (
    edmonds_karp_max_flow,
    flow_is_feasible,
    push_relabel_max_flow,
)
from repro.layering.nsf import (
    degree_levels,
    local_lowest_degree_nodes,
    nested_subgraphs,
    nsf_levels,
    nsf_report,
    paper_fig7_graph,
    peel_once,
    peel_to_fraction,
    top_level_nodes,
)
from repro.layering.pubsub import HierarchicalPubSub


class TestNSFPeeling:
    def test_local_lowest_degree_star_leaves(self):
        star = star_graph(4)
        lows = local_lowest_degree_nodes(star)
        assert 0 not in lows
        assert lows == {1, 2, 3, 4}

    def test_peel_once_removes_lows(self):
        star = star_graph(4)
        peeled = peel_once(star)
        assert set(peeled.nodes()) == {0}

    def test_nested_subgraphs_shrink(self, rng):
        g = barabasi_albert(400, 3, rng)
        family = nested_subgraphs(g, min_nodes=20)
        sizes = [sub.num_nodes for sub in family]
        assert sizes == sorted(sizes, reverse=True)
        assert len(family) >= 3

    def test_peel_to_fraction(self, rng):
        g = barabasi_albert(600, 3, rng)
        half = peel_to_fraction(g, 0.5)
        assert half.num_nodes <= 0.55 * g.num_nodes

    def test_peel_fraction_validation(self, rng):
        g = barabasi_albert(50, 2, rng)
        with pytest.raises(ValueError):
            peel_to_fraction(g, 0.0)

    def test_ba_graph_is_nsf(self, rng):
        """Fig. 3's claim on a scale-free P2P-like topology."""
        g = barabasi_albert(2000, 3, rng)
        report = nsf_report(g, kmin=3)
        assert report.is_scale_free
        assert report.is_nsf
        assert report.exponent_std < 0.35

    def test_grid_not_nsf(self):
        report = nsf_report(grid_2d(20, 20), kmin=2, min_nodes=50)
        assert not report.is_nsf


class TestNSFLevels:
    def test_fig7_more_levels_than_degree_ranking(self):
        g = paper_fig7_graph()
        nested = nsf_levels(g)
        plain = degree_levels(g)
        assert max(nested.values()) > max(plain.values())

    def test_fig7_single_top_node(self):
        g = paper_fig7_graph()
        assert top_level_nodes(nsf_levels(g)) == {"H"}

    def test_every_node_assigned(self, rng):
        g = random_connected_graph(40, 0.1, rng)
        levels = nsf_levels(g)
        assert set(levels) == set(g.nodes())
        assert min(levels.values()) == 1

    def test_complete_graph_levels_distinct(self):
        levels = nsf_levels(complete_graph(4))
        # With all degrees tied, ID tie-breaks peel one node per wave.
        assert sorted(levels.values()) == [1, 2, 3, 4]

    def test_isolated_node_level_one(self):
        g = Graph()
        g.add_node("x")
        assert nsf_levels(g) == {"x": 1}


class TestPubSub:
    def test_subscribe_publish_delivers(self, rng):
        g = barabasi_albert(150, 2, rng)
        broker = HierarchicalPubSub(g)
        broker.subscribe(10, "topic")
        broker.subscribe(20, "topic")
        delivered = broker.publish(100, "topic")
        assert delivered == {10, 20}

    def test_no_subscribers_no_delivery(self, rng):
        g = barabasi_albert(80, 2, rng)
        broker = HierarchicalPubSub(g)
        assert broker.publish(3, "silent") == set()

    def test_unsubscribe_stops_delivery(self, rng):
        g = barabasi_albert(80, 2, rng)
        broker = HierarchicalPubSub(g)
        broker.subscribe(7, "news")
        broker.unsubscribe(7, "news")
        assert broker.publish(50, "news") == set()

    def test_publish_cheaper_than_flooding(self, rng):
        g = barabasi_albert(300, 3, rng)
        broker = HierarchicalPubSub(g)
        broker.subscribe(42, "t")
        broker.publish(7, "t")
        assert broker.stats.publish_hops < broker.flood_cost()

    def test_subscribers_listing(self, rng):
        g = barabasi_albert(60, 2, rng)
        broker = HierarchicalPubSub(g)
        broker.subscribe(1, "a")
        broker.subscribe(2, "a")
        assert broker.subscribers("a") == {1, 2}

    def test_topic_isolation(self, rng):
        g = barabasi_albert(60, 2, rng)
        broker = HierarchicalPubSub(g)
        broker.subscribe(1, "a")
        assert broker.publish(5, "b") == set()


def anti_oriented_path(n):
    """Path 0-..-(n-1), destination n-1, all links pointing away from it."""
    graph = path_graph(n)
    heights = {i: (i + 1, i) for i in range(n)}
    heights[n - 1] = (0, 0)
    return graph, n - 1, heights


class TestLinkReversal:
    def test_initial_heights_destination_oriented(self, rng):
        g = random_connected_graph(30, 0.1, rng)
        heights = initial_heights(g, 0)
        orientation = orientation_from_heights(g, heights)
        assert orientation.is_destination_oriented(0)

    def test_initial_heights_disconnected_raises(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(GraphClassError):
            initial_heights(g, 0)

    def test_fig4_a_reverses_twice(self):
        """Fig. 4: node A is involved in multiple rounds of reversals."""
        graph, destination, heights = paper_fig4_graph()
        result = full_link_reversal(graph, destination, heights=heights)
        assert result.node_reversals["A"] == 2
        assert result.node_reversals["B"] == 1
        assert result.orientation.is_destination_oriented(destination)

    def test_full_reversal_quadratic_on_path(self):
        """The O(n^2) worst case the paper warns about."""
        for n in (6, 10, 14):
            graph, destination, heights = anti_oriented_path(n)
            result = full_link_reversal(graph, destination, heights=heights)
            k = n - 2  # nodes that must climb
            assert result.steps == k * (k + 1) // 2
            assert result.orientation.is_destination_oriented(destination)

    def test_partial_reversal_repairs(self):
        graph, destination, heights = anti_oriented_path(8)
        result = partial_link_reversal(
            graph, destination, heights={k: (v[0], v[1]) for k, v in heights.items()}
        )
        assert result.orientation.is_destination_oriented(destination)

    def test_binary_all_ones_equals_full(self):
        """[24]: all-1 labels reproduce full reversal step counts."""
        graph, destination, heights = anti_oriented_path(9)
        full = full_link_reversal(graph, destination, heights=heights)
        binary = binary_label_reversal(
            graph, destination, initial_label=1, heights=heights
        )
        assert binary.steps == full.steps
        assert binary.orientation.is_destination_oriented(destination)

    def test_binary_all_zeros_repairs_cheaper_here(self):
        graph, destination, heights = anti_oriented_path(9)
        full = full_link_reversal(graph, destination, heights=heights)
        binary = binary_label_reversal(
            graph, destination, initial_label=0, heights=heights
        )
        assert binary.orientation.is_destination_oriented(destination)
        assert binary.steps <= full.steps

    def test_break_link_then_repair(self, rng):
        g = random_connected_graph(25, 0.15, rng)
        heights = initial_heights(g, 0)
        orientation = orientation_from_heights(g, heights)
        # Find a node whose only outgoing link can be broken.
        target_edge = None
        for node in g.nodes():
            outs = orientation.out_neighbors(node)
            if node != 0 and len(outs) == 1:
                other = next(iter(outs))
                if g.degree(node) > 1:
                    target_edge = (node, other)
                    break
        if target_edge is None:
            pytest.skip("no suitable single-out node in this instance")
        broken = break_link(orientation, *target_edge)
        result = full_link_reversal(
            broken.graph, 0, orientation=broken,
            heights={n: heights[n] for n in broken.graph.nodes()},
        )
        assert result.orientation.is_destination_oriented(0)

    def test_bad_initial_label(self):
        graph, destination, heights = anti_oriented_path(5)
        with pytest.raises(ValueError):
            binary_label_reversal(graph, destination, initial_label=2, heights=heights)

    def test_orientation_helpers(self):
        g = Graph()
        g.add_edge("a", "b")
        o = Orientation(g)
        o.orient("a", "b", toward="b")
        assert o.out_neighbors("a") == {"b"}
        assert o.in_neighbors("b") == {"a"}
        assert o.is_sink("b")
        o.reverse("a", "b")
        assert o.is_sink("a")


def random_flow_network(n, rng, p=0.35, max_capacity=10):
    g = DiGraph()
    for node in range(n):
        g.add_node(node)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_edge(u, v, capacity=float(rng.integers(1, max_capacity)))
    return g


class TestMaxFlow:
    def test_push_relabel_matches_edmonds_karp(self, rng):
        for seed in range(5):
            local = np.random.default_rng(seed)
            g = random_flow_network(12, local)
            pr = push_relabel_max_flow(g, 0, 11)
            ek = edmonds_karp_max_flow(g, 0, 11)
            assert pr.value == pytest.approx(ek.value)

    def test_flows_feasible(self, rng):
        g = random_flow_network(10, rng)
        pr = push_relabel_max_flow(g, 0, 9)
        ek = edmonds_karp_max_flow(g, 0, 9)
        assert flow_is_feasible(g, 0, 9, pr)
        assert flow_is_feasible(g, 0, 9, ek)

    def test_known_small_instance(self):
        g = DiGraph()
        g.add_edge("s", "a", capacity=3)
        g.add_edge("s", "b", capacity=2)
        g.add_edge("a", "b", capacity=1)
        g.add_edge("a", "t", capacity=2)
        g.add_edge("b", "t", capacity=3)
        assert push_relabel_max_flow(g, "s", "t").value == 5
        assert edmonds_karp_max_flow(g, "s", "t").value == 5

    def test_disconnected_zero_flow(self):
        g = DiGraph()
        g.add_edge("s", "a", capacity=1)
        g.add_node("t")
        assert push_relabel_max_flow(g, "s", "t").value == 0

    def test_source_equals_sink_rejected(self):
        g = DiGraph()
        g.add_edge("s", "t", capacity=1)
        with pytest.raises(ValueError):
            push_relabel_max_flow(g, "s", "s")

    def test_negative_capacity_rejected(self):
        g = DiGraph()
        g.add_edge("s", "t", capacity=-2)
        with pytest.raises(ValueError):
            push_relabel_max_flow(g, "s", "t")

    def test_work_counters_populated(self, rng):
        g = random_flow_network(10, rng)
        pr = push_relabel_max_flow(g, 0, 9)
        ek = edmonds_karp_max_flow(g, 0, 9)
        assert pr.pushes > 0
        assert ek.augmenting_paths >= 1
