"""Mobility models and contact detection."""

import math

import numpy as np
import pytest

from repro.mobility.base import Arena
from repro.mobility.community import (
    CommunityMobility,
    feature_distance,
    profile_home_cell,
    random_profiles,
)
from repro.mobility.random_walk import RandomWalk
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.trace import collect_contact_trace


class TestArena:
    def test_clamp(self):
        arena = Arena(10, 5)
        assert arena.clamp((-1, 7)) == (0, 5)
        assert arena.contains((3, 3))
        assert not arena.contains((11, 0))

    def test_invalid_arena(self):
        with pytest.raises(ValueError):
            Arena(0, 5)


class TestRandomWaypoint:
    def test_positions_inside_arena(self, rng):
        arena = Arena(10, 10)
        model = RandomWaypoint(20, arena, rng)
        for positions in model.run(30):
            for point in positions.values():
                assert arena.contains(point)

    def test_speed_bound_respected(self, rng):
        arena = Arena(20, 20)
        model = RandomWaypoint(10, arena, rng, v_min=0.5, v_max=1.0, dt=1.0)
        previous = model.positions()
        for _ in range(20):
            current = model.step()
            for node in current:
                dx = math.hypot(
                    current[node][0] - previous[node][0],
                    current[node][1] - previous[node][1],
                )
                assert dx <= 1.0 + 1e-9
            previous = current

    def test_pausing_nodes_stand_still_sometimes(self, rng):
        arena = Arena(5, 5)
        model = RandomWaypoint(5, arena, rng, pause_max=10.0)
        stationary_steps = 0
        previous = model.positions()
        for _ in range(50):
            current = model.step()
            for node in current:
                if current[node] == previous[node]:
                    stationary_steps += 1
            previous = current
        assert stationary_steps > 0

    def test_validation(self, rng):
        arena = Arena(5, 5)
        with pytest.raises(ValueError):
            RandomWaypoint(0, arena, rng)
        with pytest.raises(ValueError):
            RandomWaypoint(5, arena, rng, v_min=2.0, v_max=1.0)


class TestRandomWalk:
    def test_positions_inside_arena(self, rng):
        arena = Arena(8, 8)
        model = RandomWalk(15, arena, rng, speed=2.0)
        for positions in model.run(40):
            for point in positions.values():
                assert arena.contains(point)

    def test_movement_happens(self, rng):
        arena = Arena(8, 8)
        model = RandomWalk(5, arena, rng, speed=1.0)
        start = model.positions()
        model.step()
        moved = sum(1 for n in start if model.positions()[n] != start[n])
        assert moved == 5


class TestCommunityMobility:
    def test_same_profile_same_home(self, rng):
        arena = Arena(20, 20)
        home1 = profile_home_cell((0, 1, 2), (2, 2, 3), arena)
        home2 = profile_home_cell((0, 1, 2), (2, 2, 3), arena)
        assert home1 == home2

    def test_different_profiles_different_homes(self):
        arena = Arena(20, 20)
        homes = {
            profile_home_cell((a, b), (2, 2), arena)
            for a in range(2)
            for b in range(2)
        }
        assert len(homes) == 4

    def test_feature_distance(self):
        assert feature_distance((0, 1, 2), (0, 1, 2)) == 0
        assert feature_distance((0, 1, 2), (1, 1, 0)) == 2
        with pytest.raises(ValueError):
            feature_distance((0,), (0, 1))

    def test_random_profiles_in_range(self, rng):
        profiles = random_profiles(50, (2, 3, 4), rng)
        assert len(profiles) == 50
        for profile in profiles.values():
            assert all(0 <= v < r for v, r in zip(profile, (2, 3, 4)))

    def test_profile_validation(self, rng):
        arena = Arena(10, 10)
        with pytest.raises(ValueError):
            CommunityMobility({0: (5, 0)}, (2, 2), arena, rng)

    def test_contact_frequency_decays_with_feature_distance(self, rng):
        """The empirical law of [21], reproduced by construction."""
        arena = Arena(24, 24)
        profiles = random_profiles(36, (2, 2, 3), rng)
        model = CommunityMobility(profiles, (2, 2, 3), arena, rng)
        trace = collect_contact_trace(model, 250, radius=2.0)
        by_distance = {}
        counts = trace.pair_contact_counts()
        nodes = list(profiles)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                d = feature_distance(profiles[u], profiles[v])
                by_distance.setdefault(d, []).append(
                    counts.get(frozenset((u, v)), 0)
                )
        means = {
            d: sum(vals) / len(vals) for d, vals in by_distance.items() if vals
        }
        assert means[0] > means[max(means)]


class TestContactDetection:
    def test_static_nodes_single_long_contact(self, rng):
        class Static(RandomWalk):
            def step(self):
                return self.positions()

        arena = Arena(5, 5)
        model = Static(2, arena, rng, speed=0.0001)
        # Force both nodes close together.
        model._pos = {0: (1.0, 1.0), 1: (1.5, 1.0)}
        trace = collect_contact_trace(model, 10, radius=1.0)
        assert trace.num_contacts == 1
        record = trace.records[0]
        assert record.duration >= 10

    def test_out_of_range_no_contacts(self, rng):
        class Static(RandomWalk):
            def step(self):
                return self.positions()

        arena = Arena(50, 50)
        model = Static(2, arena, rng, speed=0.0001)
        model._pos = {0: (1.0, 1.0), 1: (40.0, 40.0)}
        trace = collect_contact_trace(model, 5, radius=1.0)
        assert trace.num_contacts == 0

    def test_bad_radius(self, rng):
        arena = Arena(5, 5)
        model = RandomWalk(3, arena, rng)
        with pytest.raises(ValueError):
            collect_contact_trace(model, 5, radius=0.0)
