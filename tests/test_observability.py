"""The observability layer: registry, histograms, spans, exporters.

Covers the contracts the rest of the library now leans on: get-or-create
registry semantics (one name, one kind), exact histogram percentiles,
span nesting and attributes, the disabled-mode overhead bound, JSONL and
Prometheus round-trips, and the engine/DTN integration (legacy stats
views must agree with the registry snapshot exactly).
"""

import json
import math
import os
import time

import pytest

from repro.dtn.routers import EpidemicRouter
from repro.dtn.simulator import DTNSimulation, MessageSpec
from repro.graphs.generators import path_graph
from repro.observability import (
    BenchReport,
    MetricsRegistry,
    Tracer,
    parse_prometheus,
    read_jsonl,
    to_prometheus,
    validate_bench_report,
    write_jsonl,
)
from repro.observability.instrument import timed
from repro.runtime.engine import Network, NodeAlgorithm, RunStats
from repro.temporal.evolving import EvolvingGraph


class TestRegistrySemantics:
    def test_counter_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro.test.things")
        counter.inc()
        assert registry.counter("repro.test.things") is counter
        assert registry.counter("repro.test.things").value == 1

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro.test.down")
        counter.inc(5)
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            counter.set(3)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro.test.name")
        with pytest.raises(ValueError):
            registry.gauge("repro.test.name")
        with pytest.raises(ValueError):
            registry.histogram("repro.test.name")

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.gauge("repro.test.buffer", {"node": 1})
        b = registry.gauge("repro.test.buffer", {"node": 2})
        assert a is not b
        a.set(3)
        b.set(7)
        snapshot = registry.snapshot()
        assert snapshot["repro.test.buffer{node=1}"] == 3
        assert snapshot["repro.test.buffer{node=2}"] == 7

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("repro.test.c", {"x": 1, "y": 2})
        b = registry.counter("repro.test.c", {"y": 2, "x": 1})
        assert a is b

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro.test.g")
        gauge.inc(4)
        gauge.dec(1.5)
        assert gauge.value == pytest.approx(2.5)

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("repro.test.a").inc(2)
        registry.histogram("repro.test.h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["repro.test.a"] == 2
        assert snapshot["repro.test.h"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {}


class TestHistogram:
    def test_exact_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro.test.latency")
        for value in [5, 1, 4, 2, 3]:
            hist.observe(value)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(0.5) == 3.0
        assert hist.percentile(1.0) == 5.0
        assert hist.mean == pytest.approx(3.0)
        assert hist.min == 1 and hist.max == 5
        assert hist.sum == 15

    def test_empty_histogram_degenerate_values(self):
        hist = MetricsRegistry().histogram("repro.test.empty")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.9) == math.inf
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["p50"] is None

    def test_percentile_out_of_range(self):
        hist = MetricsRegistry().histogram("repro.test.q")
        hist.observe(1)
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)

    def test_values_list_is_live(self):
        # RunStats.messages_per_round relies on this: appending to the
        # exposed list is the same as observing.
        hist = MetricsRegistry().histogram("repro.test.live")
        hist.values.append(4)
        assert hist.count == 1
        assert hist.mean == 4.0


class TestTracing:
    def test_span_nesting_parent_child(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", a=1):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records  # inner closes first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent_id"] == outer["span_id"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["attrs"] == {"a": 1}
        assert inner["duration_s"] >= 0.0

    def test_set_attribute_and_exception_marking(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("work") as span:
                span.set_attribute("k", "v")
                raise RuntimeError("boom")
        (record,) = tracer.records
        assert record["attrs"]["k"] == "v"
        assert record["attrs"]["error"] == "RuntimeError"

    def test_events_attach_to_current_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            tracer.event("ping", x=1)
        event = tracer.events("ping")[0]
        span = tracer.spans("parent")[0]
        assert event["parent_id"] == span["span_id"]
        assert event["attrs"] == {"x": 1}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span:
            span.set_attribute("ignored", True)
        tracer.event("also-invisible")
        assert tracer.records == []

    def test_noop_overhead_smoke(self):
        # The disabled span must be cheap enough to sit on the engine's
        # per-round path: 100k no-op spans well under a second.
        tracer = Tracer(enabled=False)
        start = time.perf_counter()
        for _ in range(100_000):
            with tracer.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"no-op span too slow: {elapsed:.3f}s per 100k"

    def test_timed_decorator_records_duration(self):
        from repro.observability.metrics import get_registry

        @timed("repro.test.timed_fn")
        def workload(x):
            return x * 2

        assert workload(21) == 42
        hist = get_registry().get("repro.test.timed_fn.duration_s")
        assert hist is not None and hist.count >= 1


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("engine.run", nodes=3):
            tracer.event("dtn.contact", u=0, v=frozenset({1}))
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, tracer.records)
        loaded = read_jsonl(path)
        assert len(loaded) == len(tracer.records) == 2
        names = {record["name"] for record in loaded}
        assert names == {"engine.run", "dtn.contact"}
        span = [r for r in loaded if r["type"] == "span"][0]
        assert span["attrs"]["nodes"] == 3

    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro.runtime.rounds").inc(7)
        registry.gauge("repro.dtn.buffer_occupancy", {"node": 2}).set(4)
        for value in (1, 2, 3, 4):
            registry.histogram("repro.dtn.latency").observe(value)
        text = to_prometheus(registry)
        assert "# TYPE repro_runtime_rounds counter" in text
        assert "# TYPE repro_dtn_latency summary" in text
        samples = parse_prometheus(text)
        assert samples["repro_runtime_rounds"] == 7
        assert samples['repro_dtn_buffer_occupancy{node="2"}'] == 4
        assert samples["repro_dtn_latency_count"] == 4
        assert samples["repro_dtn_latency_sum"] == 10
        assert samples['repro_dtn_latency{quantile="0.5"}'] == 3

    def test_bench_report_write_and_validate(self, tmp_path):
        report = BenchReport(
            experiment="unit",
            title="t",
            header=["a", "b"],
            rows=[[1, 2], [3, 4]],
            metrics={"repro.test.x": 1},
            timings={"wall_s": 0.5},
        )
        out_dir = str(tmp_path / "out")
        paths = report.write(out_dir, top_dir=str(tmp_path))
        assert os.path.basename(paths[0]) == "unit.json"
        assert os.path.basename(paths[1]) == "BENCH_unit.json"
        document = json.loads(open(paths[1]).read())
        assert validate_bench_report(document) == []

    def test_validate_rejects_malformed_documents(self):
        assert validate_bench_report({}) != []
        bad = {
            "schema": "repro.bench/v1",
            "experiment": "x",
            "header": ["a"],
            "rows": [[1, 2]],  # width mismatch
            "metrics": {},
            "timings": {"wall_s": "not-a-number"},
        }
        problems = validate_bench_report(bad)
        assert any("cells" in p for p in problems)
        assert any("timings" in p for p in problems)


class Flood(NodeAlgorithm):
    def __init__(self, source):
        self.source = source

    def init(self, ctx):
        ctx.state["informed"] = ctx.node == self.source
        if ctx.state["informed"]:
            ctx.broadcast("token")

    def step(self, ctx):
        if ctx.inbox and not ctx.state["informed"]:
            ctx.state["informed"] = True
            ctx.broadcast("token")
        ctx.halt()


class TestEngineIntegration:
    def test_runstats_view_matches_registry_snapshot_exactly(self):
        net = Network(path_graph(6), lambda n: Flood(0))
        stats = net.run()
        snapshot = net.metrics.snapshot()
        assert snapshot["repro.runtime.rounds"] == stats.rounds
        assert snapshot["repro.runtime.messages_sent"] == stats.messages_sent
        assert snapshot["repro.runtime.messages_per_round"]["count"] == len(
            stats.messages_per_round
        )
        assert snapshot["repro.runtime.messages_per_round"]["sum"] == sum(
            stats.messages_per_round
        )

    def test_legacy_runstats_constructor_and_mutation(self):
        stats = RunStats(rounds=2, messages_sent=5, messages_per_round=[3, 2])
        assert stats.rounds == 2
        assert stats.messages_sent == 5
        stats.messages_sent += 4
        stats.messages_per_round.append(4)
        assert stats.messages_sent == 9
        assert stats.messages_per_round == [3, 2, 4]
        assert stats == RunStats(rounds=2, messages_sent=9, messages_per_round=[3, 2, 4])
        assert "rounds=2" in repr(stats)

    def test_engine_run_produces_jsonl_trace(self, tmp_path):
        tracer = Tracer(enabled=True)
        net = Network(path_graph(5), lambda n: Flood(0), tracer=tracer)
        stats = net.run()
        run_spans = [r for r in tracer.spans("engine.run")]
        round_spans = [r for r in tracer.spans("engine.round")]
        assert len(run_spans) == 1
        assert run_spans[0]["attrs"]["rounds"] == stats.rounds
        assert run_spans[0]["attrs"]["messages_sent"] == stats.messages_sent
        assert len(round_spans) == stats.rounds
        assert all(r["parent_id"] == run_spans[0]["span_id"] for r in round_spans)
        path = str(tmp_path / "run.jsonl")
        write_jsonl(path, tracer.records)
        assert len(read_jsonl(path)) == len(tracer.records)

    def test_round_hooks_fire_per_round(self):
        net = Network(path_graph(4), lambda n: Flood(0))
        seen = []
        net.add_round_hook(lambda rnd, delivered: seen.append((rnd, delivered)))
        stats = net.run()
        assert [rnd for rnd, _ in seen] == list(range(1, stats.rounds + 1))
        assert sum(d for _, d in seen) + stats.messages_per_round[0] == (
            stats.messages_sent
        )

    def test_message_size_accounting_opt_in(self):
        net = Network(path_graph(3), lambda n: Flood(0), measure_message_sizes=True)
        net.run()
        counter = net.metrics.get("repro.runtime.message_bytes")
        assert counter is not None and counter.value > 0
        # Off by default: no series registered.
        net2 = Network(path_graph(3), lambda n: Flood(0))
        net2.run()
        assert net2.metrics.get("repro.runtime.message_bytes") is None


class TestDTNIntegration:
    @staticmethod
    def _simulation(**kwargs):
        eg = EvolvingGraph(horizon=4, nodes=range(3))
        eg.add_contact(0, 1, 0)
        eg.add_contact(1, 2, 1)
        return DTNSimulation(eg, EpidemicRouter(), **kwargs)

    def test_delivery_metrics_match_stats(self):
        sim = self._simulation()
        sim.add_message(MessageSpec("m0", 0, 2, created=0))
        stats = sim.run()
        snapshot = sim.metrics.snapshot()
        assert snapshot["repro.dtn.messages_created"] == stats.created == 1
        assert snapshot["repro.dtn.delivered"] == stats.delivered == 1
        assert snapshot["repro.dtn.contacts"] == 2
        assert snapshot["repro.dtn.latency"]["count"] == len(stats.latencies)
        assert snapshot["repro.dtn.delivery_ratio"] == stats.delivery_ratio

    def test_stats_is_idempotent_for_registry_samples(self):
        sim = self._simulation()
        sim.add_message(MessageSpec("m0", 0, 2, created=0))
        sim.run()
        first = sim.metrics.snapshot()["repro.dtn.copies"]
        sim.stats()
        sim.stats()
        assert sim.metrics.snapshot()["repro.dtn.copies"] == first

    def test_contact_and_exchange_events_traced(self):
        tracer = Tracer(enabled=True)
        sim = self._simulation(tracer=tracer)
        sim.add_message(MessageSpec("m0", 0, 2, created=0))
        sim.run()
        assert len(tracer.events("dtn.contact")) == 2
        assert len(tracer.events("dtn.delivered")) == 1
        assert len(tracer.spans("dtn.run")) == 1

    def test_buffer_drop_counter_and_gauge(self):
        eg = EvolvingGraph(horizon=4, nodes=range(4))
        eg.add_contact(0, 1, 0)
        eg.add_contact(2, 1, 0)
        sim = DTNSimulation(eg, EpidemicRouter(), buffer_size=1)
        sim.add_message(MessageSpec("a", 0, 3, created=0))
        sim.add_message(MessageSpec("b", 2, 3, created=0))
        sim.run()
        assert sim.metrics.counter("repro.dtn.buffer_drops").value >= 1
        gauge = sim.metrics.get("repro.dtn.buffer_occupancy", {"node": 1})
        assert gauge is not None and gauge.value <= 1
