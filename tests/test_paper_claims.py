"""Integration tests: every quantitative claim the paper narrates,
checked end-to-end against the corresponding figure fixture.

One test class per figure/claim; see DESIGN.md's per-experiment index.
"""

import numpy as np
import pytest

from repro.core.properties import preserves_completion_times
from repro.graphs.hypercube import parse_address
from repro.graphs.interval import cycle_graph, is_chordal, is_interval_graph
from repro.graphs.interval_hypergraph import interval_hypergraph
from repro.graphs.unit_disk import star_k16, is_unit_disk_realization
from repro.labeling.cds import paper_fig8_graph, wu_dai_cds, is_connected_dominating_set
from repro.labeling.mis import compute_mis, is_maximal_independent_set
from repro.labeling.safety import (
    compute_safety_levels,
    paper_fig9_faults,
    safety_guided_route,
)
from repro.layering.link_reversal import full_link_reversal, paper_fig4_graph
from repro.layering.nsf import nsf_levels, nsf_report, paper_fig7_graph, top_level_nodes
from repro.temporal.connectivity import (
    connection_start_times,
    ever_snapshot_connected,
)
from repro.temporal.evolving import paper_fig2_evolving_graph
from repro.temporal.journeys import earliest_completion_journey
from repro.trimming.static_rules import id_priority, link_ignorable, trim_nodes


class TestSectionII:
    """Graph-model claims of Sec. II."""

    def test_star_k16_not_unit_disk(self):
        """'A star graph with one center node and six or more leaves' is
        not a unit disk graph."""
        import math

        star = star_k16()
        # The best possible placement (leaves evenly spread on the unit
        # circle) still forces a leaf-leaf edge.
        positions = {"center": (0.0, 0.0)}
        for k in range(6):
            angle = 2 * math.pi * k / 6
            positions[f"leaf{k + 1}"] = (math.cos(angle), math.sin(angle))
        assert not is_unit_disk_realization(star, positions, 1.0)

    def test_interval_graphs_are_chordal(self):
        """'If G is an interval graph, it must be a chordal graph.'"""
        rng = np.random.default_rng(0)
        from repro.graphs.interval import interval_graph

        intervals = {
            i: (float(a), float(a + w))
            for i, (a, w) in enumerate(
                zip(rng.uniform(0, 20, 15), rng.uniform(0.1, 5, 15))
            )
        }
        assert is_chordal(interval_graph(intervals))

    def test_cycles_cannot_be_interval(self):
        """'Time is linear, not circular.'"""
        for n in (4, 5, 6, 7):
            assert not is_interval_graph(cycle_graph(n))

    def test_fig1_hyperedge(self):
        """Fig. 1: A, C, D intersect at one moment → hyperedge {A, C, D}."""
        hyper = interval_hypergraph(
            {"A": [(0, 4)], "B": [(5, 7)], "C": [(2, 6)], "D": [(3, 5)]}
        )
        members = {e.members for e in hyper.hyperedges}
        assert frozenset({"A", "C", "D"}) in members


class TestFig2:
    """The VANET time-evolving graph."""

    def test_path_a4_b5_c_exists(self):
        eg = paper_fig2_evolving_graph()
        journey = earliest_completion_journey(eg, "A", "C", start=4)
        assert journey.hops == (("A", "B", 4), ("B", "C", 5))

    def test_a_connected_to_c_at_0_through_4(self):
        eg = paper_fig2_evolving_graph()
        assert connection_start_times(eg, "A", "C") == [0, 1, 2, 3, 4]

    def test_a_c_never_connected_in_a_snapshot(self):
        eg = paper_fig2_evolving_graph()
        assert not ever_snapshot_connected(eg, "A", "C")


class TestFig2Trimming:
    """Sec. III-A on the Fig. 2 graph."""

    def test_a_can_ignore_neighbor_d(self):
        eg = paper_fig2_evolving_graph()
        assert link_ignorable(eg, "A", "D", id_priority(eg))

    def test_specific_replacement_pair(self):
        """A --3--> D --6--> C is replaced by A --4--> B --5--> C:
        the replacement departs later (4 >= 3) and arrives earlier
        (5 <= 6)."""
        eg = paper_fig2_evolving_graph()
        assert eg.has_contact("A", "D", 3)
        assert eg.has_contact("C", "D", 6)
        assert eg.has_contact("A", "B", 4)
        assert eg.has_contact("B", "C", 5)

    def test_trimming_preserves_completion_times(self):
        eg = paper_fig2_evolving_graph()
        trimmed, _ = trim_nodes(eg)
        assert preserves_completion_times(eg, trimmed)


class TestFig3:
    """NSF on a Gnutella-like snapshot."""

    def test_snapshot_and_half_peel_both_scale_free_similar_exponent(self):
        from repro.datasets.gnutella import gnutella_largest_scc
        from repro.graphs.metrics import degree_sequence, fit_power_law
        from repro.layering.nsf import peel_to_fraction

        rng = np.random.default_rng(3)
        g = gnutella_largest_scc(3000, rng)
        half = peel_to_fraction(g, 0.5)
        full_fit = fit_power_law(degree_sequence(g), kmin=4)
        half_fit = fit_power_law(degree_sequence(half), kmin=4)
        assert abs(full_fit.alpha - half_fit.alpha) < 0.5

    def test_nsf_condition_2_small_exponent_std(self):
        from repro.datasets.gnutella import gnutella_largest_scc

        rng = np.random.default_rng(4)
        g = gnutella_largest_scc(2500, rng)
        report = nsf_report(g, kmin=3)
        assert report.is_nsf
        assert report.exponent_std < 0.35


class TestFig4:
    """Full link reversal after a broken link."""

    def test_process_terminates_in_destination_oriented_dag(self):
        graph, destination, heights = paper_fig4_graph()
        result = full_link_reversal(graph, destination, heights=heights)
        assert result.orientation.is_destination_oriented(destination)

    def test_node_a_involved_in_multiple_rounds(self):
        graph, destination, heights = paper_fig4_graph()
        result = full_link_reversal(graph, destination, heights=heights)
        assert result.node_reversals["A"] >= 2


class TestFig7:
    """Degree vs nested-degree labeling."""

    def test_single_top_level_node(self):
        levels = nsf_levels(paper_fig7_graph())
        assert len(top_level_nodes(levels)) == 1


class TestFig8:
    """Static labels: marking, trimming, MIS."""

    def test_marking_then_trimming_preserves_cds(self):
        g = paper_fig8_graph()
        marked, trimmed = wu_dai_cds(g)
        assert trimmed < marked
        assert is_connected_dominating_set(g, trimmed)

    def test_mis_is_valid_and_disjoint_from_neighbors(self):
        g = paper_fig8_graph()
        mis, rounds = compute_mis(g)
        assert is_maximal_independent_set(g, mis)
        assert rounds <= 3


class TestFig9:
    """Safety-level routing in the 4-cube with 3 faults."""

    def test_1101_selects_0101_with_level_2(self):
        n, faults = paper_fig9_faults()
        s = compute_safety_levels(n, faults)
        assert s.levels[parse_address("0101")] == 2
        route = safety_guided_route(s, parse_address("1101"), parse_address("0001"))
        assert route.path[1] == parse_address("0101")
        assert route.delivered and route.optimal

    def test_at_most_n_minus_1_rounds(self):
        n, faults = paper_fig9_faults()
        s = compute_safety_levels(n, faults)
        assert s.rounds <= n - 1


class TestSectionI:
    """The small-world opening claim."""

    def test_localized_greedy_routing_finds_short_paths(self):
        from repro.labeling.kleinberg_routing import greedy_grid_route
        from repro.graphs.generators import kleinberg_grid

        rng = np.random.default_rng(11)
        g = kleinberg_grid(20, 2.0, rng)
        hops = []
        for _ in range(40):
            s = (int(rng.integers(20)), int(rng.integers(20)))
            t = (int(rng.integers(20)), int(rng.integers(20)))
            if s == t:
                continue
            route = greedy_grid_route(g, s, t)
            assert route.delivered
            hops.append(route.hops)
        # Short paths: well under the lattice diameter (38).
        assert sum(hops) / len(hops) < 19


class TestClaimsUnderFaults:
    """The narrated claims survive a mildly chaotic environment.

    The paper's setting is "socially-rich and dynamic" — links flap and
    messages go missing.  With the seeded chaos layer (repro.faults)
    plus retries, the figure claims still hold: flooding still informs
    everyone, and full reversal's per-node work is untouched by
    duplicated announcements (heights only rise, so beliefs max-merge).
    """

    def test_flooding_informs_everyone_despite_drops(self):
        from repro.faults import FaultPlan, MessageFaults, RetryPolicy
        from repro.graphs.generators import grid_2d
        from repro.runtime.engine import Network
        from tests.test_runtime import Flood

        plan = FaultPlan(
            21,
            [MessageFaults(drop=0.1, duplicate=0.05)],
            retry=RetryPolicy(),
        )
        network = Network(grid_2d(4, 4), lambda n: Flood((0, 0)), fault_plan=plan)
        network.run()
        assert all(network.states("informed").values())
        assert network.faults.summary().get("drop", 0) >= 1

    def test_fig4_reversal_counts_immune_to_duplication(self):
        from repro.faults import FaultPlan, MessageFaults
        from repro.layering.link_reversal_distributed import (
            distributed_full_reversal,
        )

        graph, destination, heights = paper_fig4_graph()
        _, _, clean, _ = distributed_full_reversal(graph, destination, heights)
        assert clean["A"] >= 2  # the narrated multi-round involvement
        for seed in range(5):
            plan = FaultPlan(seed, [MessageFaults(duplicate=0.3)])
            _, _, noisy, _ = distributed_full_reversal(
                graph, destination, heights, fault_plan=plan
            )
            assert noisy == clean

    def test_quadratic_worst_case_immune_to_duplication(self):
        from repro.faults import FaultPlan, MessageFaults
        from repro.graphs.generators import path_graph
        from repro.layering.link_reversal_distributed import (
            distributed_full_reversal,
        )

        n = 8
        graph = path_graph(n)
        heights = {i: (i + 1, i) for i in range(n)}
        heights[n - 1] = (0, 0)
        k = n - 2
        for seed in range(3):
            plan = FaultPlan(seed, [MessageFaults(duplicate=0.3)])
            _, _, reversals, _ = distributed_full_reversal(
                graph, n - 1, heights, fault_plan=plan
            )
            # The O(n²) bound is exact on the anti-oriented path and
            # duplication cannot inflate it.
            assert sum(reversals.values()) == k * (k + 1) // 2
