"""The ``repro.perf/v1`` ledger and the configurable regression gate.

Covers the record/append/load round-trip, the median-of-last-k
detector (including the acceptance case: a synthetic 2x slowdown must
be flagged), the three gate modes, the env-var overrides, and the
``emit_table`` wiring that appends a record per benchmark emission.
"""

import json
import os
import sys

import pytest

from repro.observability.regression import (
    DEFAULT_THRESHOLD,
    GATE_ENV,
    PERF_SCHEMA,
    THRESHOLD_ENV,
    PerfRegressionError,
    append_history,
    apply_gate,
    build_perf_record,
    check_history,
    detect_regressions,
    gate_mode,
    gate_threshold,
    load_history,
    validate_perf_record,
)

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)


def _record(median_s, experiment="exp"):
    return build_perf_record(
        experiment, timings={"kernel_n100_median_s": median_s, "emit_s": 0.001}
    )


class TestLedger:
    def test_build_and_validate_round_trip(self):
        record = build_perf_record(
            "perf-csr",
            timings={"bfs_median_s": 0.01},
            cache={"Graph": {"hit": 3, "miss": 1}},
            dispatch={"graphs.bfs_distances": {"fast": 4}},
            memory={"repro.dtn.run": {"peak_kib": 120.0, "alloc_kib": 4.0}},
        )
        assert record["schema"] == PERF_SCHEMA
        assert validate_perf_record(record) == []
        # survives a JSON round trip unchanged
        assert validate_perf_record(json.loads(json.dumps(record))) == []

    def test_validate_rejects_malformed_records(self):
        assert validate_perf_record({"schema": "nope"})  # wrong schema
        assert any(
            "experiment" in p
            for p in validate_perf_record({"schema": PERF_SCHEMA, "experiment": ""})
        )
        assert any(
            "timings" in p
            for p in validate_perf_record(
                {
                    "schema": PERF_SCHEMA,
                    "experiment": "x",
                    "timings": {"bad": "not-a-number"},
                }
            )
        )

    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        for median in (0.1, 0.2, 0.3):
            append_history(path, _record(median))
        records = load_history(path)
        assert [r["timings"]["kernel_n100_median_s"] for r in records] == [
            0.1,
            0.2,
            0.3,
        ]

    def test_append_is_append_only(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, _record(0.1))
        first = open(path).read()
        append_history(path, _record(0.2))
        assert open(path).read().startswith(first)  # prior bytes untouched

    def test_load_filters_by_experiment_and_skips_garbage(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        append_history(path, _record(0.1, experiment="a"))
        append_history(path, _record(0.2, experiment="b"))
        with open(path, "a") as handle:
            handle.write("{truncated by a kill -9")  # no newline, no close
        assert len(load_history(path)) == 2
        only_a = load_history(path, experiment="a")
        assert len(only_a) == 1 and only_a[0]["experiment"] == "a"

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []


class TestDetector:
    def test_flags_synthetic_2x_slowdown(self):
        """Acceptance case: 2x over a stable baseline must be caught at
        the default 1.5x threshold."""
        history = [_record(0.100) for _ in range(3)]
        current = _record(0.200)
        regressions = detect_regressions(history, current, threshold=DEFAULT_THRESHOLD)
        assert len(regressions) == 1
        regression = regressions[0]
        assert regression.key == "kernel_n100_median_s"
        assert regression.baseline_s == pytest.approx(0.100)
        assert regression.current_s == pytest.approx(0.200)
        assert regression.slowdown == pytest.approx(2.0)
        assert "2.00x" in regression.describe()

    def test_within_threshold_passes(self):
        history = [_record(0.100) for _ in range(3)]
        assert detect_regressions(history, _record(0.140), threshold=1.5) == []

    def test_baseline_is_median_of_last_k(self):
        # one old outlier beyond the k-window must not poison the baseline
        history = [_record(10.0)] + [_record(0.1) for _ in range(5)]
        flagged = detect_regressions(history, _record(0.25), k=5, threshold=1.5)
        assert len(flagged) == 1  # 0.25 vs median(0.1) = 2.5x
        # ...and a noise spike inside the window is absorbed by the median
        noisy = [_record(0.1), _record(0.1), _record(5.0)]
        assert detect_regressions(noisy, _record(0.12), k=5, threshold=1.5) == []

    def test_only_median_keys_are_compared(self):
        history = [
            build_perf_record("exp", timings={"kernel_max_s": 0.1, "emit_s": 0.1})
        ]
        current = build_perf_record(
            "exp", timings={"kernel_max_s": 99.0, "emit_s": 99.0}
        )
        assert detect_regressions(history, current, threshold=1.5) == []

    def test_new_keys_need_history(self):
        history = [_record(0.1)]
        current = build_perf_record("exp", timings={"fresh_case_median_s": 50.0})
        assert detect_regressions(history, current, threshold=1.5) == []

    def test_worst_slowdown_sorts_first(self):
        history = [
            build_perf_record(
                "exp", timings={"a_median_s": 0.1, "b_median_s": 0.1}
            )
        ]
        current = build_perf_record(
            "exp", timings={"a_median_s": 0.3, "b_median_s": 0.9}
        )
        flagged = detect_regressions(history, current, threshold=1.5)
        assert [r.key for r in flagged] == ["b_median_s", "a_median_s"]

    def test_memory_peaks_are_gated_like_timings(self):
        """The scale tier's ceiling rides the same ledger: a span whose
        tracked peak doubles against stable history must be flagged,
        reported in KiB (not seconds)."""

        def mem_record(peak):
            return build_perf_record(
                "exp",
                timings={"kernel_median_s": 0.1},
                memory={"repro.bench.scale.sums": {"peak_kib": peak}},
            )

        history = [mem_record(1000.0) for _ in range(3)]
        flagged = detect_regressions(history, mem_record(2000.0), threshold=1.5)
        assert len(flagged) == 1
        regression = flagged[0]
        assert regression.key == "memory:repro.bench.scale.sums.peak_kib"
        assert regression.unit == "KiB"
        assert regression.slowdown == pytest.approx(2.0)
        assert "KiB" in regression.describe()
        # stable memory passes
        assert detect_regressions(history, mem_record(1100.0), threshold=1.5) == []

    def test_memory_gate_needs_history_for_the_span(self):
        history = [_record(0.1) for _ in range(3)]  # no memory section
        current = build_perf_record(
            "exp",
            timings={"kernel_n100_median_s": 0.1},
            memory={"brand.new.span": {"peak_kib": 9999.0}},
        )
        assert detect_regressions(history, current, threshold=1.5) == []


class TestShmField:
    def test_record_carries_shm_counters(self):
        record = build_perf_record(
            "perf-scale",
            timings={"sweep_shm_s": 0.01},
            shm={
                "events": {"graph": {"publish": 1, "attach": 4}},
                "bytes": {"graph": 123456},
                "shards": {"all_pairs_distance_sums": 8},
                "spill_bytes": 1 << 20,
            },
        )
        assert validate_perf_record(record) == []
        assert record["shm"]["shards"]["all_pairs_distance_sums"] == 8
        # JSON round trip keeps it intact
        assert json.loads(json.dumps(record))["shm"] == record["shm"]

    def test_shm_defaults_to_empty(self):
        record = build_perf_record("exp", timings={"a_median_s": 0.1})
        assert record["shm"] == {}
        assert validate_perf_record(record) == []


class TestGate:
    def test_mode_defaults_to_warn(self, monkeypatch):
        monkeypatch.delenv(GATE_ENV, raising=False)
        monkeypatch.delenv("CI", raising=False)
        assert gate_mode() == "warn"

    def test_mode_hardens_to_fail_under_ci(self, monkeypatch):
        monkeypatch.delenv(GATE_ENV, raising=False)
        monkeypatch.setenv("CI", "true")
        assert gate_mode() == "fail"

    def test_mode_env_overrides_ci(self, monkeypatch):
        monkeypatch.setenv("CI", "true")
        monkeypatch.setenv(GATE_ENV, "off")
        assert gate_mode() == "off"

    def test_mode_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(GATE_ENV, "maybe")
        with pytest.raises(ValueError):
            gate_mode()

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv(THRESHOLD_ENV, "2.5")
        assert gate_threshold() == 2.5
        monkeypatch.setenv(THRESHOLD_ENV, "0.9")
        with pytest.raises(ValueError):
            gate_threshold()
        monkeypatch.delenv(THRESHOLD_ENV)
        assert gate_threshold(default=4.0) == 4.0

    def _one_regression(self):
        history = [_record(0.1) for _ in range(3)]
        return detect_regressions(history, _record(0.5), threshold=1.5)

    def test_gate_off_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            returned = apply_gate(self._one_regression(), mode="off")
        assert len(returned) == 1

    def test_gate_warn_emits_userwarning(self):
        with pytest.warns(UserWarning, match="perf regression"):
            apply_gate(self._one_regression(), mode="warn")

    def test_gate_fail_raises(self):
        with pytest.raises(PerfRegressionError, match="kernel_n100_median_s"):
            apply_gate(self._one_regression(), mode="fail")

    def test_gate_noop_without_regressions(self):
        assert apply_gate([], mode="fail") == []

    def test_check_history_end_to_end(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        for _ in range(3):
            append_history(path, _record(0.1))
        with pytest.raises(PerfRegressionError):
            check_history(path, _record(0.5), threshold=1.5, mode="fail")
        assert check_history(path, _record(0.11), threshold=1.5, mode="fail") == []


class TestEmitTableWiring:
    def test_emit_table_appends_a_ledger_record(self, tmp_path, monkeypatch):
        monkeypatch.setenv(GATE_ENV, "off")
        from _util import HISTORY_NAME, emit_table

        result = emit_table(
            "ledger-smoke",
            "ledger wiring",
            ["metric", "value"],
            [("x", 1)],
            timings={"case_median_s": 0.01},
            out_dir=str(tmp_path),
            top_dir=None,
        )
        assert result.history_path == str(tmp_path / HISTORY_NAME)
        records = load_history(result.history_path, experiment="ledger-smoke")
        assert len(records) == 1
        assert validate_perf_record(records[0]) == []
        assert records[0]["timings"]["case_median_s"] == 0.01
        assert "emit_s" in records[0]["timings"]

    def test_emit_table_gates_against_its_own_history(self, tmp_path, monkeypatch):
        monkeypatch.setenv(GATE_ENV, "fail")
        from _util import emit_table

        for _ in range(2):
            emit_table(
                "ledger-gate",
                "baseline",
                ["metric", "value"],
                [("x", 1)],
                timings={"case_median_s": 0.010},
                out_dir=str(tmp_path),
                top_dir=None,
            )
        with pytest.raises(PerfRegressionError):
            emit_table(
                "ledger-gate",
                "regressed",
                ["metric", "value"],
                [("x", 1)],
                timings={"case_median_s": 0.100},
                out_dir=str(tmp_path),
                top_dir=None,
            )
        # the regressed record still landed in the ledger (append-only,
        # append happens before the gate so history is never lost)
        from repro.observability.regression import load_history as load

        path = str(tmp_path / "history.jsonl")
        assert len(load(path, experiment="ledger-gate")) == 3
