"""Opt-in profiling spans (repro.observability.profiling).

Disabled-by-default contract (the shared no-op span), wall-clock span
records, tracemalloc peak/alloc accounting across nested spans, the
``@profiled`` decorator, and the summary views the perf ledger feeds
on.
"""

import pytest

from repro.observability import profiling
from repro.observability.metrics import MetricsRegistry, set_registry
from repro.observability.profiling import Profiler, _NOOP_SPAN


@pytest.fixture
def fresh_registry():
    """Swap in an empty global metrics registry for the test."""
    registry = MetricsRegistry("test-profiling")
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


@pytest.fixture
def profiler():
    """A private, enabled profiler (wall time only)."""
    p = Profiler()
    p.enable()
    yield p
    p.disable()


class TestDisabledPath:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        p = Profiler()
        assert p.span("anything") is _NOOP_SPAN
        assert p.span("other", n=5) is _NOOP_SPAN  # no per-call allocation

    def test_disabled_span_records_nothing(self, fresh_registry):
        p = Profiler()
        with p.span("quiet"):
            pass
        assert p.records == []
        assert fresh_registry.snapshot() == {}

    def test_noop_span_accepts_attributes(self):
        with _NOOP_SPAN as span:
            span.set_attribute("k", 1)  # must not raise

    def test_global_profiler_disabled_by_default(self):
        assert not profiling.enabled()
        assert profiling.profile_span("x") is _NOOP_SPAN


class TestWallClockSpans:
    def test_span_records_name_duration_and_attrs(self, profiler, fresh_registry):
        with profiler.span("work", n=42) as span:
            span.set_attribute("extra", "yes")
        (record,) = profiler.records
        assert record["type"] == "profile"
        assert record["name"] == "work"
        assert record["depth"] == 0
        assert record["duration_s"] >= 0.0
        assert record["attrs"] == {"n": 42, "extra": "yes"}

    def test_span_observes_duration_histogram(self, profiler, fresh_registry):
        with profiler.span("timed"):
            pass
        snapshot = fresh_registry.snapshot()
        assert snapshot["timed.duration_s"]["count"] == 1

    def test_nested_spans_record_depth(self, profiler, fresh_registry):
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        by_name = {r["name"]: r for r in profiler.records}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # children close before parents
        assert profiler.records[0]["name"] == "inner"

    def test_exception_is_recorded_and_propagates(self, profiler, fresh_registry):
        with pytest.raises(ValueError):
            with profiler.span("boom"):
                raise ValueError("no")
        (record,) = profiler.records
        assert record["attrs"]["error"] == "ValueError"

    def test_clear_drops_records(self, profiler, fresh_registry):
        with profiler.span("once"):
            pass
        profiler.clear()
        assert profiler.records == []


class TestMemoryCapture:
    def test_memory_span_reports_peak_above_entry(self, fresh_registry):
        p = Profiler()
        p.enable(memory=True)
        try:
            with p.span("alloc"):
                blob = bytearray(512 * 1024)
                del blob
            (record,) = p.records
            # 512 KiB was live inside the span; tracemalloc should see
            # most of it above the entry watermark.
            assert record["peak_kib"] > 256
            # it was freed again, so net allocation is far below peak
            assert record["alloc_kib"] < record["peak_kib"]
            snapshot = fresh_registry.snapshot()
            assert snapshot["alloc.peak_kib"]["count"] == 1
        finally:
            p.disable()

    def test_parent_peak_covers_child_allocations(self, fresh_registry):
        """A child's transient peak must fold back into the parent even
        though the child reset the tracemalloc peak on entry."""
        p = Profiler()
        p.enable(memory=True)
        try:
            with p.span("parent"):
                with p.span("child"):
                    blob = bytearray(768 * 1024)
                    del blob
            by_name = {r["name"]: r for r in p.records}
            assert by_name["child"]["peak_kib"] > 384
            assert by_name["parent"]["peak_kib"] >= by_name["child"]["peak_kib"]
        finally:
            p.disable()

    def test_disable_stops_tracemalloc_it_started(self):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        if was_tracing:
            pytest.skip("tracemalloc already on outside the profiler")
        p = Profiler()
        p.enable(memory=True)
        assert tracemalloc.is_tracing()
        p.disable()
        assert not tracemalloc.is_tracing()


class TestProfiledDecorator:
    def test_profiled_is_transparent_when_disabled(self, fresh_registry):
        calls = []

        @profiling.profiled("repro.test.fn")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6
        assert calls == [3]
        assert profiling.get_profiler().spans("repro.test.fn") == []

    def test_profiled_records_when_enabled(self, fresh_registry):
        @profiling.profiled("repro.test.fn2")
        def fn():
            return "ok"

        profiling.enable()
        try:
            assert fn() == "ok"
            assert len(profiling.get_profiler().spans("repro.test.fn2")) == 1
        finally:
            profiling.disable()
            profiling.get_profiler().clear()

    def test_profiled_preserves_function_metadata(self):
        @profiling.profiled("repro.test.meta")
        def documented():
            """docstring survives"""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "docstring survives"


class TestSummaries:
    def test_summary_aggregates_per_name_slowest_first(self, profiler, fresh_registry):
        import time

        with profiler.span("slow"):
            time.sleep(0.002)
        for _ in range(2):
            with profiler.span("quick"):
                pass
        summary = profiler.summary()
        assert summary[0]["name"] == "slow"
        by_name = {e["name"]: e for e in summary}
        assert by_name["quick"]["count"] == 2
        assert by_name["slow"]["total_s"] >= by_name["slow"]["max_s"] > 0
        assert profiler.summary(top=1) == summary[:1]

    def test_memory_summary_empty_without_memory_capture(
        self, profiler, fresh_registry
    ):
        with profiler.span("no-mem"):
            pass
        assert profiler.memory_summary() == {}

    def test_memory_summary_keeps_maxima(self, fresh_registry):
        p = Profiler()
        p.enable(memory=True)
        try:
            for size in (128, 512):
                with p.span("sized"):
                    blob = bytearray(size * 1024)
                    del blob
            summary = p.memory_summary()
            assert summary["sized"]["peak_kib"] > 256  # the larger pass wins
        finally:
            p.disable()
