"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.graphs.interval import (
    interval_graph,
    is_chordal,
    is_interval_graph,
    multiple_interval_graph,
)
from repro.graphs.interval_hypergraph import interval_hypergraph
from repro.graphs.hypercube import (
    GeneralizedHypercube,
    hamming_distance,
    paths_are_node_disjoint,
)
from repro.graphs.traversal import (
    bfs_distances,
    connected_components,
    dijkstra,
    is_connected,
    minimum_spanning_tree,
)
from repro.graphs.unit_disk import unit_disk_graph
from repro.labeling.cds import is_connected_dominating_set, marking_process
from repro.labeling.mis import compute_mis, is_maximal_independent_set
from repro.labeling.safety import (
    compute_safety_levels,
    optimally_reachable_set,
)
from repro.temporal.evolving import EvolvingGraph
from repro.temporal.journeys import (
    earliest_arrival,
    earliest_completion_journey,
    fastest_journey,
    is_valid_journey,
    minimum_hop_journey,
)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

@st.composite
def edge_lists(draw, max_nodes=10, max_edges=20):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    count = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
    return n, edges


@st.composite
def contact_lists(draw, max_nodes=7, horizon=8, max_contacts=24):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    count = draw(st.integers(min_value=0, max_value=max_contacts))
    contacts = []
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        t = draw(st.integers(min_value=0, max_value=horizon - 1))
        if u != v:
            contacts.append((u, v, t))
    return n, horizon, contacts


@st.composite
def interval_families(draw, max_nodes=8):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    families = {}
    for i in range(n):
        count = draw(st.integers(min_value=0, max_value=3))
        intervals = []
        for _ in range(count):
            left = draw(st.floats(min_value=0, max_value=50, allow_nan=False))
            width = draw(st.floats(min_value=0.0, max_value=10, allow_nan=False))
            intervals.append((left, left + width))
        families[i] = intervals
    return families


def build_graph(n, edges):
    g = Graph()
    for node in range(n):
        g.add_node(node)
    for u, v in edges:
        g.add_edge(u, v)
    return g


def build_eg(n, horizon, contacts):
    eg = EvolvingGraph(horizon=horizon, nodes=range(n))
    for u, v, t in contacts:
        eg.add_contact(u, v, t)
    return eg


# ----------------------------------------------------------------------
# graph invariants
# ----------------------------------------------------------------------

@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_components_partition_nodes(data):
    n, edges = data
    g = build_graph(n, edges)
    comps = connected_components(g)
    union = set()
    total = 0
    for comp in comps:
        assert not (union & comp)
        union |= comp
        total += len(comp)
    assert union == set(g.nodes())
    assert total == g.num_nodes


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_bfs_distances_triangle_inequality_on_edges(data):
    n, edges = data
    g = build_graph(n, edges)
    dist = bfs_distances(g, 0)
    for u, v in g.edges():
        if u in dist and v in dist:
            assert abs(dist[u] - dist[v]) <= 1


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_dijkstra_unit_weights_equals_bfs(data):
    n, edges = data
    g = build_graph(n, edges)
    bfs = bfs_distances(g, 0)
    weighted, _ = dijkstra(g, 0)
    assert set(bfs) == set(weighted)
    for node, d in bfs.items():
        assert weighted[node] == float(d)


@given(edge_lists(max_nodes=9, max_edges=25))
@settings(max_examples=60, deadline=None)
def test_mst_has_component_count_edges(data):
    n, edges = data
    g = build_graph(n, edges)
    tree = minimum_spanning_tree(g)
    comps = connected_components(g)
    assert tree.num_edges == g.num_nodes - len(comps)


# ----------------------------------------------------------------------
# interval invariants
# ----------------------------------------------------------------------

@given(interval_families())
@settings(max_examples=60, deadline=None)
def test_multiple_interval_graphs_of_single_intervals_are_interval(families):
    single = {k: v[:1] for k, v in families.items()}
    g = multiple_interval_graph(single)
    assert is_chordal(g)
    assert is_interval_graph(g)


@given(interval_families())
@settings(max_examples=50, deadline=None)
def test_hypergraph_members_pairwise_overlap(families):
    hyper = interval_hypergraph(families)
    for edge in hyper.hyperedges:
        window_lo, window_hi = edge.window
        for member in edge.members:
            assert any(
                lo <= window_hi and window_lo <= hi
                for lo, hi in families[member]
            )


@given(interval_families())
@settings(max_examples=50, deadline=None)
def test_hypergraph_two_section_subgraph_of_interval_graph(families):
    hyper = interval_hypergraph(families)
    pairwise = multiple_interval_graph(families)
    section = hyper.two_section()
    for u, v in section.edges():
        assert pairwise.has_edge(u, v)


# ----------------------------------------------------------------------
# temporal invariants
# ----------------------------------------------------------------------

@given(contact_lists())
@settings(max_examples=60, deadline=None)
def test_earliest_arrival_monotone_in_start(data):
    n, horizon, contacts = data
    eg = build_eg(n, horizon, contacts)
    early = earliest_arrival(eg, 0, start=0)
    late = earliest_arrival(eg, 0, start=2)
    # Starting later can only reach fewer nodes, never earlier.
    assert set(late) <= set(early)
    for node, t in late.items():
        if node != 0:
            assert t >= early[node]


@given(contact_lists())
@settings(max_examples=60, deadline=None)
def test_optimal_journeys_are_valid(data):
    n, horizon, contacts = data
    eg = build_eg(n, horizon, contacts)
    for target in range(1, n):
        journey = earliest_completion_journey(eg, 0, target)
        if journey is not None:
            assert is_valid_journey(eg, journey)
        hops = minimum_hop_journey(eg, 0, target)
        if hops is not None:
            assert is_valid_journey(eg, hops)
        fast = fastest_journey(eg, 0, target)
        if fast is not None:
            assert is_valid_journey(eg, fast)


@given(contact_lists())
@settings(max_examples=60, deadline=None)
def test_journey_optimality_relations(data):
    n, horizon, contacts = data
    eg = build_eg(n, horizon, contacts)
    for target in range(1, n):
        early = earliest_completion_journey(eg, 0, target)
        hops = minimum_hop_journey(eg, 0, target)
        fast = fastest_journey(eg, 0, target)
        if early is None:
            assert hops is None
            continue
        # Reachability agrees across the three variants.
        assert hops is not None
        if target != 0 and early.hops:
            assert fast is not None
            assert hops.hop_count <= early.hop_count
            assert fast.span <= early.span


# ----------------------------------------------------------------------
# hypercube and labeling invariants
# ----------------------------------------------------------------------

@given(
    st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=4),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_generalized_hypercube_disjoint_paths(radices, data):
    gh = GeneralizedHypercube(radices)
    a = tuple(data.draw(st.integers(0, r - 1)) for r in radices)
    b = tuple(data.draw(st.integers(0, r - 1)) for r in radices)
    paths = gh.disjoint_paths(a, b)
    d = hamming_distance(a, b)
    if d == 0:
        assert paths == [[a]]
        return
    assert len(paths) == d
    assert paths_are_node_disjoint(paths)
    for path in paths:
        assert len(path) - 1 == d
        for x, y in zip(path, path[1:]):
            assert hamming_distance(x, y) == 1


@given(edge_lists(max_nodes=9, max_edges=20))
@settings(max_examples=60, deadline=None)
def test_mis_always_maximal_independent(data):
    n, edges = data
    g = build_graph(n, edges)
    mis, _ = compute_mis(g)
    assert is_maximal_independent_set(g, mis)


@given(edge_lists(max_nodes=9, max_edges=24))
@settings(max_examples=60, deadline=None)
def test_marking_is_cds_on_connected_graphs(data):
    n, edges = data
    g = build_graph(n, edges)
    if not is_connected(g) or g.num_nodes < 3:
        return
    black = marking_process(g)
    if black:
        assert is_connected_dominating_set(g, black)


@given(st.sets(st.integers(min_value=0, max_value=15), max_size=5))
@settings(max_examples=40, deadline=None)
def test_safety_levels_sound_for_any_fault_set(fault_ints):
    from repro.graphs.hypercube import address_from_int, binary_addresses

    faults = frozenset(address_from_int(i, 4) for i in fault_ints)
    s = compute_safety_levels(4, faults)
    for u in binary_addresses(4):
        if u in faults:
            assert s.levels[u] == 0
            continue
        reach = optimally_reachable_set(4, faults, u)
        for v in binary_addresses(4):
            if v not in faults and hamming_distance(u, v) <= s.levels[u]:
                assert v in reach


# ----------------------------------------------------------------------
# CSR patch buffer (repro.graphs.delta)
# ----------------------------------------------------------------------

@st.composite
def patch_scripts(draw, max_nodes=8, max_edges=14, max_ops=16):
    n, edges = draw(edge_lists(max_nodes=max_nodes, max_edges=max_edges))
    count = draw(st.integers(min_value=0, max_value=max_ops))
    ops = []
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            ops.append((u, v))
    return n, edges, ops


def apply_script(n, edges, ops):
    """Drive a PatchedGraph and a mirror dict graph through ``ops``.

    Present edges are deleted, absent ones inserted — so every script
    is valid and both delete-of-base and delete-of-pending-insert
    paths get exercised as scripts revisit pairs.
    """
    from repro.graphs.csr import FrozenGraph
    from repro.graphs.delta import PatchedGraph

    mirror = build_graph(n, edges)
    pg = PatchedGraph(FrozenGraph(mirror), threshold=1_000_000)
    for u, v in ops:
        if mirror.has_edge(u, v):
            pg.delete_edge(u, v)
            mirror.remove_edge(u, v)
        else:
            assert pg.insert_edge(u, v) is True
            mirror.add_edge(u, v)
    return pg, mirror


@given(patch_scripts())
@settings(max_examples=60, deadline=None)
def test_patch_merge_equals_refreeze(data):
    from repro.graphs.csr import FrozenGraph

    pg, mirror = apply_script(*data)
    reference = FrozenGraph(mirror)
    merged = pg.merge()
    assert merged.node_list == reference.node_list
    assert np.array_equal(merged.indptr, reference.indptr)
    assert np.array_equal(merged.indices, reference.indices)


@given(patch_scripts())
@settings(max_examples=60, deadline=None)
def test_patch_double_merge_idempotent(data):
    pg, _ = apply_script(*data)
    first = pg.merge()
    second = pg.merge()
    assert first.node_list == second.node_list
    assert np.array_equal(first.indptr, second.indptr)
    assert np.array_equal(first.indices, second.indices)


@given(patch_scripts(max_ops=8))
@settings(max_examples=60, deadline=None)
def test_delete_of_pending_insert_cancels(data):
    n, edges, ops = data
    pg, mirror = apply_script(n, edges, ops)
    absent = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not mirror.has_edge(u, v)
    ]
    if not absent:
        return
    pending_before = pg.pending
    u, v = absent[0]
    assert pg.insert_edge(u, v) is True
    pg.delete_edge(u, v)
    assert pg.pending == pending_before
    assert not pg.has_edge(u, v)


@given(patch_scripts(max_ops=6))
@settings(max_examples=60, deadline=None)
def test_patch_validation_parity_with_graph(data):
    import pytest

    n, edges, ops = data
    pg, mirror = apply_script(n, edges, ops)
    # Duplicate inserts: no-ops on both substrates, version untouched.
    for u, v in list(mirror.edges())[:3]:
        version = pg.version
        assert pg.insert_edge(u, v) is False
        assert pg.version == version
    # Self-loops: same exception type and message as Graph.add_edge.
    with pytest.raises(ValueError) as from_patch:
        pg.insert_edge(0, 0)
    with pytest.raises(ValueError) as from_graph:
        mirror.add_edge(0, 0)
    assert str(from_patch.value) == str(from_graph.value)


# ----------------------------------------------------------------------
# Batched write path (PatchedGraph.apply_batch)
# ----------------------------------------------------------------------

def batch_from_ops(mirror, ops):
    """Split ``ops`` into one valid ``(inserts, deletes)`` batch.

    The first touch of a pair decides its fate — absent pairs become
    inserts, present pairs deletes — and repeat touches are dropped, so
    the batch equals running the inserts then the deletes per-edge.
    """
    seen = set()
    inserts, deletes = [], []
    for u, v in ops:
        key = (u, v) if u <= v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        if mirror.has_edge(u, v):
            deletes.append((u, v))
        else:
            inserts.append((u, v))
    return inserts, deletes


def assert_same_patch_state(per_edge, batched, context):
    assert batched.pending == per_edge.pending, context
    a, b = per_edge.snapshot(), batched.snapshot()
    assert a.node_list == b.node_list, context
    assert np.array_equal(a.indptr, b.indptr), context
    assert np.array_equal(a.indices, b.indices), context
    # Rebase discipline is part of the contract: identical thresholds
    # and identical pending counts must rebase identically.
    assert batched.pending == per_edge.pending, context


@given(patch_scripts(), st.sampled_from([0, 2, 1_000_000]))
@settings(max_examples=60, deadline=None)
def test_apply_batch_equals_per_edge(data, threshold):
    from repro.graphs.csr import FrozenGraph
    from repro.graphs.delta import PatchedGraph

    n, edges, ops = data
    mirror = build_graph(n, edges)
    per_edge = PatchedGraph(
        FrozenGraph(build_graph(n, edges)), threshold=threshold
    )
    batched = PatchedGraph(
        FrozenGraph(build_graph(n, edges)), threshold=threshold
    )
    inserts, deletes = batch_from_ops(mirror, ops)
    for u, v in inserts:
        assert per_edge.insert_edge(u, v) is True
        mirror.add_edge(u, v)
    for u, v in deletes:
        per_edge.delete_edge(u, v)
        mirror.remove_edge(u, v)
    result = batched.apply_batch(inserts, deletes)
    assert result.insert_outcomes == ["insert"] * len(inserts)
    assert result.delete_outcomes == ["delete"] * len(deletes)
    assert result.changed == len(inserts) + len(deletes)
    assert_same_patch_state(per_edge, batched, (threshold, "round 1"))
    # A second batch on top of live patch state (pending inserts and
    # deletes from round 1 unless a rebase cleared them) exercises the
    # restore and cancel arms; ``changed`` must equal the number of
    # per-edge version bumps the same sequence produces.
    inserts2, deletes2 = batch_from_ops(mirror, list(reversed(ops)))
    version_before = per_edge.version
    for u, v in inserts2:
        assert per_edge.insert_edge(u, v) is True
    for u, v in deletes2:
        per_edge.delete_edge(u, v)
    result2 = batched.apply_batch(inserts2, deletes2)
    assert result2.changed == per_edge.version - version_before
    assert_same_patch_state(per_edge, batched, (threshold, "round 2"))


@given(patch_scripts(max_ops=6))
@settings(max_examples=60, deadline=None)
def test_apply_batch_self_cancellation(data):
    n, edges, ops = data
    pg, mirror = apply_script(n, edges, ops)
    pending = pg.pending
    version = pg.version
    fresh = "fresh-node"
    result = pg.apply_batch([(fresh, 0)], [(fresh, 0)])
    # The delete cancels the batch's own insert: net-nil edge state,
    # but the new endpoint stays interned (deletes keep nodes).
    assert result.insert_outcomes == ["insert"]
    assert result.delete_outcomes == ["cancel"]
    assert result.changed == 2
    assert len(result.touched) == 1
    assert pg.pending == pending
    assert pg.version > version  # state changed transiently
    assert not pg.has_edge(fresh, 0)
    assert fresh in pg.node_list
    assert pg.snapshot().n == mirror.num_nodes + 1


@given(patch_scripts(max_ops=6))
@settings(max_examples=40, deadline=None)
def test_apply_batch_strict_atomic_on_bad_delete(data):
    import pytest

    from repro.errors import EdgeNotFoundError

    n, edges, ops = data
    pg, mirror = apply_script(n, edges, ops)
    absent = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not mirror.has_edge(u, v)
    ]
    if not absent:
        return
    good = absent[0]
    pending = pg.pending
    with pytest.raises(EdgeNotFoundError):
        pg.apply_batch([good], [(good[0], good[0] + 1000)])
    # Strict batches are atomic for edge state: the valid insert ahead
    # of the bad delete must not have landed.
    assert pg.pending == pending
    assert not pg.has_edge(*good)
