"""Structural remapping: geo routing, hyperbolic, feature space (Sec. III-C)."""

import numpy as np
import pytest

from repro.errors import AlgorithmError, NodeNotFoundError
from repro.graphs.generators import path_graph, random_tree, star_graph
from repro.graphs.traversal import connected_components
from repro.graphs.unit_disk import unit_disk_graph
from repro.mobility.community import random_profiles
from repro.remapping.feature_space import (
    FeatureSpace,
    contact_frequency_by_feature_distance,
    simulate_delivery,
)
from repro.remapping.geo_routing import (
    crescent_hole_positions,
    delivery_rate,
    greedy_route,
    grid_with_holes,
)
from repro.remapping.hyperbolic import (
    embed_tree,
    greedy_route_hyperbolic,
    hyperbolic_distance,
)
from repro.temporal.evolving import EvolvingGraph


def holey_deployment(rng, n=350):
    positions = crescent_hole_positions(n, 20, 20, rng)
    graph = unit_disk_graph(positions, 1.8)
    giant = graph.subgraph(connected_components(graph)[0])
    return giant, {node: positions[node] for node in giant.nodes()}


class TestGreedyGeoRouting:
    def test_delivers_on_clear_field(self, rng):
        positions = {i: (float(x), float(y)) for i, (x, y) in enumerate(
            zip(rng.uniform(0, 10, 150), rng.uniform(0, 10, 150)))}
        graph = unit_disk_graph(positions, 2.5)
        giant = graph.subgraph(connected_components(graph)[0])
        nodes = sorted(giant.nodes())
        route = greedy_route(giant, nodes[0], nodes[-1])
        # A dense clear field rarely has local minima between two nodes.
        assert route.delivered or route.stuck_at is not None

    def test_stuck_at_hole(self, rng):
        """Fig. 5(a): greedy gets stuck at a non-convex hole."""
        giant, positions = holey_deployment(rng)
        nodes = sorted(giant.nodes())
        pairs = []
        while len(pairs) < 150:
            s = nodes[int(rng.integers(len(nodes)))]
            t = nodes[int(rng.integers(len(nodes)))]
            if s != t:
                pairs.append((s, t))
        rate = delivery_rate(giant, pairs, positions)
        assert rate < 1.0  # some packets must get stuck

    def test_route_result_shape(self, rng):
        giant, positions = holey_deployment(rng, n=200)
        nodes = sorted(giant.nodes())
        route = greedy_route(giant, nodes[0], nodes[0])
        assert route.delivered and route.hops == 0

    def test_missing_node_raises(self, rng):
        giant, _ = holey_deployment(rng, n=150)
        with pytest.raises(NodeNotFoundError):
            greedy_route(giant, "ghost", sorted(giant.nodes())[0])

    def test_strict_progress_no_loops(self, rng):
        giant, positions = holey_deployment(rng, n=200)
        nodes = sorted(giant.nodes())
        for _ in range(30):
            s = nodes[int(rng.integers(len(nodes)))]
            t = nodes[int(rng.integers(len(nodes)))]
            route = greedy_route(giant, s, t)
            assert len(set(route.path)) == len(route.path)

    def test_grid_with_holes_removes_nodes(self, rng):
        full = grid_with_holes(10, 1.6, holes=[], rng=rng)
        holed = grid_with_holes(10, 1.6, holes=[((5, 5), 2.0)], rng=rng)
        assert holed.num_nodes < full.num_nodes


class TestHyperbolicRemap:
    def test_distance_properties(self):
        a, b = (0.0, 1.0), (2.0, 1.0)
        assert hyperbolic_distance(a, a) == 0.0
        assert hyperbolic_distance(a, b) == hyperbolic_distance(b, a)
        assert hyperbolic_distance(a, b) > 0

    def test_distance_requires_upper_half_plane(self):
        with pytest.raises(ValueError):
            hyperbolic_distance((0.0, -1.0), (0.0, 1.0))

    def test_embedding_distance_symmetric(self, rng):
        tree = random_tree(40, rng)
        embedding = embed_tree(tree)
        assert embedding.distance(3, 17) == pytest.approx(
            embedding.distance(17, 3), rel=1e-9
        )

    def test_embedding_tree_edge_length_tau(self, rng):
        tree = path_graph(5)
        embedding = embed_tree(tree, certify=False, tau=3.0)
        assert embedding.distance(0, 1) == pytest.approx(3.0, rel=1e-6)

    def test_certified_trees(self, rng):
        for n in (10, 60, 150):
            tree = random_tree(n, rng)
            embedding = embed_tree(tree)
            # Certification succeeded: greedy delivers on the tree itself.
            nodes = sorted(tree.nodes())
            for _ in range(15):
                s = nodes[int(rng.integers(n))]
                t = nodes[int(rng.integers(n))]
                assert greedy_route_hyperbolic(tree, embedding, s, t).delivered

    def test_star_embedding(self):
        star = star_graph(8)
        embedding = embed_tree(star)
        assert greedy_route_hyperbolic(star, embedding, 3, 7).delivered

    def test_guaranteed_delivery_where_euclid_fails(self, rng):
        """Fig. 5(b): hyperbolic remap delivers 100% on the holey field."""
        giant, positions = holey_deployment(rng)
        embedding = embed_tree(giant)
        nodes = sorted(giant.nodes())
        euclid_failures = 0
        for _ in range(120):
            s = nodes[int(rng.integers(len(nodes)))]
            t = nodes[int(rng.integers(len(nodes)))]
            if s == t:
                continue
            if not greedy_route(giant, s, t, positions).delivered:
                euclid_failures += 1
            assert greedy_route_hyperbolic(giant, embedding, s, t).delivered
        assert euclid_failures > 0

    def test_distance_table_matches_pairwise(self, rng):
        tree = random_tree(25, rng)
        embedding = embed_tree(tree, certify=False)
        table = embedding.distance_table(7)
        for node in tree.nodes():
            assert table[node] == pytest.approx(embedding.distance(node, 7), rel=1e-6)

    def test_disconnected_graph_rejected(self):
        from repro.graphs.graph import Graph

        g = Graph()
        g.add_edge(0, 1)
        g.add_node(2)
        with pytest.raises(AlgorithmError):
            embed_tree(g)

    def test_empty_graph_rejected(self):
        from repro.graphs.graph import Graph

        with pytest.raises(ValueError):
            embed_tree(Graph())


def synthetic_eg_and_space(rng, n=24, radices=(2, 2, 3)):
    profiles = random_profiles(n, radices, rng)
    space = FeatureSpace(profiles, radices)
    eg = EvolvingGraph(horizon=60, nodes=list(profiles))
    # Dense contacts between feature-close pairs, sparse otherwise.
    nodes = list(profiles)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            distance = space.feature_distance(u, v)
            period = 3 + 6 * distance
            phase = int(rng.integers(period))
            eg.add_periodic_contact(u, v, phase=phase, period=period)
    return eg, space, profiles


class TestFeatureSpace:
    def test_profile_lookup_and_communities(self, rng):
        profiles = {0: (0, 1), 1: (0, 1), 2: (1, 0)}
        space = FeatureSpace(profiles, (2, 2))
        assert space.profile_of(1) == (0, 1)
        assert space.community((0, 1)) == {0, 1}
        assert space.occupied_profiles() == {(0, 1), (1, 0)}

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            FeatureSpace({0: (5, 0)}, (2, 2))

    def test_strong_link_definition(self):
        space = FeatureSpace({0: (0, 0), 1: (0, 1), 2: (1, 1)}, (2, 2))
        assert space.is_strong_link(0, 1)
        assert not space.is_strong_link(0, 2)

    def test_shortest_profile_path(self):
        space = FeatureSpace({0: (0, 0, 0), 1: (1, 1, 2)}, (2, 2, 3))
        path = space.shortest_profile_path(0, 1)
        assert len(path) - 1 == 3

    def test_disjoint_profile_paths(self):
        space = FeatureSpace({0: (0, 0, 0), 1: (1, 1, 2)}, (2, 2, 3))
        paths = space.disjoint_profile_paths(0, 1)
        assert len(paths) == 3

    def test_direct_vs_epidemic_vs_fspace(self, rng):
        eg, space, profiles = synthetic_eg_and_space(rng)
        nodes = list(profiles)
        delivered = {"direct": 0, "epidemic": 0, "fspace-greedy": 0}
        delays = {"direct": [], "epidemic": [], "fspace-greedy": []}
        for t_index in range(1, 13):
            target = nodes[t_index]
            for policy in delivered:
                result = simulate_delivery(eg, space, nodes[0], target, policy)
                if result.delivered:
                    delivered[policy] += 1
                    delays[policy].append(result.delivery_time)
        # Epidemic is the delay lower bound; fspace must beat direct-ish.
        assert delivered["epidemic"] >= delivered["fspace-greedy"]
        assert delivered["fspace-greedy"] >= 1

    def test_epidemic_uses_many_copies_fspace_one(self, rng):
        eg, space, profiles = synthetic_eg_and_space(rng)
        nodes = list(profiles)
        epidemic = simulate_delivery(eg, space, nodes[0], nodes[5], "epidemic")
        greedy = simulate_delivery(eg, space, nodes[0], nodes[5], "fspace-greedy")
        assert greedy.copies == 1
        if epidemic.delivered:
            assert epidemic.copies >= greedy.copies

    def test_multipath_delivers(self, rng):
        eg, space, profiles = synthetic_eg_and_space(rng)
        nodes = list(profiles)
        ok = 0
        for target in nodes[1:8]:
            result = simulate_delivery(eg, space, nodes[0], target, "fspace-multipath")
            ok += result.delivered
        assert ok >= 1

    def test_same_node_trivial(self, rng):
        eg, space, profiles = synthetic_eg_and_space(rng, n=6)
        result = simulate_delivery(eg, space, 0, 0, "direct")
        assert result.delivered and result.delivery_time == 0

    def test_unknown_policy(self, rng):
        eg, space, profiles = synthetic_eg_and_space(rng, n=6)
        with pytest.raises(ValueError):
            simulate_delivery(eg, space, 0, 1, "warp")

    def test_contact_frequency_decays(self, rng):
        eg, space, profiles = synthetic_eg_and_space(rng)
        freq = contact_frequency_by_feature_distance(eg, space)
        distances = sorted(freq)
        assert all(
            freq[a] >= freq[b] for a, b in zip(distances, distances[1:])
        )
