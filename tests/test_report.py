"""The consolidated perf dashboard (repro.observability.report).

Section builders over synthetic feeds/ledgers, the assembled
``repro.report/v1`` document, markdown rendering, the CLI entry point,
and a live pass over this repo's committed BENCH feeds.
"""

import json
import os

from repro.observability.regression import append_history, build_perf_record
from repro.observability.report import (
    REPORT_SCHEMA,
    build_dashboard,
    cache_summary,
    main,
    memory_summary,
    render_markdown,
    scale_summary,
    scan_bench_feeds,
    serving_summary,
    slowest_spans,
    write_path_summary,
    speedup_summary,
    trajectory_summary,
)

TOP = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def fake_feed(experiment, header, rows, metrics=None, timings=None):
    return {
        "schema": "repro.bench/v1",
        "experiment": experiment,
        "title": experiment,
        "header": header,
        "rows": rows,
        "notes": "",
        "metrics": metrics or {},
        "timings": timings or {},
        "generated_at": "2026-01-01T00:00:00Z",
    }


def write_fixture_top_dir(tmp_path):
    """A miniature repo top dir: two perf feeds, one non-perf feed,
    one corrupt feed, and a three-run ledger with a 2x drift."""
    perf = fake_feed(
        "perf-demo",
        ["n", "kernel", "speedup"],
        [[100, "bfs", 12.0], [100, "cc", 30.0], [50, "bfs", 2.0]],
        metrics={
            "repro.cache.frozen{event=hit,owner=Graph}": 6,
            "repro.cache.frozen{event=miss,owner=Graph}": 2,
        },
        timings={"bfs_n100_median_s": 0.5, "cc_n100_median_s": 0.1},
    )
    plain = fake_feed("fig-demo", ["metric", "value"], [["nodes", 10]])
    (tmp_path / "BENCH_perf-demo.json").write_text(json.dumps(perf))
    (tmp_path / "BENCH_fig-demo.json").write_text(json.dumps(plain))
    (tmp_path / "BENCH_broken.json").write_text("{not json")

    ledger = tmp_path / "benchmarks" / "out" / "history.jsonl"
    for median in (0.10, 0.10, 0.20):
        append_history(
            str(ledger),
            build_perf_record(
                "perf-demo",
                timings={"bfs_n100_median_s": median},
                cache={"Graph": {"hit": 1, "miss": 1}},
                memory={"repro.dtn.run": {"peak_kib": 64.0 * median * 10,
                                          "alloc_kib": 1.0}},
            ),
        )
    return str(tmp_path)


class TestSections:
    def test_scan_skips_corrupt_feeds(self, tmp_path):
        top = write_fixture_top_dir(tmp_path)
        feeds = scan_bench_feeds(top)
        assert set(feeds) == {"perf-demo", "fig-demo"}

    def test_speedup_summary_uses_largest_size_only(self, tmp_path):
        feeds = scan_bench_feeds(write_fixture_top_dir(tmp_path))
        (entry,) = speedup_summary(feeds)  # fig-demo has no speedup column
        assert entry["experiment"] == "perf-demo"
        assert entry["largest_size"] == 100
        # the n=50 row (speedup 2.0) must not drag the floor down
        assert entry["kernels"] == {"bfs": 12.0, "cc": 30.0}
        assert entry["floor"] == 12.0 and entry["floor_kernel"] == "bfs"

    def test_cache_summary_merges_feeds_and_ledger(self, tmp_path):
        top = write_fixture_top_dir(tmp_path)
        feeds = scan_bench_feeds(top)
        ledger_path = os.path.join(top, "benchmarks", "out", "history.jsonl")
        from repro.observability.regression import load_history

        summary = cache_summary(feeds, load_history(ledger_path))
        # feed: 6 hits + 2 misses; ledger: 3 runs x (1 hit + 1 miss)
        assert summary["Graph"]["hit"] == 9
        assert summary["Graph"]["miss"] == 5
        assert summary["Graph"]["hit_rate"] == 9 / 14

    def test_slowest_spans_ranked_and_truncated(self, tmp_path):
        feeds = scan_bench_feeds(write_fixture_top_dir(tmp_path))
        spans = slowest_spans(feeds, top=1)
        assert spans == [
            {"experiment": "perf-demo", "case": "bfs_n100_median_s", "median_s": 0.5}
        ]

    def test_trajectory_reports_the_2x_drift(self, tmp_path):
        top = write_fixture_top_dir(tmp_path)
        from repro.observability.regression import load_history

        ledger = load_history(os.path.join(top, "benchmarks", "out", "history.jsonl"))
        (entry,) = trajectory_summary(ledger)
        assert entry["experiment"] == "perf-demo" and entry["runs"] == 3
        assert entry["worst_slowdown"] == 2.0
        assert entry["regressions"][0]["key"] == "bfs_n100_median_s"

    def test_memory_summary_keeps_maxima(self, tmp_path):
        top = write_fixture_top_dir(tmp_path)
        from repro.observability.regression import load_history

        ledger = load_history(os.path.join(top, "benchmarks", "out", "history.jsonl"))
        summary = memory_summary(ledger)
        assert summary["repro.dtn.run"]["peak_kib"] == 128.0  # largest run

    def test_scale_summary_merges_shm_shards_and_ceilings(self):
        feeds = {
            "perf-scale": fake_feed(
                "perf-scale",
                ["tier", "n", "m", "case", "wall s", "peak MiB",
                 "ceiling MiB", "shards", "spill bytes"],
                [
                    ["verify", 500, 2000, "bit-exact x5", "-", "-", "-", "-", "-"],
                    ["scale", 10**6, 4 * 10**6, "distance-sums",
                     12.5, 900.0, 1536.0, 4, 0],
                    ["scale", 10**6, 4 * 10**6, "distance-table",
                     30.0, 1200.0, 1536.0, 4, 10**9],
                ],
            )
        }
        ledger = [
            build_perf_record(
                "perf-scale",
                timings={"distance_sums_median_s": 12.5},
                memory={"repro.graphs.csr.shard": {"peak_kib": 512.0,
                                                   "alloc_kib": 8.0}},
                shm={
                    "events": {"graph": {"publish": 1, "attach": 2, "reuse": 3}},
                    "bytes": {"graph": 40_000_000},
                    "shards": {"all_pairs_distance_sums": 4},
                    "spill_bytes": 10**9,
                },
            ),
            build_perf_record(
                "perf-scale",
                timings={"x_median_s": 1.0},
                shm={"events": {"graph": {"attach": 1}},
                     "shards": {"all_pairs_distance_sums": 2}},
            ),
        ]
        summary = scale_summary(feeds, ledger)
        assert summary["shm_events"]["graph"] == {
            "publish": 1, "attach": 3, "reuse": 3,
        }
        assert summary["shm_bytes"]["graph"] == 40_000_000
        assert summary["shards"]["all_pairs_distance_sums"] == 6
        assert summary["spill_bytes"] == 10**9
        assert summary["shard_peaks"]["repro.graphs.csr.shard"]["peak_kib"] == 512.0
        # tightest ceiling margin first; verify rows never contribute
        assert [entry["case"] for entry in summary["ceilings"]] == [
            "distance-table", "distance-sums",
        ]
        assert summary["ceilings"][0]["margin_mib"] == 336.0

    def test_serving_summary_streams_and_counters(self):
        feed = fake_feed(
            "serving",
            [
                "n", "m", "blocks", "queries",
                "baseline median s", "serving median s",
                "baseline q/s", "serving q/s", "speedup",
            ],
            [
                [500, 1500, 24, 192, 0.12, 0.026, 1600.0, 7300.0, 4.6],
                [2000, 6000, 24, 192, 0.39, 0.065, 492.0, 2939.0, 5.98],
            ],
            metrics={
                "repro.serving.queries{kind=distance}": 864,
                "repro.serving.queries{kind=nsf_level}": 144,
                "repro.serving.patch{event=merge}": 138,
                "repro.serving.repairs{index=nsf,mode=replay}": 100,
                "repro.serving.batches": 200,
                "repro.serving.sweeps": 144,
                "repro.serving.retries": 3,
            },
        )
        summary = serving_summary({"serving": feed})
        assert [entry["n"] for entry in summary["streams"]] == [500, 2000]
        assert summary["streams"][1]["speedup"] == 5.98
        assert summary["queries"] == {"distance": 864, "nsf_level": 144}
        assert summary["patch"] == {"merge": 138}
        assert summary["repairs"] == {"nsf": {"replay": 100}}
        assert summary["batches"] == 200
        assert summary["sweeps"] == 144
        assert summary["retries"] == 3
        assert summary["coalesce_ratio"] == (864 + 144) / 144

    def test_write_path_summary_streams_and_histograms(self):
        feed = fake_feed(
            "serving-write",
            [
                "n", "m", "mutations", "queries",
                "per-edge median s", "batched median s",
                "per-edge muts/s", "batched muts/s", "speedup",
            ],
            [
                [500, 1500, 4096, 32, 0.29, 0.042, 14099.0, 97918.9, 6.95],
                [2000, 6000, 4096, 32, 0.95, 0.176, 4311.0, 23272.0, 5.4],
            ],
            metrics={
                "repro.serving.mutations{kind=insert}": 2100,
                "repro.serving.mutations{kind=delete}": 1996,
                "repro.serving.batch.writes": 1024,
                "repro.serving.batch.coalesced": 512,
                "repro.serving.batch.write_size": {
                    "count": 1024, "sum": 4096.0, "mean": 4.0,
                    "min": 1.0, "max": 64.0, "p50": 2.0, "p90": 8.0,
                },
                "repro.serving.batch.deadline_s": {
                    "count": 1100, "sum": 0.11, "mean": 0.0001,
                    "min": 0.0, "max": 0.0002, "p50": 0.0001, "p90": 0.00015,
                },
            },
        )
        # A second feed carrying only counters merges into the totals.
        other = fake_feed(
            "serving",
            ["n"],
            [[1]],
            metrics={
                "repro.serving.batch.writes": 76,
                "repro.serving.batch.coalesced": 24,
                "repro.serving.batch.write_size": {
                    "count": 76, "sum": 76.0, "mean": 1.0,
                    "min": 1.0, "max": 1.0, "p50": 1.0, "p90": 1.0,
                },
            },
        )
        summary = write_path_summary({"serving-write": feed, "serving": other})
        assert [entry["n"] for entry in summary["streams"]] == [500, 2000]
        assert summary["streams"][1]["speedup"] == 5.4
        assert summary["streams"][0]["batched_mps"] == 97918.9
        assert summary["mutations"] == {"insert": 2100, "delete": 1996}
        assert summary["writes"] == 1100
        assert summary["coalesced"] == 536
        assert summary["coalesced_per_barrier"] == 536 / 1100
        # histogram merge: exact count/sum/extrema, percentiles from the
        # larger snapshot
        sizes = summary["batch_size"]
        assert sizes["count"] == 1100
        assert sizes["sum"] == 4172.0
        assert sizes["max"] == 64.0 and sizes["min"] == 1.0
        assert sizes["p90"] == 8.0
        assert summary["deadline_s"]["count"] == 1100

    def test_write_path_summary_empty_inputs(self):
        summary = write_path_summary({})
        assert summary["streams"] == []
        assert summary["writes"] == 0
        assert summary["coalesced_per_barrier"] == 0.0
        assert summary["batch_size"] == {}

    def test_serving_summary_empty_inputs(self):
        summary = serving_summary({})
        assert summary["streams"] == []
        assert summary["batches"] == 0
        assert summary["coalesce_ratio"] == 0.0

    def test_scale_summary_empty_inputs(self):
        summary = scale_summary({}, [])
        assert summary == {
            "shm_events": {},
            "shm_bytes": {},
            "shards": {},
            "spill_bytes": 0,
            "shard_peaks": {},
            "ceilings": [],
        }


class TestDashboard:
    def test_build_dashboard_document(self, tmp_path):
        dashboard = build_dashboard(write_fixture_top_dir(tmp_path))
        assert dashboard["schema"] == REPORT_SCHEMA
        assert dashboard["feeds"] == ["fig-demo", "perf-demo"]
        assert dashboard["ledger_records"] == 3
        assert dashboard["speedups"][0]["floor"] == 12.0
        json.dumps(dashboard)  # JSON-serializable end to end

    def test_render_markdown_sections(self, tmp_path):
        dashboard = build_dashboard(write_fixture_top_dir(tmp_path))
        markdown = render_markdown(dashboard)
        assert markdown.startswith("# Perf observatory")
        for section in (
            "## Speedup floors",
            "## Trajectory",
            "## Frozen-cache hit rates",
            "slowest cases",
            "## Memory ceilings",
            "## Incremental serving",
        ):
            assert section in markdown
        assert "| perf-demo | 100 | 12.0x | bfs |" in markdown
        assert "2.00x" in markdown  # the drift is visible
        assert "64.3%" in markdown  # 9/14 hit rate

    def test_empty_top_dir_renders_placeholders(self, tmp_path):
        markdown = render_markdown(build_dashboard(str(tmp_path)))
        assert "(no perf-comparison feeds found)" in markdown
        assert "(ledger empty" in markdown

    def test_dashboard_over_this_repo(self):
        """The committed BENCH feeds must all be picked up, and every
        perf feed must contribute a speedup section."""
        dashboard = build_dashboard(TOP)
        committed = {
            name[len("BENCH_"):-len(".json")]
            for name in os.listdir(TOP)
            if name.startswith("BENCH_") and name.endswith(".json")
        }
        assert committed  # the repo ships feeds
        assert committed <= set(dashboard["feeds"])
        perf_sections = {e["experiment"] for e in dashboard["speedups"]}
        assert {
            "perf-csr", "perf-temporal", "perf-labeling", "perf-runtime",
        } <= perf_sections
        # The committed serving feed populates the serving panel: the
        # stream table and the coalescing counters it rode in with.
        serving = dashboard["serving"]
        assert serving["streams"], "BENCH_serving.json must carry stream rows"
        assert serving["coalesce_ratio"] > 1.0
        # ... and the committed serving-write feed populates the
        # write-path panel: stream rows, coalescing totals, and both
        # the batch-size and adaptive-deadline histograms.
        write_path = dashboard["write_path"]
        assert write_path["streams"], (
            "BENCH_serving-write.json must carry stream rows"
        )
        assert all(entry["speedup"] >= 3.0 for entry in write_path["streams"])
        assert write_path["writes"] > 0
        assert write_path["coalesced"] > 0
        assert write_path["batch_size"]["count"] > 0
        assert write_path["deadline_s"]["count"] > 0
        markdown = render_markdown(dashboard)  # renders without raising
        assert "## Write path (batched mutation coalescing)" in markdown


class TestCli:
    def test_cli_markdown_to_stdout(self, tmp_path, capsys):
        assert main(["--top-dir", write_fixture_top_dir(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Perf observatory")

    def test_cli_json_to_file(self, tmp_path):
        top = write_fixture_top_dir(tmp_path)
        out_path = str(tmp_path / "dashboard.json")
        assert main(["--top-dir", top, "--json", "--out", out_path]) == 0
        document = json.loads(open(out_path).read())
        assert document["schema"] == REPORT_SCHEMA
        assert document["ledger_records"] == 3

    def test_cli_explicit_history_and_top(self, tmp_path):
        top = write_fixture_top_dir(tmp_path)
        other_ledger = str(tmp_path / "elsewhere.jsonl")
        append_history(
            other_ledger,
            build_perf_record("alt", timings={"x_median_s": 1.0}),
        )
        out_path = str(tmp_path / "dash.json")
        assert (
            main(
                [
                    "--top-dir", top,
                    "--history", other_ledger,
                    "--json",
                    "--out", out_path,
                    "--top", "1",
                ]
            )
            == 0
        )
        document = json.loads(open(out_path).read())
        assert document["ledger_records"] == 1
        assert len(document["slowest"]) == 1

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys

        top = write_fixture_top_dir(tmp_path)
        src = os.path.join(TOP, "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.observability.report", "--top-dir", top],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0
        assert proc.stdout.startswith("# Perf observatory")
