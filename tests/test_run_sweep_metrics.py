"""Parallel-sweep metrics survival (benchmarks/_util.run_sweep).

The PR-4 parallel sweep lost every counter the workers incremented:
forked processes mutate a copy of the registry and the copies died
with the pool.  ``run_sweep`` now ships each worker's registry state
back with its result and merges it into the parent, so telemetry is
identical however the sweep is fanned out.
"""

import os
import sys

import pytest

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

from _util import run_sweep  # noqa: E402
from repro.observability.metrics import (  # noqa: E402
    MetricsRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture
def registry():
    fresh = MetricsRegistry("test-sweep")
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def sweep_point(item):
    """Module-level (picklable) sweep body: records into the global
    registry exactly like an instrumented kernel would."""
    get_registry().counter("repro.test.sweep_calls").inc()
    get_registry().counter("repro.test.sweep_items", {"item": item}).inc()
    get_registry().histogram("repro.test.sweep_cost").observe(float(item))
    return item * 10


def test_serial_sweep_keeps_metrics(registry):
    assert run_sweep([1, 2, 3], sweep_point) == [10, 20, 30]
    assert registry.snapshot()["repro.test.sweep_calls"] == 3


@pytest.mark.skipif(sys.platform == "win32", reason="fork context only")
def test_parallel_sweep_merges_worker_metrics(registry):
    """jobs=2 must produce the same results AND the same counters as a
    serial run — nothing lost in the worker processes."""
    results = run_sweep([1, 2, 3, 4], sweep_point, jobs=2)
    assert results == [10, 20, 30, 40]
    snapshot = registry.snapshot()
    assert snapshot["repro.test.sweep_calls"] == 4
    for item in (1, 2, 3, 4):
        assert snapshot[f"repro.test.sweep_items{{item={item}}}"] == 1
    histogram = snapshot["repro.test.sweep_cost"]
    assert histogram["count"] == 4
    assert histogram["sum"] == 10.0


@pytest.mark.skipif(sys.platform == "win32", reason="fork context only")
def test_parallel_sweep_does_not_double_count_prefork_series(registry):
    """Counters recorded in the parent before the fan-out must not be
    re-merged from the forked workers' inherited registries."""
    registry.counter("repro.test.prefork").inc(5)
    run_sweep([1, 2], sweep_point, jobs=2)
    assert registry.snapshot()["repro.test.prefork"] == 5
