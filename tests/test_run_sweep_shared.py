"""``run_sweep(shared=)``: one published snapshot, zero worker rebuilds.

The scale-out contract: when a sweep is handed a ``SharedSnapshot``,
every task — serial or forked — attaches the already-published CSR
arrays instead of unpickling (or rebuilding) the graph.  The merged
telemetry must show one ``repro.dispatch.calls{path="shm-attach"}``
per task and zero ``graphs.freeze{path="build"}`` events from the
workers.
"""

import os
import sys

import numpy as np
import pytest

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

from _util import run_sweep  # noqa: E402
from repro.graphs import shm  # noqa: E402
from repro.graphs.generators import degree_ordered_graph  # noqa: E402
from repro.observability.metrics import MetricsRegistry, set_registry  # noqa: E402
from repro.observability.telemetry import dispatch_counts, shm_counts  # noqa: E402


@pytest.fixture
def registry():
    fresh = MetricsRegistry("test-shared-sweep")
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture(autouse=True)
def _clean_attach_cache():
    shm.detach_all()
    yield
    shm.detach_all()


def shared_point(item, fg):
    """Picklable sweep body: touches the attached graph's arrays."""
    return int(fg.indptr[item + 1] - fg.indptr[item]) + item * 1000


def test_serial_shared_sweep_attaches_per_task(registry):
    fg = degree_ordered_graph(400, rng=np.random.default_rng(21))
    expected = [shared_point(i, fg) for i in (0, 1, 2)]
    with fg.to_shared() as snapshot:
        results = run_sweep([0, 1, 2], shared_point, shared=snapshot.handle)
        assert results == expected
        sweeps = dispatch_counts(registry)["benchmarks.run_sweep"]
        assert sweeps == {"shm-attach": 3}
        # first task maps the segment, the rest reuse the cached mapping
        events = shm_counts(registry)["events"]["graph"]
        assert events["attach"] == 1
        assert events["reuse"] == 2


@pytest.mark.skipif(sys.platform == "win32", reason="fork context only")
def test_parallel_shared_sweep_zero_worker_rebuilds(registry):
    fg = degree_ordered_graph(400, rng=np.random.default_rng(22))
    items = list(range(6))
    expected = [shared_point(i, fg) for i in items]
    before = dispatch_counts(registry).get("graphs.freeze", {})
    with fg.to_shared() as snapshot:
        results = run_sweep(items, shared_point, jobs=2, shared=snapshot.handle)
        assert results == expected
        counts = dispatch_counts(registry)
        # every task attached instead of rebuilding
        assert counts["benchmarks.run_sweep"] == {"shm-attach": len(items)}
        freeze = counts.get("graphs.freeze", {})
        # no worker rebuilt the graph: the only freeze-event delta is
        # the shm-attach reconstruction path
        assert freeze.get("build", 0) == before.get("build", 0)
        assert freeze.get("arrays", 0) == before.get("arrays", 0)
        assert freeze.get("shm-attach", 0) >= 1
        # merged worker state shows the attach events that actually
        # mapped the segment (one per worker, the rest reuse)
        events = shm_counts(registry)["events"]["graph"]
        assert events["attach"] + events["reuse"] == len(items)
        assert events["attach"] >= 1


def test_shared_sweep_results_match_pickled_graph_sweep(registry):
    from functools import partial

    fg = degree_ordered_graph(300, rng=np.random.default_rng(23))
    items = [0, 5, 10]
    baseline = run_sweep(items, partial(_point_with_graph, fg))
    with fg.to_shared() as snapshot:
        shared = run_sweep(items, shared_point, shared=snapshot.handle)
    assert shared == baseline


def _point_with_graph(fg, item):
    return shared_point(item, fg)
