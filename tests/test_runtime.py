"""The synchronous message-passing engine and view oracles (Sec. IV)."""

import pytest

from repro.errors import ConvergenceError, NodeNotFoundError
from repro.graphs.generators import grid_2d, path_graph
from repro.graphs.graph import Graph
from repro.runtime.engine import Network, NodeAlgorithm
from repro.runtime.views import (
    DelayedViewOracle,
    MultiViewOracle,
    inconsistency_rate,
    k_hop_view,
    view_inconsistency,
)


class Flood(NodeAlgorithm):
    """Reference flooding algorithm used across engine tests."""

    def __init__(self, source):
        self.source = source

    def init(self, ctx):
        ctx.state["informed"] = ctx.node == self.source
        if ctx.state["informed"]:
            ctx.broadcast("token")

    def step(self, ctx):
        if ctx.inbox and not ctx.state["informed"]:
            ctx.state["informed"] = True
            ctx.broadcast("token")
        ctx.halt()

    def on_topology_change(self, ctx):
        # An informed node re-offers the token to (possibly new) neighbors.
        if ctx.state.get("informed"):
            ctx.broadcast("token")


class Spinner(NodeAlgorithm):
    """Never halts: used to exercise the convergence guard."""

    def step(self, ctx):
        ctx.broadcast("spin")


class TestEngine:
    def test_flood_informs_everyone(self):
        net = Network(grid_2d(4, 4), lambda n: Flood((0, 0)))
        stats = net.run()
        assert all(net.states("informed").values())
        # BFS depth of a 4x4 grid from a corner is 6; +1 halting round slack.
        assert stats.rounds <= 8

    def test_message_accounting(self):
        net = Network(path_graph(3), lambda n: Flood(0))
        stats = net.run()
        assert stats.messages_sent >= 2
        assert len(stats.messages_per_round) >= stats.rounds

    def test_send_to_non_neighbor_rejected(self):
        class Bad(NodeAlgorithm):
            def init(self, ctx):
                ctx.send("not-a-neighbor", "x")

        net = Network(path_graph(2), lambda n: Bad())
        with pytest.raises(ValueError):
            net.initialize()

    def test_convergence_guard(self):
        net = Network(path_graph(3), lambda n: Spinner())
        with pytest.raises(ConvergenceError):
            net.run(max_rounds=10)

    def test_halted_node_wakes_on_message(self):
        net = Network(path_graph(4), lambda n: Flood(0))
        net.run()
        assert net.states("informed")[3] is True

    def test_states_snapshot(self):
        net = Network(path_graph(3), lambda n: Flood(0))
        net.run()
        snapshot = net.states("informed", default=False)
        assert set(snapshot) == {0, 1, 2}

    def test_state_of_missing_node(self):
        net = Network(path_graph(2), lambda n: Flood(0))
        with pytest.raises(NodeNotFoundError):
            net.state_of("ghost")

    def test_add_edge_midway_wakes_nodes(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(2)  # isolated: flooding cannot reach it
        net = Network(g, lambda n: Flood(0))
        net.run()
        assert net.states("informed")[2] is False
        net.add_edge(1, 2)
        net.run()
        assert net.states("informed")[2] is True

    def test_add_node_installs_algorithm(self):
        net = Network(path_graph(2), lambda n: Flood(0))
        net.run()
        net.add_node(99)
        net.add_edge(1, 99)
        net.run()
        assert net.states("informed")[99] is True

    def test_remove_node_cleans_state(self):
        net = Network(path_graph(3), lambda n: Flood(0))
        net.run()
        net.remove_node(2)
        assert 2 not in net.states("informed")


class TestViews:
    def test_k_hop_view(self):
        g = path_graph(5)
        assert k_hop_view(g, 0, 2) == {1, 2}

    def test_delayed_oracle_serves_stale_view(self):
        g1 = path_graph(3)          # 0-1-2
        g2 = path_graph(3)
        g2.remove_edge(1, 2)        # link breaks
        oracle = DelayedViewOracle(k=1, delay=1)
        oracle.observe(g1)
        oracle.observe(g2)
        # Node 1 still believes 2 is a neighbor (stale by one snapshot).
        assert oracle.view(1) == {0, 2}
        missing, stale = view_inconsistency(g2, oracle.view(1), 1, 1)
        assert stale == {2}
        assert missing == set()

    def test_zero_delay_consistent(self):
        g = path_graph(4)
        oracle = DelayedViewOracle(k=2, delay=0)
        oracle.observe(g)
        missing, stale = view_inconsistency(g, oracle.view(0), 0, 2)
        assert not missing and not stale

    def test_oracle_requires_snapshot(self):
        oracle = DelayedViewOracle(k=1, delay=0)
        with pytest.raises(ValueError):
            oracle.view(0)

    def test_inconsistency_rate_zero_when_static(self):
        snapshots = [path_graph(5) for _ in range(5)]
        assert inconsistency_rate(snapshots, k=1, delay=2) == 0.0

    def test_inconsistency_rate_positive_when_changing(self):
        snapshots = []
        for i in range(6):
            g = path_graph(5)
            if i % 2 == 0:
                g.remove_edge(2, 3)
            snapshots.append(g)
        assert inconsistency_rate(snapshots, k=1, delay=1) > 0.0

    def test_multi_view_conservative_vs_optimistic(self):
        g1 = path_graph(3)
        g2 = path_graph(3)
        g2.remove_edge(1, 2)
        oracle = MultiViewOracle(k=1, window=2)
        oracle.observe(g1)
        oracle.observe(g2)
        assert oracle.conservative_view(1) == {0}
        assert oracle.optimistic_view(1) == {0, 2}

    def test_multi_view_missing_node(self):
        oracle = MultiViewOracle(k=1, window=2)
        with pytest.raises(NodeNotFoundError):
            oracle.conservative_view("ghost")


class TestEngineParity:
    """The sync and async engines are interchangeable observably."""

    def test_runstats_metric_keys_identical_across_engines(self):
        import numpy as np

        from repro.runtime.async_engine import AsyncNetwork

        sync = Network(path_graph(4), lambda n: Flood(0))
        sync.run()
        async_net = AsyncNetwork(
            path_graph(4), lambda n: Flood(0), rng=np.random.default_rng(0)
        )
        async_net.run()
        # Same RunStats accounting surface: dashboards and differential
        # tests can swap engines without key remapping.
        assert set(sync.metrics.snapshot()) == set(async_net.metrics.snapshot())
        assert sync.states("informed") == async_net.states("informed")

    def test_runstats_keys_identical_under_fault_plans(self):
        import numpy as np

        from repro.faults import FaultPlan, MessageFaults, RetryPolicy
        from repro.runtime.async_engine import AsyncNetwork

        plan = FaultPlan(6, [MessageFaults(drop=0.1)], retry=RetryPolicy())
        sync = Network(path_graph(4), lambda n: Flood(0), fault_plan=plan)
        sync.run()
        async_net = AsyncNetwork(
            path_graph(4),
            lambda n: Flood(0),
            rng=np.random.default_rng(0),
            fault_plan=plan,
        )
        async_net.run()
        sync_keys = {k for k in sync.metrics.snapshot() if not k.startswith("repro.faults.")}
        async_keys = {k for k in async_net.metrics.snapshot() if not k.startswith("repro.faults.")}
        assert sync_keys == async_keys


class ReprCountingPayload:
    """Payload that records every ``repr`` call against it."""

    calls = 0

    def __repr__(self):
        type(self).calls += 1
        return "ReprCountingPayload()"


class PayloadFlood(Flood):
    """Flood variant whose token is a repr-instrumented object."""

    def init(self, ctx):
        ctx.state["informed"] = ctx.node == self.source
        if ctx.state["informed"]:
            ctx.broadcast(ReprCountingPayload())

    def step(self, ctx):
        if ctx.inbox and not ctx.state["informed"]:
            ctx.state["informed"] = True
            ctx.broadcast(ReprCountingPayload())
        ctx.halt()


class TestMessageSizeAccounting:
    """Size measurement is strictly opt-in: the counting hot path must
    never pay a per-payload ``repr`` (regression pin for the
    message-size accounting fix)."""

    def test_default_run_never_reprs_payloads(self):
        ReprCountingPayload.calls = 0
        net = Network(path_graph(6), lambda n: PayloadFlood(0))
        net.run()
        assert all(net.states("informed").values())
        assert ReprCountingPayload.calls == 0

    def test_default_faulty_run_never_reprs_payloads(self):
        from repro.faults import FaultPlan, MessageFaults, RetryPolicy

        ReprCountingPayload.calls = 0
        plan = FaultPlan(
            3, [MessageFaults(drop=0.2, delay=0.2, duplicate=0.1)],
            retry=RetryPolicy(),
        )
        net = Network(path_graph(6), lambda n: PayloadFlood(0), fault_plan=plan)
        net.run()
        assert all(net.states("informed").values())
        assert ReprCountingPayload.calls == 0

    def test_opt_in_measurement_reprs_unsized_payloads(self):
        ReprCountingPayload.calls = 0
        net = Network(
            path_graph(4),
            lambda n: PayloadFlood(0),
            measure_message_sizes=True,
        )
        net.run()
        assert ReprCountingPayload.calls > 0
        assert net.metrics.snapshot()["repro.runtime.message_bytes"] > 0

    def test_sized_payloads_report_bytes_not_arity(self):
        from repro.runtime.engine import _payload_size

        assert _payload_size(b"abcd") == 4
        assert _payload_size("hey") == 3
        # A tuple is not wire-sized by its arity — repr length instead.
        assert _payload_size(("height", (3, 1))) == len(repr(("height", (3, 1))))
