"""Hypercube safety levels and vectors (Sec. IV-C, Fig. 9, [32])."""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.graphs.hypercube import (
    binary_addresses,
    format_address,
    hamming_distance,
    parse_address,
)
from repro.labeling.safety import (
    compute_safety_levels,
    compute_safety_vectors,
    optimally_reachable_set,
    paper_fig9_faults,
    safety_guided_broadcast,
    safety_guided_route,
    vector_guided_route,
)


def random_fault_sets(n, max_faults, count, rng):
    nodes = list(binary_addresses(n))
    for _ in range(count):
        k = int(rng.integers(1, max_faults + 1))
        picks = rng.choice(len(nodes), size=k, replace=False)
        yield frozenset(nodes[i] for i in picks)


class TestSafetyLevels:
    def test_no_faults_all_safe(self):
        s = compute_safety_levels(4, [])
        assert all(level == 4 for level in s.levels.values())
        assert s.rounds == 0

    def test_faulty_nodes_level_zero(self):
        faults = [(0, 0, 0), (1, 1, 1)]
        s = compute_safety_levels(3, faults)
        for fault in faults:
            assert s.levels[fault] == 0

    def test_rounds_at_most_n_minus_one(self, rng):
        for faults in random_fault_sets(4, 6, 10, rng):
            s = compute_safety_levels(4, faults)
            assert s.rounds <= 3

    def test_level_i_decided_at_round_i(self, rng):
        """The paper: if the safety level of a node is i, the level of
        this node is decided exactly in round i."""
        for faults in random_fault_sets(4, 5, 12, rng):
            s = compute_safety_levels(4, faults)
            for node, level in s.levels.items():
                if node in s.faulty:
                    continue
                if level < 4:
                    assert s.decided_at_round[node] == level

    def test_level_semantics_vs_ground_truth(self, rng):
        """level(u) = i ⇒ every node within i hops is optimally reachable."""
        for faults in random_fault_sets(4, 5, 8, rng):
            s = compute_safety_levels(4, faults)
            for u in binary_addresses(4):
                if u in s.faulty:
                    continue
                reach = optimally_reachable_set(4, s.faulty, u)
                for v in binary_addresses(4):
                    if v in s.faulty:
                        continue
                    if hamming_distance(u, v) <= s.levels[u]:
                        assert v in reach

    def test_safe_node_reaches_everyone(self, rng):
        for faults in random_fault_sets(5, 4, 5, rng):
            s = compute_safety_levels(5, faults)
            for u in binary_addresses(5):
                if u in s.faulty or not s.is_safe(u):
                    continue
                reach = optimally_reachable_set(5, s.faulty, u)
                healthy = {v for v in binary_addresses(5) if v not in s.faulty}
                assert healthy <= reach
                break  # one safe node per fault set is enough

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            compute_safety_levels(0, [])
        with pytest.raises(ValueError):
            compute_safety_levels(3, [(0, 1)])


class TestFig9:
    def test_narrated_facts(self):
        """1101 routes to 0001 via 0101 (level 2); 1001 is faulty."""
        n, faults = paper_fig9_faults()
        s = compute_safety_levels(n, faults)
        assert s.levels[parse_address("0101")] == 2
        assert parse_address("1001") in s.faulty
        route = safety_guided_route(
            s, parse_address("1101"), parse_address("0001")
        )
        assert route.delivered and route.optimal
        assert route.path[1] == parse_address("0101")

    def test_three_faults(self):
        n, faults = paper_fig9_faults()
        assert n == 4 and len(faults) == 3


class TestGuidedRouting:
    def test_guarantee_when_level_covers_distance(self, rng):
        """If level(source) >= Hamming distance, optimal delivery."""
        for faults in random_fault_sets(4, 5, 10, rng):
            s = compute_safety_levels(4, faults)
            for source in binary_addresses(4):
                if source in s.faulty:
                    continue
                for target in binary_addresses(4):
                    if target in s.faulty or target == source:
                        continue
                    distance = hamming_distance(source, target)
                    if s.levels[source] >= distance:
                        route = safety_guided_route(s, source, target)
                        assert route.delivered, (faults, source, target)
                        assert route.optimal

    def test_route_to_self(self):
        s = compute_safety_levels(3, [])
        route = safety_guided_route(s, (0, 0, 0), (0, 0, 0))
        assert route.delivered and route.hops == 0

    def test_route_fails_gracefully_when_walled_off(self):
        # Surround 000 by faults on all neighbors.
        faults = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
        s = compute_safety_levels(3, faults)
        route = safety_guided_route(s, (0, 0, 0), (1, 1, 1))
        assert not route.delivered


class TestBroadcast:
    def test_reaches_all_reachable_healthy_nodes(self, rng):
        for faults in random_fault_sets(4, 4, 8, rng):
            s = compute_safety_levels(4, faults)
            sources = [a for a in binary_addresses(4) if a not in s.faulty]
            result = safety_guided_broadcast(s, sources[0])
            # Everyone connected in the healthy subcube must be covered.
            from repro.graphs.hypercube import binary_hypercube
            from repro.graphs.traversal import bfs_distances

            cube = binary_hypercube(4)
            for fault in s.faulty:
                cube.remove_node(fault)
            expected = set(bfs_distances(cube, sources[0]))
            assert result.reached == expected

    def test_safe_source_broadcast_time_n(self):
        s = compute_safety_levels(4, [])
        result = safety_guided_broadcast(s, (0, 0, 0, 0))
        assert result.steps == 4
        assert len(result.reached) == 16

    def test_faulty_source_rejected(self):
        faults = [(0, 0, 0)]
        s = compute_safety_levels(3, faults)
        with pytest.raises(AlgorithmError):
            safety_guided_broadcast(s, (0, 0, 0))


class TestSafetyVectors:
    def test_faulty_vectors_zero(self):
        vectors = compute_safety_vectors(3, [(0, 1, 0)])
        assert vectors[(0, 1, 0)] == (0, 0, 0)

    def test_no_faults_all_ones(self):
        vectors = compute_safety_vectors(3, [])
        for address in binary_addresses(3):
            assert vectors[address] == (1, 1, 1)

    def test_vector_bit_guarantee(self, rng):
        """bit_k(u) = 1 ⇒ every healthy node at distance k optimally
        reachable (checked against exhaustive ground truth)."""
        for faults in random_fault_sets(4, 5, 8, rng):
            vectors = compute_safety_vectors(4, faults)
            for u in binary_addresses(4):
                if u in faults:
                    continue
                reach = optimally_reachable_set(4, frozenset(faults), u)
                for v in binary_addresses(4):
                    if v in faults or v == u:
                        continue
                    d = hamming_distance(u, v)
                    if vectors[u][d - 1] == 1:
                        assert v in reach

    def test_vector_routing_succeeds_when_bit_set(self, rng):
        for faults in random_fault_sets(4, 4, 6, rng):
            vectors = compute_safety_vectors(4, faults)
            fault_set = frozenset(faults)
            for u in binary_addresses(4):
                if u in fault_set:
                    continue
                for v in binary_addresses(4):
                    if v in fault_set or v == u:
                        continue
                    d = hamming_distance(u, v)
                    if vectors[u][d - 1] == 1:
                        route = vector_guided_route(vectors, fault_set, u, v)
                        assert route.delivered and route.optimal

    def test_vectors_sometimes_more_permissive_than_levels(self, rng):
        """Levels and vectors are incomparable sufficient conditions,
        but the vector's per-distance bits are finer-grained: across
        random fault sets we must find nodes whose level forbids a
        distance the vector certifies (the [32] follow-up's motivation)."""
        found = 0
        for faults in random_fault_sets(4, 5, 25, rng):
            s = compute_safety_levels(4, faults)
            vectors = compute_safety_vectors(4, faults)
            for u in binary_addresses(4):
                if u in s.faulty:
                    continue
                for k in range(s.levels[u] + 1, 5):
                    if vectors[u][k - 1] == 1:
                        found += 1
        assert found > 0
