"""Source-sharded streaming kernels and the shard planner.

The all-pairs family (distance sums, closeness, eccentricities,
landmark labels, the memmap distance table) must produce bit-identical
results whether it runs in one sweep or streamed shard-by-shard under
a tiny memory budget — the fold over shards is exact, not
approximate.  The planner itself has simple algebraic properties the
kernels rely on (coverage, monotonicity, the infeasible flag).
"""

import os

import numpy as np
import pytest

from repro.graphs.csr import FrozenGraph, ShardPlan, shard_sources
from repro.graphs.generators import (
    degree_ordered_graph,
    degree_ordered_reference,
    erdos_renyi,
)
from repro.graphs.metrics import closeness_centrality_reference
from repro.labeling.landmarks import distance_gateway_labels
from repro.observability.metrics import MetricsRegistry, set_registry
from repro.observability.telemetry import shm_counts
from repro.remapping.batch_routing import _optimal_for_pairs


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def _frozen(n=500, seed=11):
    return degree_ordered_graph(n, avg_degree=6.0, rng=np.random.default_rng(seed))


TINY_BUDGET = 1  # forces the minimum batch and the maximum shard count


class TestShardPlanner:
    def test_plan_covers_all_sources_exactly_once(self):
        for n_sources in (1, 63, 64, 65, 500, 1000):
            plan = shard_sources(n_sources, memory_budget=TINY_BUDGET, n=1000, edges=4000)
            sources = np.arange(n_sources, dtype=np.int64)
            chunks = list(plan.batches(sources))
            assert sum(chunk.shape[0] for chunk in chunks) == n_sources
            assert np.array_equal(np.concatenate(chunks), sources)
            assert len(chunks) == plan.shards

    def test_no_budget_means_max_batch(self):
        # without a budget the batch only honors the bitset cap
        plan = shard_sources(256, memory_budget=None, n=10_000, edges=40_000)
        assert plan.shards == 1
        assert plan.batch == 256
        assert plan.feasible

    def test_budget_shrinks_batch_monotonically(self):
        budgets = (1 << 34, 1 << 24, 1 << 16, 1)
        batches = [
            shard_sources(1024, memory_budget=b, n=100_000, edges=400_000).batch
            for b in budgets
        ]
        assert batches == sorted(batches, reverse=True)

    def test_infeasible_budget_is_flagged_not_fatal(self):
        plan = shard_sources(256, memory_budget=TINY_BUDGET, n=50_000, edges=200_000)
        assert not plan.feasible
        assert plan.batch >= 1  # still yields a usable (minimum) batch
        assert plan.est_shard_bytes > plan.budget_bytes

    def test_plan_is_frozen(self):
        plan = shard_sources(10, memory_budget=None, n=10, edges=10)
        assert isinstance(plan, ShardPlan)
        with pytest.raises(AttributeError):
            plan.batch = 1


class TestShardedKernelsBitExact:
    def test_distance_sums_match_unsharded(self):
        fg = _frozen()
        base = fg.all_pairs_distance_sums()
        streamed = fg.all_pairs_distance_sums(memory_budget=TINY_BUDGET)
        assert np.array_equal(base, streamed)

    def test_eccentricities_match_unsharded(self):
        fg = _frozen(seed=12)
        assert np.array_equal(
            fg.eccentricities(), fg.eccentricities(memory_budget=TINY_BUDGET)
        )

    def test_closeness_matches_unsharded_and_reference(self):
        g = erdos_renyi(80, 0.08, np.random.default_rng(5))
        fg = FrozenGraph(g)
        base = fg.closeness_centrality()
        streamed = fg.closeness_centrality(memory_budget=TINY_BUDGET)
        assert streamed == pytest.approx(base)
        reference = closeness_centrality_reference(g)
        for node, value in reference.items():
            assert streamed[node] == pytest.approx(value)

    def test_multi_source_labels_fold_matches_single_sweep(self):
        fg = _frozen(seed=13)
        landmarks = np.arange(0, 200, dtype=np.int64)
        base = fg.multi_source_labels(landmarks)
        streamed = fg.multi_source_labels(landmarks, memory_budget=TINY_BUDGET)
        assert np.array_equal(base, streamed)

    def test_landmark_labels_gateway_passes_budget(self):
        g = degree_ordered_reference(300, avg_degree=6.0, rng=np.random.default_rng(14))
        landmarks = list(range(0, 300, 7))
        base = distance_gateway_labels(g, landmarks)
        streamed = distance_gateway_labels(g, landmarks, memory_budget=TINY_BUDGET)
        assert base == streamed

    def test_memmap_distance_table_matches_bfs(self, tmp_path):
        fg = _frozen(350, seed=15)
        sources = np.arange(0, 350, 5, dtype=np.int64)
        scratch = str(tmp_path / "table.npy")
        table = fg.all_pairs_distance_table(
            sources, memory_budget=TINY_BUDGET, path=scratch
        )
        assert table.shape == (sources.shape[0], fg.n)
        expected = np.stack(
            [fg.bfs_levels(int(s)) for s in sources], axis=0
        ).astype(np.int16)
        assert np.array_equal(np.asarray(table), expected)
        del table
        assert os.path.exists(scratch)

    def test_optimal_for_pairs_budget_equivalence(self):
        fg = _frozen(260, seed=16)
        rng = np.random.default_rng(17)
        sources = rng.integers(0, 260, size=40)
        targets = rng.integers(0, 260, size=40)
        base = _optimal_for_pairs(fg, sources, targets)
        streamed = _optimal_for_pairs(fg, sources, targets, memory_budget=TINY_BUDGET)
        assert np.array_equal(base, streamed)
        expected = np.array(
            [fg.bfs_levels(int(s))[int(t)] for s, t in zip(sources, targets)],
            dtype=np.int64,
        )
        assert np.array_equal(streamed, expected)


class TestShardTelemetry:
    def test_shard_and_spill_counters(self, registry, tmp_path):
        fg = _frozen(300, seed=18)
        fg.all_pairs_distance_sums(memory_budget=TINY_BUDGET)
        counts = shm_counts(registry)
        shards = counts["shards"]
        assert sum(shards.values()) >= 2  # the tiny budget forced shards
        sources = np.arange(0, 300, 3, dtype=np.int64)
        fg.all_pairs_distance_table(
            sources, memory_budget=TINY_BUDGET, path=str(tmp_path / "t.npy")
        )
        counts = shm_counts(registry)
        # every written shard block is accounted as spilled bytes
        assert counts["spill_bytes"] == sources.shape[0] * fg.n * 2

    def test_unbudgeted_run_is_one_shard(self, registry):
        fg = _frozen(200, seed=19)
        fg.all_pairs_distance_sums()
        shards = shm_counts(registry)["shards"]
        assert shards.get("all_pairs_distance_sums", 0) == 1
