"""Shared-memory snapshot plane: publish / attach lifecycle.

Differential and property tests for ``repro.graphs.shm``: attached
views must be bit-identical to the owner's arrays and strictly
read-only; handles must survive a pickle round trip (that is how they
reach pool workers); an attached segment must survive a worker crash
(PR-3 faults style: the child dies hard, the parent's mapping is
unaffected); and the owner must unlink on close so the test session
leaks no ``/dev/shm`` entries.
"""

import os
import pickle
import signal

import numpy as np
import pytest

from repro.graphs import shm
from repro.graphs.csr import FrozenGraph
from repro.graphs.generators import degree_ordered_graph
from repro.observability.metrics import MetricsRegistry, set_registry
from repro.observability.telemetry import dispatch_counts, shm_counts
from repro.temporal.evolving import EvolvingGraph


@pytest.fixture
def registry():
    """Swap in an empty global metrics registry for the test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture(autouse=True)
def _clean_attach_cache():
    """Each test starts and ends with an empty per-process cache."""
    shm.detach_all()
    yield
    shm.detach_all()


def _frozen(n=600, seed=9):
    return degree_ordered_graph(n, avg_degree=6.0, rng=np.random.default_rng(seed))


def _contacts():
    eg = EvolvingGraph(horizon=6, nodes=[f"u{i}" for i in range(8)])
    rng = np.random.default_rng(4)
    for _ in range(40):
        u, v = rng.integers(0, 8, size=2)
        if u != v:
            eg.add_contact(f"u{u}", f"u{v}", int(rng.integers(0, 6)))
    return eg.frozen()


def _shm_entries():
    if not os.path.isdir("/dev/shm"):
        return []
    return [
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(shm.SEGMENT_PREFIX)
    ]


class TestGraphRoundTrip:
    def test_attached_views_bit_identical_and_read_only(self):
        fg = _frozen()
        with fg.to_shared() as snapshot:
            attached = FrozenGraph.from_shared(snapshot.handle)
            assert np.array_equal(attached.indptr, fg.indptr)
            assert np.array_equal(attached.indices, fg.indices)
            assert attached.n == fg.n
            assert attached.node_list == fg.node_list
            for view in (attached.indptr, attached.indices):
                assert not view.flags.writeable
                with pytest.raises(ValueError):
                    view[0] = 1
            # attached kernels agree with the owner's
            assert np.array_equal(
                attached.bfs_levels(0), fg.bfs_levels(0)
            )

    def test_handle_pickles_compactly(self):
        fg = _frozen(300)
        with fg.to_shared() as snapshot:
            payload = pickle.dumps(snapshot.handle)
            # the handle carries metadata, not the CSR payload
            assert len(payload) < fg.indices.nbytes
            restored = pickle.loads(payload)
            attached = restored.attach()
            assert np.array_equal(attached.indices, fg.indices)

    def test_string_node_labels_survive(self):
        eg_nodes = [f"site-{i}" for i in range(12)]
        from repro.graphs.graph import Graph

        g = Graph()
        for node in eg_nodes:
            g.add_node(node)
        for i in range(11):
            g.add_edge(eg_nodes[i], eg_nodes[i + 1])
        fg = FrozenGraph(g)
        with fg.to_shared() as snapshot:
            attached = shm.attach_graph(snapshot.handle)
            assert attached.node_list == fg.node_list
            assert attached.index == fg.index


class TestContactsRoundTrip:
    def test_contacts_twin_bit_identical(self):
        fc = _contacts()
        with fc.to_shared() as snapshot:
            attached = type(fc).from_shared(snapshot.handle)
            for name in shm._CONTACT_ARRAYS:
                ours = getattr(fc, name)
                theirs = getattr(attached, name)
                assert np.array_equal(ours, theirs), name
                assert not theirs.flags.writeable
            assert attached.node_list == fc.node_list
            assert attached.earliest_arrival("u0") == fc.earliest_arrival("u0")
            assert attached.latest_departure("u1", 6) == fc.latest_departure("u1", 6)


class TestLifecycle:
    def test_owner_close_unlinks_no_dev_shm_leak(self):
        before = set(_shm_entries())
        fg = _frozen(200)
        snapshot = fg.to_shared()
        if snapshot.handle.backend == "shm":
            assert set(_shm_entries()) - before  # visible while live
        snapshot.close()
        assert set(_shm_entries()) <= before
        # attaching after the unlink must fail, not hand back stale data
        with pytest.raises((FileNotFoundError, OSError, ValueError)):
            shm.attach_graph(snapshot.handle)

    def test_close_is_idempotent(self):
        snapshot = _frozen(100).to_shared()
        snapshot.close()
        snapshot.close()  # second close is a no-op

    def test_attach_cached_reuses_mapping(self, registry):
        fg = _frozen(150)
        with fg.to_shared() as snapshot:
            first = shm.attach_cached(snapshot.handle)
            second = shm.attach_cached(snapshot.handle)
            assert first is second
            events = shm_counts(registry)["events"]["graph"]
            assert events["attach"] == 1
            assert events["reuse"] == 1

    def test_detach_all_closes_cached_mappings(self, registry):
        fg = _frozen(150)
        with fg.to_shared() as snapshot:
            attached = shm.attach_cached(snapshot.handle)
            segment = attached._shm_segment
            shm.detach_all()
            assert segment.closed
            assert shm_counts(registry)["events"]["graph"]["detach"] == 1

    def test_mmap_backend_round_trip(self):
        fg = _frozen(250)
        snapshot = shm.share_graph(fg, backend="mmap")
        try:
            assert snapshot.handle.backend == "mmap"
            attached = shm.attach_graph(snapshot.handle)
            assert np.array_equal(attached.indices, fg.indices)
            assert not attached.indices.flags.writeable
            path = snapshot.handle.name
            assert os.path.exists(path)
        finally:
            snapshot.close()
        assert not os.path.exists(path)

    def test_attach_records_shm_attach_dispatch(self, registry):
        fg = _frozen(150)
        with fg.to_shared() as snapshot:
            shm.attach_graph(snapshot.handle)
            counts = dispatch_counts(registry)["graphs.freeze"]
            # exactly one freeze event for the attach, attributed to the
            # shm path — no extra "build" record for the same graph
            assert counts["shm-attach"] == 1
            assert "build" not in counts


class TestCrashSurvival:
    def test_parent_views_survive_worker_crash(self):
        """A child that attaches and dies hard must not hurt the owner.

        This is the PR-3 faults posture applied to the shm plane: the
        segment is owned by the publisher, so a crashing attacher can
        neither unlink it nor invalidate other processes' mappings.
        """
        fg = _frozen(400)
        with fg.to_shared() as snapshot:
            expected = fg.indices.copy()
            pid = os.fork()
            if pid == 0:  # child: attach, then die without cleanup
                try:
                    attached = shm.attach_graph(snapshot.handle)
                    assert np.array_equal(attached.indices, expected)
                finally:
                    os.kill(os.getpid(), signal.SIGKILL)
            _, status = os.waitpid(pid, 0)
            assert os.WIFSIGNALED(status)
            assert os.WTERMSIG(status) == signal.SIGKILL
            # the owner's views are intact and fresh attachments work
            assert np.array_equal(fg.indices, expected)
            again = shm.attach_graph(snapshot.handle)
            assert np.array_equal(again.indices, expected)

    def test_no_leaked_segments_after_crash(self):
        before = set(_shm_entries())
        fg = _frozen(300)
        snapshot = fg.to_shared()
        pid = os.fork()
        if pid == 0:
            shm.attach_graph(snapshot.handle)
            os.kill(os.getpid(), signal.SIGKILL)
        os.waitpid(pid, 0)
        snapshot.close()
        assert set(_shm_entries()) <= before
