"""Temporal small-world analysis ([15], Sec. III-B)."""

import math

import numpy as np
import pytest

from repro.mobility import Arena, CommunityMobility, collect_contact_trace, random_profiles
from repro.temporal.evolving import EvolvingGraph
from repro.temporal.small_world import (
    characteristic_temporal_path_length,
    randomize_contact_times,
    temporal_correlation_coefficient,
    temporal_small_world_report,
)


def periodic_eg(n=10, horizon=12):
    """Fully persistent ring: every edge present at every unit (C = 1)."""
    eg = EvolvingGraph(horizon=horizon, nodes=range(n))
    for t in range(horizon):
        for i in range(n):
            eg.add_contact(i, (i + 1) % n, t)
    return eg


class TestTemporalCorrelation:
    def test_persistent_network_full_correlation(self):
        assert temporal_correlation_coefficient(periodic_eg()) == pytest.approx(1.0)

    def test_single_snapshot_zero(self):
        eg = EvolvingGraph(horizon=1)
        eg.add_contact("a", "b", 0)
        assert temporal_correlation_coefficient(eg) == 0.0

    def test_alternating_network_zero_correlation(self):
        # Neighborhood flips completely every unit.
        eg = EvolvingGraph(horizon=6, nodes=["a", "b", "c"])
        for t in range(6):
            if t % 2 == 0:
                eg.add_contact("a", "b", t)
            else:
                eg.add_contact("a", "c", t)
        assert temporal_correlation_coefficient(eg) == pytest.approx(0.0)

    def test_randomization_reduces_correlation(self, rng):
        profiles = random_profiles(20, (2, 2), rng)
        mobility = CommunityMobility(profiles, (2, 2), Arena(15, 15), rng)
        eg = collect_contact_trace(mobility, 80, radius=2.0).to_evolving(1.0)
        null = randomize_contact_times(eg, rng)
        assert temporal_correlation_coefficient(null) < (
            temporal_correlation_coefficient(eg)
        )


class TestTemporalPathLength:
    def test_persistent_ring_distances(self):
        eg = periodic_eg(n=6, horizon=8)
        length, reachability = characteristic_temporal_path_length(eg)
        # Everything reachable instantly (same-unit chaining around the ring).
        assert reachability == 1.0
        assert length == 0.0

    def test_staggered_chain(self):
        eg = EvolvingGraph(horizon=5, nodes=["a", "b", "c"])
        eg.add_contact("a", "b", 0)
        eg.add_contact("b", "c", 2)
        length, reachability = characteristic_temporal_path_length(eg)
        assert 0 < reachability < 1
        assert length > 0

    def test_empty_unreachable(self):
        eg = EvolvingGraph(horizon=3, nodes=["a", "b"])
        length, reachability = characteristic_temporal_path_length(eg)
        assert math.isinf(length)
        assert reachability == 0.0


class TestNullModel:
    def test_preserves_footprint_and_counts(self, rng):
        eg = EvolvingGraph(horizon=10, nodes=range(8))
        for u in range(8):
            for v in range(u + 1, 8):
                if rng.random() < 0.4:
                    for t in sorted({int(x) for x in rng.integers(0, 10, 3)}):
                        eg.add_contact(u, v, t)
        null = randomize_contact_times(eg, rng)
        assert set(null.edges()) == set(eg.edges())
        assert null.num_contacts == eg.num_contacts
        for u, v in eg.edges():
            assert len(null.labels(u, v)) == len(eg.labels(u, v))

    def test_report_fields(self, rng):
        profiles = random_profiles(16, (2, 2), rng)
        mobility = CommunityMobility(profiles, (2, 2), Arena(12, 12), rng)
        eg = collect_contact_trace(mobility, 60, radius=2.0).to_evolving(1.0)
        report = temporal_small_world_report(eg, rng, null_samples=2)
        assert report.correlation > report.null_correlation
        assert 0 <= report.reachability <= 1
        assert report.correlation_ratio > 1

    def test_null_samples_validated(self, rng):
        eg = periodic_eg()
        with pytest.raises(ValueError):
            temporal_small_world_report(eg, rng, null_samples=0)
