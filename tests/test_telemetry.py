"""Cache and dispatch telemetry (repro.observability.telemetry).

Exact frozen-cache hit/miss/refreeze accounting, fast-vs-reference
dispatch counters for at least one kernel per instrumented module
(graphs, temporal, labeling, batch routing, DTN), and the labeled
DTN fast-path rejection reasons.
"""

import pytest

from repro.graphs.graph import Graph
from repro.observability.metrics import MetricsRegistry, set_registry
from repro.observability.telemetry import (
    CACHE_METRIC,
    DISPATCH_METRIC,
    cache_counts,
    dispatch_counts,
    record_cache_event,
    record_dispatch,
)
from repro.temporal.evolving import EvolvingGraph


@pytest.fixture
def registry():
    """Swap in an empty global metrics registry for the test."""
    fresh = MetricsRegistry("test-telemetry")
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def path_graph(n):
    graph = Graph()
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def dense_eg(n_contacts):
    eg = EvolvingGraph(horizon=n_contacts + 2, nodes=list(range(8)))
    for t in range(n_contacts):
        eg.add_contact(t % 8, (t + 1) % 8, t % (n_contacts + 1))
    return eg


class TestCacheTelemetry:
    def test_freeze_mutate_freeze_counts_exactly(self, registry):
        """The acceptance scenario: freeze twice, mutate, freeze again
        must produce exactly one miss, one hit, and one refreeze."""
        graph = path_graph(10)
        graph.frozen()  # first freeze: miss
        graph.frozen()  # unchanged: hit
        graph.add_edge(0, 9)  # topology mutation bumps the generation
        graph.frozen()  # rebuilt: refreeze
        assert cache_counts(registry) == {
            "Graph": {"miss": 1, "hit": 1, "refreeze": 1}
        }

    def test_owner_label_is_the_class_name(self, registry):
        eg = dense_eg(10)
        eg.frozen()
        eg.frozen()
        counts = cache_counts(registry)
        assert counts["EvolvingGraph"] == {"miss": 1, "hit": 1}

    def test_record_cache_event_series_key(self, registry):
        record_cache_event(path_graph(3), "miss")
        key = CACHE_METRIC + "{event=miss,owner=Graph}"
        assert registry.snapshot()[key] == 1

    def test_counts_scoped_to_registry(self, registry):
        record_cache_event(path_graph(3), "hit")
        assert cache_counts(MetricsRegistry("other")) == {}


class TestDispatchTelemetry:
    def test_graphs_kernel_fast_and_reference(self, registry):
        from repro.graphs.csr import FROZEN_MIN_NODES
        from repro.graphs.traversal import bfs_distances

        small = path_graph(5)
        large = path_graph(FROZEN_MIN_NODES + 1)
        assert bfs_distances(small, 0)[4] == 4
        assert bfs_distances(large, 0)[FROZEN_MIN_NODES] == FROZEN_MIN_NODES
        counts = dispatch_counts(registry)
        assert counts["graphs.bfs_distances"] == {"reference": 1, "fast": 1}

    def test_temporal_kernel_fast_and_reference(self, registry):
        from repro.temporal.frozen import FROZEN_MIN_CONTACTS
        from repro.temporal.journeys import earliest_arrival

        earliest_arrival(dense_eg(8), 0)
        earliest_arrival(dense_eg(FROZEN_MIN_CONTACTS + 8), 0)
        counts = dispatch_counts(registry)
        assert counts["temporal.earliest_arrival"] == {"reference": 1, "fast": 1}

    def test_labeling_kernel_reference_below_threshold(self, registry):
        from repro.graphs.graph import DiGraph
        from repro.labeling.pagerank import pagerank

        digraph = DiGraph()
        for i in range(4):
            digraph.add_edge(i, (i + 1) % 5)
        scores, _ = pagerank(digraph)
        assert scores
        assert dispatch_counts(registry)["labeling.pagerank"] == {"reference": 1}

    def test_batch_routing_kernel_reference_below_threshold(self, registry):
        from repro.remapping.batch_routing import evaluate_geo_routing

        graph = path_graph(4)
        positions = {i: (float(i), 0.0) for i in range(4)}
        result = evaluate_geo_routing(graph, [(0, 3)], positions)
        assert result.success_rate == 1.0
        counts = dispatch_counts(registry)
        assert counts["remapping.evaluate_geo_routing"] == {"reference": 1}

    def test_dtn_run_dispatch_both_paths(self, registry):
        from repro.dtn.routers import EpidemicRouter
        from repro.dtn.simulator import DTNSimulation, MessageSpec
        from repro.temporal.frozen import FROZEN_MIN_CONTACTS

        eg = dense_eg(FROZEN_MIN_CONTACTS + 8)
        for fast_path in (None, False):
            sim = DTNSimulation(eg, EpidemicRouter(), fast_path=fast_path)
            sim.add_message(MessageSpec("m", 0, 5, created=0, ttl=100))
            sim.run()
        counts = dispatch_counts(registry)
        assert counts["dtn.run"] == {"fast": 1, "reference": 1}

    def test_record_dispatch_series_key(self, registry):
        record_dispatch("example.kernel", fast=True)
        record_dispatch("example.kernel", fast=False)
        record_dispatch("example.kernel", fast=False)
        key = DISPATCH_METRIC + "{kernel=example.kernel,path=reference}"
        assert registry.snapshot()[key] == 2
        assert dispatch_counts(registry)["example.kernel"] == {
            "fast": 1,
            "reference": 2,
        }


class TestDTNRejectionReasons:
    """Each ineligibility cause increments its own labeled counter on
    the per-simulation registry."""

    def _sim(self, **kwargs):
        from repro.dtn.routers import EpidemicRouter
        from repro.dtn.simulator import DTNSimulation, MessageSpec

        eg = kwargs.pop("eg", None) or dense_eg(10)
        router = kwargs.pop("router", None) or EpidemicRouter()
        sim = DTNSimulation(eg, router, **kwargs)
        sim.add_message(MessageSpec("m", 0, 5, created=0, ttl=100))
        return sim

    def _rejections(self, sim):
        out = {}
        for key, value in sim.metrics.snapshot().items():
            if key.startswith("repro.dtn.fast_path_rejected"):
                reason = key.split("reason=", 1)[1].rstrip("}")
                out[reason] = value
        return out

    def test_too_few_contacts(self, registry):
        sim = self._sim()  # 10 contacts < FROZEN_MIN_CONTACTS
        sim.run()
        assert self._rejections(sim) == {"too_few_contacts": 1}

    def test_disabled_explicitly(self, registry):
        sim = self._sim(fast_path=False)
        sim.run()
        assert self._rejections(sim) == {"disabled": 1}

    def test_bounded_buffer(self, registry):
        sim = self._sim(buffer_size=2)
        sim.run()
        assert self._rejections(sim) == {"bounded_buffer": 1}

    def test_router_mode(self, registry):
        from repro.dtn.routers import SprayAndWait

        sim = self._sim(router=SprayAndWait(copies=4))
        sim.run()
        assert self._rejections(sim) == {"router_mode": 1}

    def test_fault_session(self, registry):
        from repro.faults import FaultPlan, MessageFaults

        sim = self._sim(fault_plan=FaultPlan(1, injectors=(MessageFaults(drop=0.5),)))
        sim.run()
        assert self._rejections(sim) == {"fault_session": 1}

    def test_forced_fast_path_raises_and_labels_why(self, registry):
        sim = self._sim(buffer_size=1, fast_path=True)
        with pytest.raises(ValueError, match="fast_path=True"):
            sim.run()
        assert self._rejections(sim) == {"bounded_buffer": 1}
