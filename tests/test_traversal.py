"""Unit tests for traversals, shortest paths, components, diameter, MST."""

import math

import pytest

from repro.errors import AlgorithmError, NodeNotFoundError
from repro.graphs.graph import DiGraph, Graph
from repro.graphs.generators import complete_graph, grid_2d, path_graph, star_graph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_order,
    bfs_tree,
    connected_components,
    dfs_order,
    diameter,
    dijkstra,
    eccentricity,
    is_connected,
    largest_strongly_connected_component,
    minimum_spanning_tree,
    reconstruct_path,
    shortest_path,
    strongly_connected_components,
)


class TestBFS:
    def test_distances_on_path(self):
        g = path_graph(5)
        dist = bfs_distances(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_distances_unreachable_absent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        assert 3 not in bfs_distances(g, 1)

    def test_order_starts_at_source(self):
        g = grid_2d(3, 3)
        order = bfs_order(g, (0, 0))
        assert order[0] == (0, 0)
        assert len(order) == 9

    def test_tree_parents(self):
        g = path_graph(4)
        parent = bfs_tree(g, 0)
        assert parent[0] is None
        assert parent[3] == 2

    def test_missing_source_raises(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            bfs_distances(g, "nope")

    def test_shortest_path_endpoints(self):
        g = grid_2d(4, 4)
        path = shortest_path(g, (0, 0), (3, 3))
        assert path[0] == (0, 0) and path[-1] == (3, 3)
        assert len(path) - 1 == 6

    def test_shortest_path_unreachable_none(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        assert shortest_path(g, 1, 3) is None

    def test_directed_bfs_respects_orientation(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert bfs_distances(g, "a") == {"a": 0, "b": 1}
        assert bfs_distances(g, "b") == {"b": 0}


class TestDFS:
    def test_preorder_covers_component(self):
        g = grid_2d(3, 3)
        assert len(dfs_order(g, (0, 0))) == 9

    def test_starts_at_source(self):
        g = path_graph(3)
        assert dfs_order(g, 1)[0] == 1


class TestDijkstra:
    def test_weighted_distances(self):
        g = Graph()
        g.add_edge("a", "b", weight=1.0)
        g.add_edge("b", "c", weight=1.0)
        g.add_edge("a", "c", weight=5.0)
        dist, parent = dijkstra(g, "a")
        assert dist["c"] == 2.0
        assert reconstruct_path(parent, "c") == ["a", "b", "c"]

    def test_default_weight(self):
        g = path_graph(4)
        dist, _ = dijkstra(g, 0)
        assert dist[3] == 3.0

    def test_callable_weight(self):
        g = path_graph(3)
        dist, _ = dijkstra(g, 0, weight=lambda u, v: 10.0)
        assert dist[2] == 20.0

    def test_negative_weight_rejected(self):
        g = Graph()
        g.add_edge("a", "b", weight=-1.0)
        with pytest.raises(AlgorithmError):
            dijkstra(g, "a")

    def test_reconstruct_missing_target(self):
        assert reconstruct_path({"a": None}, "z") is None


class TestComponents:
    def test_two_components(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        comps = connected_components(g)
        assert len(comps) == 2
        assert comps[0] == {3, 4, 5}  # largest first

    def test_is_connected_empty(self):
        assert is_connected(Graph())

    def test_is_connected_false(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        assert not is_connected(g)

    def test_scc_cycle(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 1)
        g.add_edge(3, 4)
        comps = strongly_connected_components(g)
        assert {1, 2, 3} in comps
        assert {4} in comps

    def test_scc_dag_all_singletons(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        comps = strongly_connected_components(g)
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 3

    def test_largest_scc_subgraph(self):
        g = DiGraph()
        for u, v in [(1, 2), (2, 1), (2, 3)]:
            g.add_edge(u, v)
        scc = largest_strongly_connected_component(g)
        assert set(scc.nodes()) == {1, 2}


class TestDiameterAndMST:
    def test_diameter_path(self):
        assert diameter(path_graph(6)) == 5

    def test_diameter_complete(self):
        assert diameter(complete_graph(5)) == 1

    def test_diameter_disconnected_raises(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(AlgorithmError):
            diameter(g)

    def test_eccentricity_center_of_star(self):
        g = star_graph(5)
        assert eccentricity(g, 0) == 1
        assert eccentricity(g, 1) == 2

    def test_mst_tree_edge_count(self):
        g = complete_graph(6)
        tree = minimum_spanning_tree(g)
        assert tree.num_edges == 5
        assert is_connected(tree)

    def test_mst_picks_light_edges(self):
        g = Graph()
        g.add_edge("a", "b", weight=1)
        g.add_edge("b", "c", weight=1)
        g.add_edge("a", "c", weight=10)
        tree = minimum_spanning_tree(g)
        assert not tree.has_edge("a", "c")

    def test_mst_forest_on_disconnected(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        tree = minimum_spanning_tree(g)
        assert tree.num_edges == 2
