"""Structural trimming: replacement rules, topology control, spanners,
forwarding sets (Sec. III-A)."""

import math

import numpy as np
import pytest

from repro.core.properties import (
    preserves_completion_times,
    preserves_time_i_connectivity,
)
from repro.graphs.generators import erdos_renyi
from repro.graphs.traversal import is_connected
from repro.graphs.unit_disk import random_unit_disk_graph
from repro.temporal.evolving import EvolvingGraph, paper_fig2_evolving_graph
from repro.trimming.forwarding_set import (
    TimeVaryingForwardingSets,
    optimal_copy_varying_sets,
    optimal_forwarding_sets,
    simulate_single_copy,
)
from repro.trimming.spanners import greedy_spanner, spanner_stretch
from repro.trimming.static_rules import (
    betweenness_priority,
    degree_priority,
    id_priority,
    ignorable_links,
    link_ignorable,
    node_trimmable,
    trim_nodes,
)
from repro.trimming.topology_control import (
    gabriel_graph,
    relative_neighborhood_graph,
    stretch_factor,
    xtc,
)


class TestPriorities:
    def test_id_priority_descending_from_a(self):
        eg = paper_fig2_evolving_graph()
        p = id_priority(eg)
        assert p["A"] > p["B"] > p["C"] > p["D"] > p["E"] > p["F"]

    def test_degree_priority_distinct(self):
        eg = paper_fig2_evolving_graph()
        p = degree_priority(eg)
        assert len(set(p.values())) == len(p)

    def test_betweenness_priority_distinct(self):
        eg = paper_fig2_evolving_graph()
        p = betweenness_priority(eg)
        assert len(set(p.values())) == len(p)


class TestReplacementRules:
    def test_paper_claim_a_ignores_d(self):
        """Fig. 2: any A->D->C path is replaced by an A->B->C path."""
        eg = paper_fig2_evolving_graph()
        assert link_ignorable(eg, "A", "D", id_priority(eg))

    def test_link_not_ignorable_without_replacement(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 1)
        eg.add_contact("b", "c", 2)
        # No alternative route from a to c at all.
        assert not link_ignorable(eg, "a", "b", id_priority(eg))

    def test_node_trimmable_with_replacement(self):
        # u relays a->b at (1, 2); direct a-b contact at 1 replaces it
        # (first label 1 >= 1, last label 1 <= 2).
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "u", 1)
        eg.add_contact("u", "b", 2)
        eg.add_contact("a", "b", 1)
        priorities = {"a": 3.0, "b": 2.0, "u": 1.0}
        assert node_trimmable(eg, "u", priorities)

    def test_node_not_trimmable_when_replacement_departs_too_early(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "u", 2)
        eg.add_contact("u", "b", 3)
        eg.add_contact("a", "b", 1)  # too early: i' = 1 < i = 2
        priorities = {"a": 3.0, "b": 2.0, "u": 1.0}
        assert not node_trimmable(eg, "u", priorities)

    def test_node_not_trimmable_when_replacement_arrives_too_late(self):
        eg = EvolvingGraph(horizon=6)
        eg.add_contact("a", "u", 1)
        eg.add_contact("u", "b", 2)
        eg.add_contact("a", "b", 4)  # j' = 4 > j = 2
        priorities = {"a": 3.0, "b": 2.0, "u": 1.0}
        assert not node_trimmable(eg, "u", priorities)

    def test_priority_blocks_low_priority_intermediates(self):
        # Replacement path a -> w -> b exists, but w has lower priority
        # than the node u being trimmed, so u must stay.
        eg = EvolvingGraph(horizon=6)
        eg.add_contact("a", "u", 1)
        eg.add_contact("u", "b", 3)
        eg.add_contact("a", "w", 1)
        eg.add_contact("w", "b", 2)
        high_w = {"a": 4.0, "b": 3.0, "w": 2.0, "u": 1.0}
        low_w = {"a": 4.0, "b": 3.0, "u": 2.0, "w": 1.0}
        assert node_trimmable(eg, "u", high_w)
        assert not node_trimmable(eg, "u", low_w)

    def test_hop_bounded_variant(self):
        # Replacement needs 2 intermediates; rejected when capped at 1.
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("a", "u", 2)
        eg.add_contact("u", "b", 5)
        eg.add_contact("a", "x", 2)
        eg.add_contact("x", "y", 3)
        eg.add_contact("y", "b", 4)
        priorities = {"a": 9, "b": 8, "x": 7, "y": 6, "u": 1}
        assert node_trimmable(eg, "u", priorities)
        assert not node_trimmable(eg, "u", priorities, max_intermediates=1)

    def test_trim_preserves_completion_times(self, rng):
        for seed in range(3):
            local = np.random.default_rng(seed)
            eg = EvolvingGraph(horizon=8)
            nodes = list(range(8))
            for u in nodes:
                for v in nodes:
                    if u < v and local.random() < 0.5:
                        eg.add_contact(u, v, int(local.integers(8)))
            trimmed, removed = trim_nodes(eg)
            assert preserves_completion_times(eg, trimmed, start=0)
            assert preserves_time_i_connectivity(eg, trimmed, start=0)

    def test_ignorable_links_contains_paper_pair(self):
        eg = paper_fig2_evolving_graph()
        assert ("A", "D") in ignorable_links(eg, id_priority(eg))

    def test_trim_nodes_returns_removal_order(self):
        eg = paper_fig2_evolving_graph()
        trimmed, removed = trim_nodes(eg)
        assert set(removed) | set(trimmed.nodes()) == set(eg.nodes())


class TestTopologyControl:
    def test_hierarchy_rng_subset_gabriel_subset_udg(self, medium_udg):
        gabriel = gabriel_graph(medium_udg)
        rng_graph = relative_neighborhood_graph(medium_udg)
        for u, v in rng_graph.edges():
            assert gabriel.has_edge(u, v)
        for u, v in gabriel.edges():
            assert medium_udg.has_edge(u, v)

    def test_all_trimmers_preserve_connectivity(self, medium_udg):
        assert is_connected(medium_udg)
        for trimmer in (gabriel_graph, relative_neighborhood_graph, xtc):
            assert is_connected(trimmer(medium_udg)), trimmer.__name__

    def test_trimmers_actually_trim(self, medium_udg):
        assert gabriel_graph(medium_udg).num_edges < medium_udg.num_edges

    def test_xtc_symmetric_result(self, medium_udg):
        trimmed = xtc(medium_udg)
        for u, v in trimmed.edges():
            assert trimmed.has_edge(v, u)

    def test_stretch_factor_finite(self, medium_udg):
        trimmed = gabriel_graph(medium_udg)
        stretch = stretch_factor(medium_udg, trimmed)
        assert 1.0 <= stretch < math.inf

    def test_gabriel_keeps_isolated_pair(self):
        from repro.graphs.unit_disk import unit_disk_graph

        g = unit_disk_graph({"a": (0, 0), "b": (0.5, 0)}, radius=1.0)
        trimmed = gabriel_graph(g)
        assert trimmed.has_edge("a", "b")


class TestSpanners:
    def test_spanner_stretch_bound_holds(self, rng):
        g = erdos_renyi(40, 0.4, rng)
        for t in (1.5, 2.0, 3.0):
            spanner = greedy_spanner(g, t)
            assert spanner_stretch(g, spanner) <= t + 1e-9

    def test_spanner_sparser_for_larger_t(self, rng):
        g = erdos_renyi(50, 0.5, rng)
        tight = greedy_spanner(g, 1.5)
        loose = greedy_spanner(g, 4.0)
        assert loose.num_edges <= tight.num_edges

    def test_t_below_one_rejected(self, rng):
        g = erdos_renyi(10, 0.5, rng)
        with pytest.raises(ValueError):
            greedy_spanner(g, 0.5)

    def test_t1_spanner_keeps_all_shortest_distances(self, rng):
        g = erdos_renyi(25, 0.4, rng)
        spanner = greedy_spanner(g, 1.0)
        assert spanner_stretch(g, spanner) == 1.0


def _make_rates(n, rng, low=0.05, high=0.5):
    rates = {}
    for i in range(n):
        for j in range(i + 1, n):
            rates[frozenset((i, j))] = float(rng.uniform(low, high))
    return rates


class TestForwardingSets:
    def test_fixed_point_destination_zero(self, rng):
        rates = _make_rates(6, rng)
        policy = optimal_forwarding_sets(rates, 5)
        assert policy.expected_delay[5] == 0.0

    def test_forwarding_sets_point_downhill(self, rng):
        rates = _make_rates(6, rng)
        policy = optimal_forwarding_sets(rates, 5)
        for node, members in policy.forwarding_sets.items():
            for member in members:
                assert policy.expected_delay[member] < policy.expected_delay[node]

    def test_fixed_point_equation_holds(self, rng):
        rates = _make_rates(6, rng)
        policy = optimal_forwarding_sets(rates, 5)
        for node in range(5):
            members = policy.forwarding_sets[node]
            total = sum(rates[frozenset((node, w))] for w in members)
            weighted = sum(
                rates[frozenset((node, w))] * policy.expected_delay[w]
                for w in members
            )
            expected = (1.0 + weighted) / total
            assert policy.expected_delay[node] == pytest.approx(expected)

    def test_unreachable_node_infinite_delay(self):
        rates = {frozenset((0, 1)): 0.5}
        policy = optimal_forwarding_sets(rates, 1)
        # Node 2 has no contacts at all.
        rates2 = {frozenset((0, 1)): 0.5, frozenset((2, 3)): 0.1}
        policy2 = optimal_forwarding_sets(rates2, 1)
        assert math.isinf(policy2.expected_delay[2])
        assert policy2.forwarding_sets[2] == frozenset()

    def test_simulation_matches_analysis(self, rng):
        rates = _make_rates(5, rng, 0.2, 0.6)
        policy = optimal_forwarding_sets(rates, 4)
        times = [
            simulate_single_copy(rates, 0, 4, "forwarding-set", rng, forwarding=policy)
            for _ in range(800)
        ]
        mean = sum(times) / len(times)
        assert mean == pytest.approx(policy.expected_delay[0], rel=0.25)

    def test_forwarding_beats_direct(self, rng):
        rates = _make_rates(6, rng, 0.01, 0.3)
        policy = optimal_forwarding_sets(rates, 5)
        direct = [simulate_single_copy(rates, 0, 5, "direct", rng) for _ in range(300)]
        guided = [
            simulate_single_copy(rates, 0, 5, "forwarding-set", rng, forwarding=policy)
            for _ in range(300)
        ]
        assert sum(guided) / 300 < sum(direct) / 300

    def test_unknown_policy_rejected(self, rng):
        rates = _make_rates(3, rng)
        with pytest.raises(ValueError):
            simulate_single_copy(rates, 0, 2, "teleport", rng)


class TestTimeVaryingSets:
    def test_forwarding_set_shrinks_over_time(self, rng):
        """The paper's claim from [13]: the set at the same intermediate
        node shrinks over time (with a positive forwarding cost)."""
        rates = _make_rates(6, rng)
        tv = TimeVaryingForwardingSets(rates, 5, u0=10.0, beta=1.0, cost=1.0, dt=0.05)
        previous = None
        for t in np.linspace(0.0, 9.5, 12):
            current = tv.forwarding_set(0, float(t))
            if previous is not None:
                assert current <= previous
            previous = current

    def test_value_decreases_in_time(self, rng):
        rates = _make_rates(5, rng)
        tv = TimeVaryingForwardingSets(rates, 4, u0=5.0, beta=1.0, dt=0.05)
        values = [tv.value(0, t) for t in (0.0, 2.0, 4.0, 4.9)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_destination_value_is_utility(self, rng):
        rates = _make_rates(4, rng)
        tv = TimeVaryingForwardingSets(rates, 3, u0=8.0, beta=2.0, dt=0.01)
        assert tv.value(3, 0.0) == pytest.approx(8.0, abs=0.1)
        assert tv.value(3, 4.0) == 0.0

    def test_validation(self, rng):
        rates = _make_rates(3, rng)
        with pytest.raises(ValueError):
            TimeVaryingForwardingSets(rates, 2, u0=0.0, beta=1.0)
        with pytest.raises(ValueError):
            TimeVaryingForwardingSets(rates, 2, u0=1.0, beta=1.0, cost=-1.0)


class TestCopyVaryingSets:
    def test_budget_one_never_replicates(self, rng):
        rates = _make_rates(5, rng)
        policy = optimal_copy_varying_sets(rates, 4, budget=1)
        for holders, accepted in policy.acceptance.items():
            assert accepted == frozenset()

    def test_more_copies_weakly_faster(self, rng):
        rates = _make_rates(6, rng)
        single = optimal_copy_varying_sets(rates, 5, budget=1)
        multi = optimal_copy_varying_sets(rates, 5, budget=3)
        start = frozenset({0})
        assert multi.expected_delay[start] <= single.expected_delay[start] + 1e-9

    def test_acceptance_varies_with_copies(self, rng):
        """The paper: the forwarding set becomes *copy-varying*."""
        rates = _make_rates(6, rng)
        policy = optimal_copy_varying_sets(rates, 5, budget=3)
        fresh = policy.acceptance[frozenset({0})]       # 2 copies to spend
        assert fresh  # with copies left, replication to someone is worth it

    def test_full_budget_stops_accepting(self, rng):
        rates = _make_rates(5, rng)
        policy = optimal_copy_varying_sets(rates, 4, budget=2)
        full = frozenset({0, 1})
        assert policy.acceptance[full] == frozenset()

    def test_too_many_nodes_rejected(self, rng):
        rates = _make_rates(16, rng)
        with pytest.raises(Exception):
            optimal_copy_varying_sets(rates, 0, budget=2, max_nodes=10)
