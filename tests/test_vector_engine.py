"""Scalar-vs-vector differential suite for the bulk-synchronous plane.

The contract under test (``repro.runtime.vector``): for every protocol
family, every topology, and every seed, a fault-free vector run matches
the scalar :class:`~repro.runtime.engine.Network` **bit-exactly** —
final state, round count, total messages, and per-round message counts
(``RunStats`` equality) — and a chaos run under the same seeded
:class:`~repro.faults.FaultPlan` still converges to the fault-free
fixpoint (the `tests/test_faults.py` claims, re-certified on the
vector engine).  Topologies deliberately straddle the
``FROZEN_MIN_NODES`` dispatch gate so both the reference and fast
sides of every consumer kernel get exercised.
"""

import numpy as np
import pytest

from repro.errors import AlgorithmError
from repro.faults import (
    CrashEvent,
    FaultPlan,
    LinkChurn,
    MessageFaults,
    NodeCrashFaults,
    RetryPolicy,
)
from repro.graphs.generators import (
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.hypercube import binary_addresses, binary_hypercube
from repro.labeling.mis import MISAlgorithm, distributed_mis, id_priorities
from repro.labeling.safety import compute_safety_levels
from repro.labeling.safety_distributed import (
    SafetyLevelAlgorithm,
    distributed_safety_levels,
)
from repro.layering.link_reversal import initial_heights, paper_fig4_graph
from repro.layering.link_reversal_distributed import (
    LinkReversalAlgorithm,
    PartialReversalAlgorithm,
    distributed_full_reversal,
    distributed_partial_reversal,
    lift_partial_heights,
)
from repro.observability.metrics import MetricsRegistry, set_registry
from repro.observability.telemetry import dispatch_counts
from repro.runtime.engine import Network
from repro.runtime.vector import (
    FullReversalKernel,
    MISKernel,
    PartialReversalKernel,
    SafetyLevelKernel,
    VectorEngine,
    hypercube_frozen,
    vector_full_reversal,
    vector_mis,
    vector_partial_reversal,
    vector_safety_levels,
)

CHAOS = MessageFaults(drop=0.1, duplicate=0.05, reorder=0.2)
RETRY = RetryPolicy(max_retries=10)
SEEDS = range(3)


@pytest.fixture
def registry():
    fresh = MetricsRegistry("test-vector")
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def topologies(seed):
    """Named graphs straddling the FROZEN_MIN_NODES=32 dispatch gate."""
    rng = np.random.default_rng(seed)
    return [
        ("path-small", path_graph(9)),
        ("star-small", star_graph(7)),
        ("path-large", path_graph(40)),
        ("random-large", random_connected_graph(48, 0.08, rng=rng)),
        ("hypercube", binary_hypercube(4)),
    ]


def stale_heights(graph, destination, seed):
    """BFS heights with a few nodes knocked below their neighbors —
    the post-topology-change repair workload."""
    heights = initial_heights(graph, destination)
    nodes = [node for node in sorted(graph.nodes(), key=repr) if node != destination]
    rng = np.random.default_rng(seed)
    for node in rng.choice(len(nodes), size=min(3, len(nodes)), replace=False):
        stale = nodes[int(node)]
        heights[stale] = (-1, heights[stale][-1])
    return heights


def full_reversal_stats(graph, destination, heights):
    network = Network(
        graph,
        lambda node: LinkReversalAlgorithm(node == destination, heights[node]),
    )
    scalar = network.run(max_rounds=100_000)
    fg = graph.frozen()
    nodes = fg.node_list
    kernel = FullReversalKernel(
        fg.index_of(destination),
        np.array([heights[node][0] for node in nodes], dtype=np.int64),
        np.array([heights[node][-1] for node in nodes], dtype=np.int64),
    )
    engine = VectorEngine(fg, kernel)
    vector = engine.run(max_rounds=100_000)
    scalar_state = {
        node: (
            tuple(network.state_of(node)["height"]),
            network.state_of(node)["reversals"],
        )
        for node in graph.nodes()
    }
    vector_state = {
        nodes[i]: (
            (int(kernel.level[i]), int(kernel.tie[i])),
            int(kernel.reversals[i]),
        )
        for i in range(fg.n)
    }
    return scalar, vector, scalar_state, vector_state


class TestFullReversalParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_state_round_and_message_parity(self, seed):
        for name, graph in topologies(seed):
            nodes = sorted(graph.nodes(), key=repr)
            destination = nodes[-1]
            heights = stale_heights(graph, destination, seed)
            scalar, vector, s_state, v_state = full_reversal_stats(
                graph, destination, heights
            )
            assert s_state == v_state, name
            assert scalar == vector, (name, scalar, vector)

    def test_wrapper_matches_scalar_wrapper(self):
        graph, destination, heights = paper_fig4_graph()
        s_orient, s_heights, s_rev, s_rounds = distributed_full_reversal(
            graph, destination, heights
        )
        v_orient, v_heights, v_rev, v_rounds = vector_full_reversal(
            graph, destination, heights
        )
        assert s_heights == v_heights
        assert s_rev == v_rev
        assert s_rounds == v_rounds
        assert v_orient.is_destination_oriented(destination)


class TestPartialReversalParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_state_round_and_message_parity(self, seed):
        for name, graph in topologies(seed):
            nodes = sorted(graph.nodes(), key=repr)
            destination = nodes[-1]
            heights = lift_partial_heights(
                stale_heights(graph, destination, seed)
            )
            network = Network(
                graph,
                lambda node: PartialReversalAlgorithm(
                    node == destination, heights[node]
                ),
            )
            scalar = network.run(max_rounds=100_000)
            fg = graph.frozen()
            fg_nodes = fg.node_list
            kernel = PartialReversalKernel(
                fg.index_of(destination),
                np.array([heights[node][0] for node in fg_nodes]),
                np.array([heights[node][1] for node in fg_nodes]),
                np.array([heights[node][2] for node in fg_nodes]),
            )
            engine = VectorEngine(fg, kernel)
            vector = engine.run(max_rounds=100_000)
            assert scalar == vector, (name, scalar, vector)
            for i, node in enumerate(fg_nodes):
                assert tuple(network.state_of(node)["height"]) == (
                    int(kernel.a[i]),
                    int(kernel.b[i]),
                    int(kernel.ids[i]),
                ), name

    def test_wrapper_matches_scalar_wrapper(self):
        graph, destination, heights = paper_fig4_graph()
        s_orient, s_heights, s_rev, s_rounds = distributed_partial_reversal(
            graph, destination, heights
        )
        v_orient, v_heights, v_rev, v_rounds = vector_partial_reversal(
            graph, destination, heights
        )
        assert s_heights == v_heights
        assert s_rev == v_rev
        assert s_rounds == v_rounds
        assert v_orient.is_destination_oriented(destination)


class TestSafetyLevelParity:
    @pytest.mark.parametrize("dimension", [3, 4, 5])
    def test_state_round_and_message_parity(self, dimension):
        addresses = list(binary_addresses(dimension))
        rng = np.random.default_rng(dimension)
        faulty = {
            addresses[int(i)]
            for i in rng.choice(
                len(addresses), size=max(2, dimension), replace=False
            )
        }
        network = Network(
            binary_hypercube(dimension),
            lambda node: SafetyLevelAlgorithm(dimension, node in faulty),
        )
        scalar = network.run()
        fg = hypercube_frozen(dimension)
        kernel = SafetyLevelKernel(
            dimension,
            np.array([node in faulty for node in fg.node_list]),
        )
        engine = VectorEngine(fg, kernel)
        vector = engine.run()
        assert scalar == vector
        levels = {
            fg.node_list[i]: int(kernel.level[i]) for i in range(fg.n)
        }
        assert network.states("level") == levels

    def test_wrapper_matches_scalar_wrapper_and_round_bound(self):
        addresses = list(binary_addresses(4))
        faulty = [addresses[1], addresses[6], addresses[11]]
        s_levels, s_rounds = distributed_safety_levels(4, faulty)
        v_levels, v_rounds = vector_safety_levels(4, faulty)
        assert s_levels == v_levels
        assert s_rounds == v_rounds
        # Paper bound: at most n − 1 level-refinement rounds (plus the
        # constant exchange-and-confirm overhead both engines share).
        assert v_rounds <= (2 ** 4 - 1) + 2


class TestMISParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_state_round_and_message_parity(self, seed):
        for name, graph in topologies(seed):
            priorities = id_priorities(graph)
            network = Network(
                graph, lambda node: MISAlgorithm(priorities[node])
            )
            scalar = network.run()
            fg = graph.frozen()
            kernel = MISKernel(
                np.array([priorities[node] for node in fg.node_list])
            )
            engine = VectorEngine(fg, kernel)
            vector = engine.run()
            assert scalar == vector, (name, scalar, vector)
            colors = {0: "white", 1: "black", 2: "gray"}
            vector_colors = {
                fg.node_list[i]: colors[int(kernel.color[i])]
                for i in range(fg.n)
            }
            assert network.states("color") == vector_colors, name

    def test_wrapper_matches_scalar_wrapper(self):
        graph = random_connected_graph(40, 0.1, rng=np.random.default_rng(2))
        s_black, s_rounds = distributed_mis(graph)
        v_black, v_rounds = vector_mis(graph)
        assert s_black == v_black
        assert s_rounds == v_rounds


class TestChaosOnVectorEngine:
    """The tests/test_faults.py convergence claims, on the vector plane."""

    def test_link_reversal_reaches_fault_free_fixpoint(self):
        graph, destination, heights = paper_fig4_graph()
        _, clean_heights, clean_reversals, _ = vector_full_reversal(
            graph, destination, heights
        )
        for seed in range(8):
            orientation, faulty_heights, faulty_reversals, _ = (
                vector_full_reversal(
                    graph,
                    destination,
                    heights,
                    fault_plan=FaultPlan(seed, [CHAOS], retry=RETRY),
                )
            )
            assert faulty_heights == clean_heights
            assert faulty_reversals == clean_reversals
            assert orientation.is_destination_oriented(destination)

    def test_partial_reversal_reaches_fault_free_fixpoint(self):
        graph, destination, heights = paper_fig4_graph()
        _, clean_heights, clean_reversals, _ = vector_partial_reversal(
            graph, destination, heights
        )
        for seed in range(8):
            orientation, faulty_heights, faulty_reversals, _ = (
                vector_partial_reversal(
                    graph,
                    destination,
                    heights,
                    fault_plan=FaultPlan(seed, [CHAOS], retry=RETRY),
                )
            )
            assert faulty_heights == clean_heights
            assert faulty_reversals == clean_reversals
            assert orientation.is_destination_oriented(destination)

    def test_safety_labeling_matches_centralized_oracle(self):
        from repro.labeling.safety import paper_fig9_faults

        dimension, faulty = paper_fig9_faults()
        oracle = compute_safety_levels(dimension, faulty)
        for seed in range(8):
            levels, _ = vector_safety_levels(
                dimension,
                faulty,
                fault_plan=FaultPlan(seed, [CHAOS], retry=RETRY),
            )
            assert levels == oracle.levels

    def test_same_plan_seed_feeds_both_engines(self):
        """One FaultPlan value drives either engine (same seed stream
        origin), and the vector session records the same event kinds."""
        graph, destination, heights = paper_fig4_graph()
        plan = FaultPlan(42, [MessageFaults(drop=0.2, delay=0.2)], retry=RETRY)
        distributed_full_reversal(graph, destination, heights, fault_plan=plan)
        fg = graph.frozen()
        nodes = fg.node_list
        kernel = FullReversalKernel(
            fg.index_of(destination),
            np.array([heights[node][0] for node in nodes]),
            np.array([heights[node][-1] for node in nodes]),
        )
        engine = VectorEngine(fg, kernel, fault_plan=plan)
        engine.run(max_rounds=100_000)
        summary = engine.faults.summary()
        assert summary.get("drop", 0) > 0
        assert summary.get("delay", 0) > 0
        snapshot = engine.metrics.snapshot()
        for kind, count in summary.items():
            assert snapshot[f"repro.faults.{kind}"] == count

    def test_crash_and_churn_plans_are_rejected(self):
        fg = path_graph(8).frozen()
        heights = {i: (8 - i, i) for i in range(8)}
        for injector in (
            NodeCrashFaults(schedule=(CrashEvent(node=3, at=1),)),
            LinkChurn(down=0.1),
        ):
            kernel = FullReversalKernel(
                0,
                np.array([heights[i][0] for i in range(8)]),
                np.array([heights[i][1] for i in range(8)]),
            )
            with pytest.raises(AlgorithmError, match="scalar Network"):
                VectorEngine(fg, kernel, fault_plan=FaultPlan(0, [injector]))


class TestTelemetryAndAccounting:
    def test_dispatch_path_labels_for_both_engines(self, registry):
        graph = path_graph(6)
        heights = initial_heights(graph, 5)
        distributed_full_reversal(graph, 5, heights)
        vector_full_reversal(graph, 5, heights)
        counts = dispatch_counts(registry)["runtime.engine"]
        assert counts["scalar"] >= 1
        assert counts["vector"] >= 1

    def test_round_zero_and_trailing_round_accounting(self):
        # Already-quiescent protocol state still runs the scalar
        # engine's shape: 2m init messages in round 0, then one final
        # all-halted round delivering zero messages.
        graph = path_graph(5)
        heights = initial_heights(graph, 4)
        scalar, vector, _, _ = full_reversal_stats(graph, 4, heights)
        assert vector.messages_per_round[0] == 2 * graph.num_edges
        assert vector.messages_per_round[-1] == 0
        assert scalar == vector

    def test_directed_snapshot_rejected(self):
        from repro.graphs.csr import FrozenGraph

        fg = FrozenGraph.from_arrays(
            np.array([0, 1, 1]), np.array([1]), directed=True
        )
        with pytest.raises(AlgorithmError, match="undirected"):
            VectorEngine(fg, MISKernel(np.array([0.0, 1.0])))

    def test_hypercube_frozen_matches_dict_builder(self):
        for dimension in (0, 1, 3, 5):
            fg = hypercube_frozen(dimension)
            cube = binary_hypercube(dimension)
            assert set(fg.node_list) == set(cube.nodes())
            for i, node in enumerate(fg.node_list):
                neighbors = {
                    fg.node_list[j] for j in fg.neighbor_indices(i)
                }
                assert neighbors == cube.neighbors(node)
