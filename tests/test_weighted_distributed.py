"""Weighted-EG journeys and the distributed protocol variants."""

import math

import numpy as np
import pytest

from repro.graphs.generators import path_graph, random_connected_graph
from repro.labeling.safety import compute_safety_levels
from repro.labeling.safety_distributed import distributed_safety_levels
from repro.layering.link_reversal import full_link_reversal, initial_heights
from repro.layering.link_reversal_distributed import distributed_full_reversal
from repro.temporal.evolving import EvolvingGraph
from repro.temporal.journeys import is_valid_journey
from repro.temporal.weighted_journeys import (
    journey_bottleneck,
    journey_delay,
    max_bandwidth_journey,
    min_delay_journey,
    most_reliable_journey,
)


def weighted_eg():
    """Two routes a→c: fast-but-late direct vs early relay."""
    eg = EvolvingGraph(horizon=12)
    eg.add_contact("a", "b", 1, weight=2.0)
    eg.add_contact("b", "c", 4, weight=1.0)   # relay arrives at 5
    eg.add_contact("a", "c", 6, weight=0.5)   # direct arrives at 6.5
    return eg


class TestMinDelay:
    def test_prefers_earlier_total_arrival(self):
        eg = weighted_eg()
        journey = min_delay_journey(eg, "a", "c")
        assert journey.hops == (("a", "b", 1), ("b", "c", 4))
        assert journey_delay(eg, journey) == 5.0

    def test_delay_blocks_tight_connections(self):
        # b->c contact at time 2 is unusable: a->b finishes at 3.
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("a", "b", 1, weight=2.0)
        eg.add_contact("b", "c", 2, weight=1.0)
        assert min_delay_journey(eg, "a", "c") is None

    def test_unweighted_defaults_to_unit_delay(self):
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("a", "b", 0)
        eg.add_contact("b", "c", 5)
        journey = min_delay_journey(eg, "a", "c")
        assert journey_delay(eg, journey) == 6.0

    def test_same_node(self):
        eg = weighted_eg()
        assert min_delay_journey(eg, "a", "a").hop_count == 0

    def test_journey_delay_validates_readiness(self):
        eg = weighted_eg()
        from repro.temporal.journeys import Journey

        bogus = Journey("a", (("a", "c", 6), ("a", "b", 1)))
        with pytest.raises(ValueError):
            journey_delay(eg, bogus)


class TestReliability:
    def test_prefers_product_over_hops(self):
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("a", "b", 1, weight=0.9)
        eg.add_contact("b", "c", 2, weight=0.9)   # product 0.81
        eg.add_contact("a", "c", 3, weight=0.5)   # single hop, worse
        journey, reliability = most_reliable_journey(eg, "a", "c")
        assert reliability == pytest.approx(0.81)
        assert journey.hop_count == 2

    def test_journey_is_temporally_valid(self, rng):
        eg = EvolvingGraph(horizon=12, nodes=range(8))
        for u in range(8):
            for v in range(u + 1, 8):
                if rng.random() < 0.4:
                    eg.add_contact(
                        u, v, int(rng.integers(12)), weight=float(rng.uniform(0.3, 1.0))
                    )
        for target in range(1, 8):
            result = most_reliable_journey(eg, 0, target)
            if result is not None:
                journey, reliability = result
                assert is_valid_journey(eg, journey)
                assert 0 < reliability <= 1

    def test_rejects_bad_weights(self):
        eg = EvolvingGraph(horizon=5)
        eg.add_contact("a", "b", 0, weight=1.5)
        with pytest.raises(ValueError):
            most_reliable_journey(eg, "a", "b")

    def test_unreachable(self):
        eg = EvolvingGraph(horizon=5, nodes=["a", "z"])
        eg.add_contact("a", "b", 0, weight=0.9)
        assert most_reliable_journey(eg, "a", "z") is None


class TestBandwidth:
    def test_maximises_bottleneck(self):
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("a", "b", 1, weight=10.0)
        eg.add_contact("b", "c", 2, weight=10.0)   # bottleneck 10
        eg.add_contact("a", "c", 0, weight=3.0)    # direct, bottleneck 3
        journey, bandwidth = max_bandwidth_journey(eg, "a", "c")
        assert bandwidth == 10.0
        assert journey_bottleneck(eg, journey) == 10.0

    def test_falls_back_to_thinner_pipes(self):
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("a", "c", 0, weight=3.0)
        journey, bandwidth = max_bandwidth_journey(eg, "a", "c")
        assert bandwidth == 3.0

    def test_respects_time_order_per_threshold(self):
        # The fat pipes exist but in the wrong temporal order.
        eg = EvolvingGraph(horizon=10)
        eg.add_contact("b", "c", 1, weight=10.0)
        eg.add_contact("a", "b", 5, weight=10.0)
        eg.add_contact("a", "c", 7, weight=2.0)
        journey, bandwidth = max_bandwidth_journey(eg, "a", "c")
        assert bandwidth == 2.0

    def test_unreachable(self):
        eg = EvolvingGraph(horizon=5, nodes=["a", "z"])
        assert max_bandwidth_journey(eg, "a", "z") is None


def anti_oriented_path(n):
    graph = path_graph(n)
    heights = {i: (i + 1, i) for i in range(n)}
    heights[n - 1] = (0, 0)
    return graph, n - 1, heights


class TestDistributedLinkReversal:
    def test_reaches_destination_oriented_fixpoint(self):
        graph, destination, heights = anti_oriented_path(8)
        orientation, _, _, rounds = distributed_full_reversal(
            graph, destination, heights
        )
        assert orientation.is_destination_oriented(destination)

    def test_total_reversals_match_centralized(self):
        """Concurrency reorders but does not change total full-reversal
        work on a chain."""
        graph, destination, heights = anti_oriented_path(9)
        central = full_link_reversal(graph, destination, heights=dict(heights))
        _, _, reversals, _ = distributed_full_reversal(graph, destination, heights)
        assert sum(reversals.values()) == central.steps

    def test_random_graphs(self, rng):
        for seed in range(3):
            local = np.random.default_rng(seed)
            graph = random_connected_graph(20, 0.12, local)
            heights = initial_heights(graph, 0)
            # Corrupt the orientation: push node with highest id to a pit.
            victim = max(
                (n for n in graph.nodes() if n != 0), key=lambda n: heights[n]
            )
            heights[victim] = (-1, heights[victim][1])
            orientation, _, _, _ = distributed_full_reversal(graph, 0, heights)
            assert orientation.is_destination_oriented(0)

    def test_already_oriented_is_quiet(self, rng):
        graph = random_connected_graph(15, 0.2, rng)
        heights = initial_heights(graph, 0)
        _, _, reversals, _ = distributed_full_reversal(graph, 0, heights)
        assert sum(reversals.values()) == 0


class TestDistributedSafetyLevels:
    def test_agrees_with_centralized(self, rng):
        from repro.graphs.hypercube import binary_addresses

        nodes = list(binary_addresses(4))
        for trial in range(4):
            picks = rng.choice(len(nodes), size=int(rng.integers(1, 6)), replace=False)
            faults = [nodes[i] for i in picks]
            central = compute_safety_levels(4, faults)
            distributed, rounds = distributed_safety_levels(4, faults)
            assert distributed == central.levels

    def test_round_bound(self, rng):
        from repro.graphs.hypercube import binary_addresses

        nodes = list(binary_addresses(5))
        picks = rng.choice(len(nodes), size=6, replace=False)
        faults = [nodes[i] for i in picks]
        _, rounds = distributed_safety_levels(5, faults)
        # n - 1 refinement waves + the initial exchange + halting round.
        assert rounds <= (5 - 1) + 2

    def test_no_faults_zero_refinements(self):
        levels, rounds = distributed_safety_levels(3, [])
        assert all(level == 3 for level in levels.values())
